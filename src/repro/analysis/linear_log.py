"""Linear-log trend fits: the paper's stability-memory rule of thumb.

Section 3.3 / Appendix C.4: fit ``DI_T ~ C_T - slope * log2(M)`` jointly over
tasks (one intercept per task, one shared slope) with least squares, where
``M`` is the memory in bits/word.  On the paper's data the shared slope is
about 1.3% of absolute disagreement per doubling of memory.  The same
machinery fits per-dimension and per-precision trends (Section 3.3's "which
matters more" comparison) by swapping the regressor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.instability.grid import GridRecord

__all__ = ["LinearLogFit", "fit_linear_log", "relative_reduction_range"]


@dataclass(frozen=True)
class LinearLogFit:
    """Result of the joint linear-log fit.

    Attributes
    ----------
    slope:
        Shared decrease in % disagreement per doubling of the regressor
        (positive value = instability decreases as the regressor grows).
    intercepts:
        Per-group intercept ``C_T`` keyed by group label.
    regressor:
        Which quantity was on the log axis ("memory", "dim" or "precision").
    n_observations:
        Number of grid records used.
    r_squared:
        Coefficient of determination of the joint fit.
    """

    slope: float
    intercepts: dict[str, float]
    regressor: str
    n_observations: int
    r_squared: float

    def predict(self, group: str, value: float) -> float:
        """Predicted % disagreement for ``group`` at regressor ``value``."""
        if group not in self.intercepts:
            raise KeyError(f"unknown group {group!r}")
        return self.intercepts[group] - self.slope * np.log2(value)


def _group_label(record: GridRecord, regressor: str) -> str:
    """Grouping used for the intercepts.

    The memory fit groups by (task, algorithm); the dimension fit additionally
    separates precisions (and vice versa), following Appendix C.4.
    """
    base = f"{record.task}/{record.algorithm}"
    if regressor == "dim":
        return f"{base}/b={record.precision}"
    if regressor == "precision":
        return f"{base}/d={record.dim}"
    return base


def fit_linear_log(
    records: list[GridRecord],
    *,
    regressor: str = "memory",
    max_memory: float | None = None,
) -> LinearLogFit:
    """Fit the shared-slope linear-log model to grid records.

    Parameters
    ----------
    records:
        Evaluated grid points.
    regressor:
        ``"memory"`` (bits/word), ``"dim"`` or ``"precision"``.
    max_memory:
        Ignore records with more than this many bits/word (the paper fits the
        rule of thumb only below 1000 bits/word, where the trend is linear).
    """
    if regressor not in ("memory", "dim", "precision"):
        raise ValueError("regressor must be 'memory', 'dim' or 'precision'")
    usable = [
        r for r in records if max_memory is None or r.memory <= max_memory
    ]
    if len(usable) < 2:
        raise ValueError("need at least two records to fit a trend")

    groups = sorted({_group_label(r, regressor) for r in usable})
    group_index = {g: i for i, g in enumerate(groups)}

    X = np.zeros((len(usable), 1 + len(groups)))
    y = np.zeros(len(usable))
    for row, rec in enumerate(usable):
        value = {"memory": rec.memory, "dim": rec.dim, "precision": rec.precision}[regressor]
        X[row, 0] = np.log2(value)
        X[row, 1 + group_index[_group_label(rec, regressor)]] = 1.0
        y[row] = rec.disagreement

    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    predictions = X @ beta
    residual = float(np.sum((y - predictions) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0

    return LinearLogFit(
        slope=float(-beta[0]),
        intercepts={g: float(beta[1 + i]) for g, i in group_index.items()},
        regressor=regressor,
        n_observations=len(usable),
        r_squared=r_squared,
    )


def relative_reduction_range(
    fit: LinearLogFit, records: list[GridRecord]
) -> tuple[float, float]:
    """Relative instability reduction implied by one memory doubling.

    The paper turns the absolute 1.3% rule of thumb into a 5%-37% relative
    range by dividing the slope by the largest and smallest observed
    disagreements; this reproduces that computation on the given records.
    """
    disagreements = np.asarray([r.disagreement for r in records if r.disagreement > 0])
    if disagreements.size == 0 or fit.slope <= 0:
        return (0.0, 0.0)
    low = fit.slope / float(disagreements.max())
    high = fit.slope / float(max(disagreements.min(), fit.slope))
    return (float(min(low, 1.0)), float(min(high, 1.0)))
