"""Drift evaluation between successive embedding versions.

A retrain over a snapshot pair yields grid records whose measures (EIS,
k-NN overlap distance, PIP loss, eigenspace overlap, semantic displacement)
and downstream prediction disagreement quantify how much the new corpus
moved the embeddings -- the paper's instability, observed online.
:class:`DriftEvaluator` aggregates those records into one
:class:`DriftReport` per version pair and raises **thresholded drift
alerts**: a measure whose aggregate exceeds its configured threshold.

Thresholds are explicit configuration (``{"eis": 0.15, "disagreement":
0.2}``); an empty mapping means the monitor observes without alerting.  The
special name ``"disagreement"`` thresholds the mean downstream prediction
disagreement; every other name must be one of the measure names the grid
computed.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instability.grid import GridRecord

__all__ = ["DriftReport", "DriftEvaluator"]

#: Threshold name for the mean downstream prediction disagreement.
DISAGREEMENT = "disagreement"


@dataclass(frozen=True)
class DriftReport:
    """Aggregated stability of one (previous, current) version pair."""

    base_version: int
    version: int
    snapshot_pair: tuple[str, str]
    cells: int
    #: Mean of each measure over the cells that carried it.
    measures: dict[str, float] = field(default_factory=dict)
    #: Mean downstream prediction disagreement over all cells.
    disagreement: float = float("nan")
    #: Alerts raised against the thresholds, one dict per exceeded measure.
    alerts: tuple[dict, ...] = ()

    @property
    def drifted(self) -> bool:
        return bool(self.alerts)

    def to_jsonable(self) -> dict:
        return {
            "base_version": self.base_version,
            "version": self.version,
            "snapshot_pair": list(self.snapshot_pair),
            "cells": self.cells,
            "measures": dict(self.measures),
            "disagreement": None if math.isnan(self.disagreement) else self.disagreement,
            "alerts": [dict(a) for a in self.alerts],
            "drifted": self.drifted,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping) -> "DriftReport":
        disagreement = payload.get("disagreement")
        return cls(
            base_version=int(payload["base_version"]),
            version=int(payload["version"]),
            snapshot_pair=tuple(payload["snapshot_pair"]),
            cells=int(payload["cells"]),
            measures={str(k): float(v) for k, v in payload["measures"].items()},
            disagreement=float("nan") if disagreement is None else float(disagreement),
            alerts=tuple(dict(a) for a in payload.get("alerts", [])),
        )


class DriftEvaluator:
    """Aggregates retrain records and keeps a bounded report history."""

    def __init__(
        self,
        thresholds: Mapping[str, float] | None = None,
        *,
        history: int = 16,
    ) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self.thresholds = {str(k): float(v) for k, v in (thresholds or {}).items()}
        self._reports: deque[DriftReport] = deque(maxlen=int(history))

    def evaluate(
        self,
        records: Sequence["GridRecord"],
        *,
        base_version: int,
        version: int,
        snapshot_pair: tuple[str, str],
    ) -> DriftReport:
        """Aggregate one retrain's records into a report (kept in history)."""
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        disagreements: list[float] = []
        for record in records:
            for name, value in (record.measures or {}).items():
                value = float(value)
                if math.isnan(value):
                    continue
                sums[name] = sums.get(name, 0.0) + value
                counts[name] = counts.get(name, 0) + 1
            if not math.isnan(record.disagreement):
                disagreements.append(float(record.disagreement))
        measures = {name: sums[name] / counts[name] for name in sorted(sums)}
        disagreement = (
            sum(disagreements) / len(disagreements) if disagreements else float("nan")
        )
        report = DriftReport(
            base_version=int(base_version),
            version=int(version),
            snapshot_pair=tuple(snapshot_pair),
            cells=len(records),
            measures=measures,
            disagreement=disagreement,
            alerts=tuple(self._alerts(measures, disagreement)),
        )
        self.record(report)
        return report

    def _alerts(self, measures: Mapping[str, float], disagreement: float) -> list[dict]:
        alerts = []
        for name, threshold in sorted(self.thresholds.items()):
            value = disagreement if name == DISAGREEMENT else measures.get(name)
            if value is None or math.isnan(value):
                continue
            if value > threshold:
                alerts.append(
                    {"measure": name, "value": value, "threshold": threshold}
                )
        return alerts

    def record(self, report: DriftReport) -> None:
        """Append a report to the bounded history (newest last)."""
        self._reports.append(report)

    @property
    def reports(self) -> list[DriftReport]:
        return list(self._reports)

    @property
    def last_report(self) -> DriftReport | None:
        return self._reports[-1] if self._reports else None

    @property
    def alerts_raised(self) -> int:
        return sum(len(r.alerts) for r in self._reports)
