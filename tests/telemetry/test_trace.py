"""Span trees, context propagation, and the bounded trace ring."""

import concurrent.futures
import random

import pytest

from repro.telemetry.metrics import MetricsRegistry, REGISTRY
from repro.telemetry.trace import (
    NOOP_SPAN,
    NullTrace,
    Trace,
    TraceBuffer,
    annotate,
    bind,
    context_from_headers,
    current_trace_id,
    propagation_headers,
    remote_context,
    span,
)


class TestSpans:
    def test_noop_without_active_trace(self):
        with span("anything") as handle:
            assert handle is NOOP_SPAN
        assert current_trace_id() is None

    def test_nesting_builds_a_tree(self):
        trace = Trace("root")
        with trace.active():
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        rows = {row["name"]: row for row in trace.span_rows()}
        assert set(rows) == {"root", "outer", "inner"}
        assert rows["outer"]["parent_id"] == rows["root"]["span_id"]
        assert rows["inner"]["parent_id"] == rows["outer"]["span_id"]
        assert rows["inner"]["duration_ms"] is not None

    def test_exception_marks_span_and_propagates(self):
        trace = Trace("root")
        with pytest.raises(RuntimeError):
            with trace.active():
                with span("failing"):
                    raise RuntimeError("boom")
        failing = next(r for r in trace.span_rows() if r["name"] == "failing")
        assert failing["attrs"]["error"] == "RuntimeError"

    def test_metric_observed_even_untraced(self):
        registry = MetricsRegistry()
        # span() always feeds the global REGISTRY; point a throwaway name at it.
        before = REGISTRY.get("phase", "unit-test-op")
        assert before is None or before.count == 0
        with span("op", metric="phase", label="unit-test-op"):
            pass
        hist = REGISTRY.get("phase", "unit-test-op")
        assert hist is not None and hist.count >= 1
        del registry

    def test_annotate_targets_innermost_span(self):
        trace = Trace("root")
        with trace.active():
            with span("child"):
                annotate(flag=True)
            annotate(at_root=1)
        rows = {row["name"]: row for row in trace.span_rows()}
        assert rows["child"]["attrs"]["flag"] is True
        assert rows["root"]["attrs"]["at_root"] == 1

    def test_max_spans_truncates_not_grows(self):
        trace = Trace("root", max_spans=4)
        with trace.active():
            for _ in range(10):
                with span("s"):
                    pass
        assert len(trace.span_rows()) == 4
        assert trace.truncated == 7      # 10 attempted + root kept - 4 slots


class TestPropagation:
    def test_bind_carries_context_across_threads(self):
        trace = Trace("root")
        with trace.active():
            with concurrent.futures.ThreadPoolExecutor(1) as pool:
                unbound = pool.submit(current_trace_id).result()
                bound = pool.submit(bind(current_trace_id)).result()
        assert unbound is None
        assert bound == trace.trace_id

    def test_headers_roundtrip(self):
        trace = Trace("root")
        with trace.active():
            headers = propagation_headers()
        lowered = {k.lower(): v for k, v in headers.items()}
        trace_id, parent_id = context_from_headers(lowered)
        assert trace_id == trace.trace_id
        assert parent_id == trace.root.span_id

    def test_request_id_header_is_a_fallback_trace_id(self):
        trace_id, _ = context_from_headers({"x-request-id": "abc123"})
        assert trace_id == "abc123"
        # X-Trace-Id wins over X-Request-Id.
        trace_id, _ = context_from_headers(
            {"x-request-id": "abc123", "x-trace-id": "def456"}
        )
        assert trace_id == "def456"

    def test_hostile_header_values_rejected(self):
        for bad in ("x" * 65, "has space", 'quote"', "new\nline", ""):
            assert context_from_headers({"x-trace-id": bad}) == (None, None)

    def test_remote_context_shape(self):
        assert remote_context() is None
        trace = Trace("root")
        with trace.active():
            ctx = remote_context()
        assert ctx == {"trace_id": trace.trace_id, "parent_span": trace.root.span_id}


class TestTraceBuffer:
    def test_request_retains_and_serves_back(self):
        buffer = TraceBuffer(sample=1.0, slow_ms=0.0)
        with buffer.request("GET /x", trace_id="a" * 32) as trace:
            with span("work"):
                pass
        assert isinstance(trace, Trace)
        rows = buffer.get("a" * 32)
        assert [r["name"] for r in rows] == ["GET /x", "work"]
        summaries = buffer.recent()
        assert summaries[0]["trace_id"] == "a" * 32
        assert summaries[0]["spans"] == 2

    def test_disabled_buffer_hands_out_null_traces(self):
        buffer = TraceBuffer(sample=0.0, slow_ms=0.0)
        assert not buffer.enabled
        with buffer.request("GET /x") as trace:
            assert isinstance(trace, NullTrace)
            assert current_trace_id() is None     # no context, spans no-op
        assert buffer.recent() == []
        assert buffer.counters()["untraced"] == 1

    def test_sampling_is_probabilistic_and_counted(self):
        buffer = TraceBuffer(sample=0.5, slow_ms=0.0, rng=random.Random(7))
        for _ in range(200):
            with buffer.request("GET /x"):
                pass
        counters = buffer.counters()
        kept = counters["kept"]
        assert 60 <= kept <= 140                  # ~100 expected
        assert counters["untraced"] == 200 - kept

    def test_slow_traces_always_retained(self):
        # sample=0 but slow_ms>0: every request is collected, only slow kept.
        buffer = TraceBuffer(sample=0.0, slow_ms=50.0)
        with buffer.request("fast") as trace:
            pass
        buffer_slow = buffer  # same buffer; force a slow finish via duration
        with buffer_slow.request("slow") as trace:
            pass
        # The CM measured real (fast) wall time; re-finish explicitly slow.
        trace2 = buffer.start("slow-explicit")
        buffer.finish(trace2, duration_ms=75.0)
        summaries = buffer.recent()
        names = [s["name"] for s in summaries]
        assert "slow-explicit" in names and "fast" not in names
        slow = next(s for s in summaries if s["name"] == "slow-explicit")
        assert slow["slow"] is True
        assert buffer.counters()["kept_slow"] == 1

    def test_ring_capacity_evicts_oldest(self):
        buffer = TraceBuffer(capacity=3, sample=1.0, slow_ms=0.0)
        for index in range(5):
            with buffer.request(f"r{index}"):
                pass
        names = sorted(s["name"] for s in buffer.recent())
        assert names == ["r2", "r3", "r4"]
        assert buffer.counters()["retained"] == 3

    def test_ingest_stitches_remote_rows_into_open_trace(self):
        buffer = TraceBuffer(sample=1.0, slow_ms=0.0)
        with buffer.request("GET /grid", trace_id="b" * 32) as trace:
            remote_rows = [
                {"trace_id": "b" * 32, "span_id": "1" * 16,
                 "parent_id": trace.root.span_id, "name": "worker.group",
                 "start": 0.0, "duration_ms": 5.0, "attrs": {}},
            ]
            assert buffer.ingest(remote_rows) == 1
        rows = buffer.get("b" * 32)
        assert [r["name"] for r in rows] == ["GET /grid", "worker.group"]
        assert buffer.counters()["spans_ingested"] == 1

    def test_subrequest_with_owned_trace_id_joins_instead_of_clobbering(self):
        # A request arriving with the id of a trace this buffer already
        # owns (e.g. a worker fetching artifacts with the grid's headers)
        # must join it as a child span — a rival trace under the same id
        # would clobber the root and orphan spans ingested afterwards.
        buffer = TraceBuffer(sample=1.0, slow_ms=0.0)
        with buffer.request("GET /grid", trace_id="e" * 32) as root:
            sub = buffer.request("GET /artifacts", trace_id="e" * 32)
            with sub as subtrace:
                assert subtrace.trace_id == "e" * 32
                with span("store.get"):
                    pass
            # The root is still the one open trace under that id, so late
            # remote spans attach to it, not to a doomed rival.
            assert buffer.ingest([
                {"trace_id": "e" * 32, "span_id": "3" * 16,
                 "parent_id": root.root.span_id, "name": "worker.group",
                 "start": 0.0, "duration_ms": 5.0, "attrs": {}},
            ]) == 1
        names = [r["name"] for r in buffer.get("e" * 32)]
        assert names[0] == "GET /grid"
        assert {"GET /artifacts", "store.get", "worker.group"} <= set(names)
        counters = buffer.counters()
        assert counters["joined"] == 1
        assert counters["kept"] == 1          # one trace retained, not two

    def test_ingest_for_unknown_trace_counts_dropped(self):
        buffer = TraceBuffer()
        dropped = [{"trace_id": "c" * 32, "span_id": "2" * 16, "name": "x",
                    "start": 0.0, "duration_ms": 1.0, "attrs": {}}]
        assert buffer.ingest(dropped) == 0
        assert buffer.counters()["spans_dropped"] == 1

    def test_add_span_records_pretimed_span(self):
        buffer = TraceBuffer(sample=1.0, slow_ms=0.0)
        with buffer.request("GET /grid", trace_id="d" * 32):
            assert buffer.add_span("d" * 32, "cluster.lease_wait",
                                   123.0, 42.0, worker="w1")
            assert not buffer.add_span("nope", "x", 0.0, 0.0)
        wait = next(r for r in buffer.get("d" * 32)
                    if r["name"] == "cluster.lease_wait")
        assert wait["duration_ms"] == 42.0
        assert wait["attrs"]["worker"] == "w1"

    def test_validation(self):
        buffer = TraceBuffer(capacity=0, sample=5.0, slow_ms=-1.0)
        assert buffer.capacity == 1          # floored
        assert buffer.sample == 1.0          # clamped
        assert buffer.slow_ms == 0.0         # clamped
