"""Online stability-query serving layer.

Wraps the grid-execution engine in a long-lived service
(:class:`~repro.serving.service.StabilityService`) and a stdlib-only async
HTTP JSON API (:mod:`repro.serving.api`, the ``repro-serve`` entrypoint):
the paper's stability measures, dimension-precision selection under a memory
budget, and streaming grid execution become operational queries instead of
offline batch scripts.
"""

from repro.serving.service import ServiceConfig, StabilityService

__all__ = ["ServiceConfig", "StabilityService"]
