"""Tests for orthogonal Procrustes alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.embeddings.alignment import align_matrices, align_pair, orthogonal_procrustes


def random_rotation(dim: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    return q


class TestOrthogonalProcrustes:
    def test_result_is_orthogonal(self, rng):
        X = rng.standard_normal((20, 5))
        Y = rng.standard_normal((20, 5))
        R = orthogonal_procrustes(X, Y)
        np.testing.assert_allclose(R.T @ R, np.eye(5), atol=1e-10)

    def test_recovers_exact_rotation(self, rng):
        X = rng.standard_normal((30, 4))
        R_true = random_rotation(4)
        Y = X @ R_true.T          # Y rotated away from X
        aligned = align_matrices(X, Y)
        np.testing.assert_allclose(aligned, X, atol=1e-8)

    def test_alignment_never_increases_distance(self, rng):
        X = rng.standard_normal((25, 6))
        Y = rng.standard_normal((25, 6))
        before = np.linalg.norm(X - Y)
        after = np.linalg.norm(X - align_matrices(X, Y))
        assert after <= before + 1e-9

    def test_dim_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            orthogonal_procrustes(rng.standard_normal((5, 2)), rng.standard_normal((5, 3)))


class TestAlignPair:
    def test_aligned_embedding_closer_to_reference(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        rotated = align_pair(emb_a, emb_b)
        assert np.linalg.norm(emb_a.vectors - rotated.vectors) <= (
            np.linalg.norm(emb_a.vectors - emb_b.vectors) + 1e-9
        )
        assert "aligned_to" in rotated.metadata

    def test_dimension_mismatch_raises(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        smaller = emb_b.with_vectors(emb_b.vectors[:, :-1])
        with pytest.raises(ValueError, match="different dimensions"):
            align_pair(emb_a, smaller)


@settings(max_examples=20, deadline=None)
@given(
    hnp.arrays(np.float64, (12, 3), elements=st.floats(-5, 5)),
)
def test_property_procrustes_is_orthogonal_and_contractive(X):
    if np.linalg.norm(X) == 0:
        return
    rng = np.random.default_rng(0)
    Y = X @ random_rotation(3, seed=1) + 0.01 * rng.standard_normal(X.shape)
    R = orthogonal_procrustes(X, Y)
    np.testing.assert_allclose(R.T @ R, np.eye(3), atol=1e-8)
    assert np.linalg.norm(X - Y @ R) <= np.linalg.norm(X - Y) + 1e-8
