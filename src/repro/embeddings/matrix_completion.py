"""Online matrix completion (MC) embeddings.

The paper's MC algorithm (following Jin et al., 2016) approximates the
observed entries of the PPMI matrix with a symmetric low-rank factorization

    min_X  sum_{(i,j) in Theta} (X_i . X_j - A_ij)^2

trained with stochastic gradient descent over sampled observed entries.  This
module implements that online solver with mini-batched, vectorised updates.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.cooccurrence import build_cooccurrence, ppmi_matrix
from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import EMBEDDING_ALGORITHMS, Embedding, EmbeddingAlgorithm
from repro.utils.logging import get_logger
from repro.utils.rng import check_random_state

logger = get_logger(__name__)

__all__ = ["MatrixCompletionModel"]


@EMBEDDING_ALGORITHMS.register("mc")
class MatrixCompletionModel(EmbeddingAlgorithm):
    """Symmetric matrix completion on the PPMI matrix via SGD.

    Parameters
    ----------
    dim:
        Embedding dimension.
    window_size:
        Co-occurrence window used to build the PPMI matrix.
    learning_rate:
        SGD step size (the paper uses 0.2 with decay after 20 epochs).
    epochs:
        Number of passes over the observed entries.
    lr_decay_epoch:
        Epoch index after which the learning rate is halved every epoch.
    batch_size:
        Mini-batch size over observed entries.
    stopping_tolerance:
        Relative improvement in epoch loss below which training stops early.
    init_scale:
        Scale of the uniform initialisation.
    """

    name = "mc"

    def __init__(
        self,
        dim: int = 50,
        *,
        window_size: int = 8,
        learning_rate: float = 0.05,
        epochs: int = 10,
        lr_decay_epoch: int = 8,
        batch_size: int = 256,
        stopping_tolerance: float = 1e-4,
        init_scale: float = 0.1,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, seed=seed)
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.window_size = int(window_size)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.lr_decay_epoch = int(lr_decay_epoch)
        self.batch_size = int(batch_size)
        self.stopping_tolerance = float(stopping_tolerance)
        self.init_scale = float(init_scale)

    # -- training ------------------------------------------------------------

    def fit(self, corpus: Corpus, *, vocab: Vocabulary | None = None) -> Embedding:
        vocab = self._resolve_vocab(corpus, vocab)
        docs = corpus.encode_documents(vocab)
        counts = build_cooccurrence(docs, len(vocab), window_size=self.window_size)
        ppmi = ppmi_matrix(counts).tocoo()
        vectors = self.fit_from_entries(
            rows=ppmi.row, cols=ppmi.col, values=ppmi.data, n_words=len(vocab)
        )
        return Embedding(vocab=vocab, vectors=vectors, metadata=self._metadata(corpus))

    def fit_from_entries(
        self,
        *,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        n_words: int,
    ) -> np.ndarray:
        """Run the online solver on explicit observed entries ``A[rows, cols] = values``."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (len(rows) == len(cols) == len(values)):
            raise ValueError("rows, cols and values must have equal length")
        rng = check_random_state(self.seed)
        X = (rng.random((n_words, self.dim)) - 0.5) * self.init_scale

        n_obs = len(values)
        if n_obs == 0:
            logger.warning("matrix completion received no observed entries; returning init")
            return X

        prev_loss = np.inf
        lr = self.learning_rate
        for epoch in range(self.epochs):
            if epoch >= self.lr_decay_epoch:
                lr *= 0.5
            order = rng.permutation(n_obs)
            epoch_loss = 0.0
            for start in range(0, n_obs, self.batch_size):
                batch = order[start : start + self.batch_size]
                i, j, a = rows[batch], cols[batch], values[batch]
                xi, xj = X[i], X[j]
                pred = np.einsum("nd,nd->n", xi, xj)
                # Clip the per-entry error to keep the online updates stable
                # when many observed entries touch the same (frequent) word
                # within one vectorised batch.
                err = np.clip(pred - a, -10.0, 10.0)
                epoch_loss += float(np.sum(err**2))
                # d/dxi (xi.xj - a)^2 = 2 err * xj (and symmetrically for xj).
                # Updates are applied per observed entry (online SGD), not
                # averaged over the mini-batch -- matching Jin et al.'s online
                # solver; the mini-batch only vectorises the computation.
                grad_i = (2.0 * err)[:, None] * xj
                grad_j = (2.0 * err)[:, None] * xi
                np.add.at(X, i, -lr * grad_i)
                np.add.at(X, j, -lr * grad_j)
            epoch_loss /= n_obs
            if np.isfinite(prev_loss):
                rel_improvement = (prev_loss - epoch_loss) / max(prev_loss, 1e-12)
                if 0 <= rel_improvement < self.stopping_tolerance:
                    logger.debug("MC early stop at epoch %d (loss %.5f)", epoch, epoch_loss)
                    break
            prev_loss = epoch_loss
        return X
