"""Quantized fast-path measures: sound error bounds, caching, memory gauges.

The bounds pinned here are the serving layer's escalation contract: a fast
response is served only while every per-measure bound passes the tolerance,
so a bound that under-covered would silently serve wrong numbers.  The grid
test therefore checks ``|fast - exact| <= bound`` cell by cell against the
exact float64 suite, across dimensions and compression precisions (including
a cell whose stored pair is itself 1-bit quantized -- the near-identical-
matrices regime that originally exposed float32 Gram cancellation).
"""

import warnings

import numpy as np
import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
from repro.measures import FAST_MEASURES, build_fast_pair, evaluate_fast
from repro.measures.base import DecompositionCache

FAST_CONFIG = PipelineConfig(
    corpus=SyntheticCorpusConfig(
        vocab_size=120, n_documents=60, doc_length_mean=30, seed=7
    ),
    algorithms=("svd",),
    dimensions=(4, 6),
    precisions=(1, 32),
    seeds=(0,),
    tasks=("sst2",),
    embedding_epochs=2,
    downstream_epochs=3,
    ner_epochs=2,
)


@pytest.fixture(scope="module")
def pipeline():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return InstabilityPipeline(FAST_CONFIG)


@pytest.mark.filterwarnings("ignore::UserWarning")
class TestFastBoundsSound:
    @pytest.mark.parametrize("dim", (4, 6))
    @pytest.mark.parametrize("precision", (1, 32))
    def test_bound_covers_exact_gap(self, pipeline, dim, precision):
        fast = pipeline.compute_measures_fast("svd", dim, precision, 0)
        exact = pipeline.compute_measures("svd", dim, precision, 0)
        for name in FAST_MEASURES:
            error = abs(fast["values"][name] - exact[name])
            assert error <= fast["bounds"][name] + 1e-12, (
                f"{name}: |fast - exact| = {error} exceeds bound "
                f"{fast['bounds'][name]} at dim={dim} precision={precision}"
            )
            assert fast["bounds"][name] >= 0.0

    def test_fast_measures_cached(self, pipeline):
        first = pipeline.compute_measures_fast("svd", 4, 1, 0)
        second = pipeline.compute_measures_fast("svd", 4, 1, 0)
        assert first == second

    def test_fast_pair_cached(self, pipeline):
        first = pipeline.fast_pair("svd", 4, 1, 0)
        second = pipeline.fast_pair("svd", 4, 1, 0)
        assert set(first) == set(second)
        for name in first:
            assert np.array_equal(first[name], second[name]), name

    def test_fast_key_distinct_from_exact_key(self, pipeline):
        assert pipeline.fast_measures_key("svd", 4, 1, 0) != pipeline.measures_key(
            "svd", 4, 1, 0
        )


class TestFastPairUnit:
    def test_full_precision_pair_has_tiny_residuals(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        data = build_fast_pair(emb_a, emb_b, top_k=None, bits=32)
        # 32 "bits" means a plain float32 cast: the only residual left is the
        # cast's rounding, orders of magnitude below any quantization step.
        scale = float(np.linalg.norm(np.asarray(emb_a.vectors, dtype=np.float64)))
        assert float(np.asarray(data["fro_residuals"]).max()) <= 1e-5 * scale

    def test_values_within_caps_and_bounds_finite(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        data = build_fast_pair(emb_a, emb_b, top_k=None, bits=4)
        selected = tuple(m for m in FAST_MEASURES if m != "eis")
        values, bounds = evaluate_fast(
            data, measures=selected, knn_k=3, knn_num_queries=50
        )
        assert set(values) == set(selected) == set(bounds)
        for name in selected:
            assert np.isfinite(values[name])
            assert bounds[name] >= 0.0
        assert bounds["1-knn"] <= 1.0 + 1e-9
        assert bounds["1-eigenspace-overlap"] <= 1.0 + 1e-9
        assert bounds["semantic-displacement"] <= 2.0 + 1e-9

    def test_unknown_measure_rejected(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        data = build_fast_pair(emb_a, emb_b, top_k=None)
        with pytest.raises(KeyError, match="fast path"):
            evaluate_fast(data, measures=("no-such-measure",))

    def test_eis_needs_anchor_factors(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        data = build_fast_pair(emb_a, emb_b, top_k=None)
        with pytest.raises(ValueError, match="anchor factors"):
            evaluate_fast(data, measures=("eis",))


class TestDecompositionCacheGauge:
    def test_bytes_in_memory_tracks_factor_arrays(self):
        cache = DecompositionCache()
        assert cache.stats["bytes_in_memory"] == 0
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 8))
        U, S, Vt = cache.svd(X)
        assert cache.stats["bytes_in_memory"] == U.nbytes + S.nbytes + Vt.nbytes

    def test_bytes_in_memory_includes_cross_products(self):
        cache = DecompositionCache()
        rng = np.random.default_rng(1)
        X, Y = rng.normal(size=(30, 6)), rng.normal(size=(30, 5))
        before = cache.stats["bytes_in_memory"]
        product = cache.cross(X, Y)
        after = cache.stats["bytes_in_memory"]
        # Two SVDs plus the cross product landed in the cache.
        assert after > before
        assert after >= product.nbytes
