"""Content-addressed artifact store for the grid-execution engine.

Every expensive artifact of the instability pipeline -- trained embedding
pairs, quantized pairs, matrix decompositions, downstream results, measure
values -- is keyed by a hash of the configuration that produced it.  Repeated
grid cells, repeated experiments, and repeated *runs* then hit the cache
instead of recomputing:

* an **in-memory tier** (always on) preserves object identity within a
  process, replacing the ad-hoc dicts the pipeline used to keep;
* an optional **disk tier** (``root`` given) persists artifacts as ``.npz``
  and ``.json`` files under ``root/<kind>/<key>.*`` via the same conventions
  as :mod:`repro.utils.io`, so a second process (or a second day) skips
  retraining entirely.

Writes to the disk tier go through a temporary file and an atomic
``os.replace`` so concurrent scheduler workers sharing one store can never
observe a half-written artifact.  Per-kind hit/miss counters make cache
behaviour testable ("a warm rerun performs zero retrainings").
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import Embedding
from repro.utils.io import ensure_dir, to_jsonable
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "config_hash",
    "CacheStats",
    "ArtifactStore",
    "configure_default_store",
    "default_store",
]


def config_hash(payload: Any) -> str:
    """Stable content hash of a JSON-able configuration payload.

    Dataclasses, numpy scalars/arrays and nested mappings are canonicalised
    through :func:`repro.utils.io.to_jsonable`; key order does not matter.
    """
    canonical = json.dumps(to_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass
class CacheStats:
    """Hit/miss/write counters for one artifact kind."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Entries seeded into the memory tier from outside (worker warm-up);
    #: they are neither hits nor puts -- the store did not produce them.
    preloads: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


def _atomic_write(path: Path, writer) -> None:
    """Write a file via a sibling temp file + ``os.replace`` (atomic on POSIX)."""
    ensure_dir(path.parent)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _vocab_from_arrays(words: np.ndarray, counts: np.ndarray) -> Vocabulary:
    return Vocabulary({str(w): int(c) for w, c in zip(words, counts)})


class ArtifactStore:
    """Two-tier (memory + optional disk) content-addressed artifact cache."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            ensure_dir(self.root)
        self._memory: dict[tuple[str, str], Any] = {}
        self.stats: dict[str, CacheStats] = {}

    # -- bookkeeping ---------------------------------------------------------

    def stat(self, kind: str) -> CacheStats:
        """The (auto-created) counter block of one artifact kind."""
        if kind not in self.stats:
            self.stats[kind] = CacheStats()
        return self.stats[kind]

    def reset_stats(self) -> None:
        self.stats = {}

    @property
    def persistent(self) -> bool:
        return self.root is not None

    def key(self, **fields: Any) -> str:
        """Content hash of keyword fields (convenience over :func:`config_hash`)."""
        return config_hash(fields)

    def preload(self, kind: str, key: str, value: Any) -> None:
        """Seed the memory tier with an externally-produced artifact.

        Used by the worker warm-up path: the parent ships artifacts it already
        holds and workers preload them, skipping recomputation without
        touching the disk tier (the parent persists its own copies).
        """
        self._memory[(kind, key)] = value
        self.stat(kind).preloads += 1

    def memory_entries(self, kind: str) -> dict[str, Any]:
        """Snapshot of the memory tier's entries of one artifact kind."""
        return {key: value for (k, key), value in self._memory.items() if k == kind}

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, kind: str, key: str, suffix: str) -> Path:
        assert self.root is not None
        return self.root / kind / f"{key}{suffix}"

    def _record(self, kind: str, found: bool) -> None:
        stat = self.stat(kind)
        if found:
            stat.hits += 1
        else:
            stat.misses += 1

    # -- generic JSON artifacts ----------------------------------------------

    def get_json(self, kind: str, key: str) -> Any | None:
        """Look up a JSON-able artifact; ``None`` on miss (counted)."""
        memo = self._memory.get((kind, key))
        if memo is not None:
            self._record(kind, True)
            return memo
        if self.root is not None:
            path = self._path(kind, key, ".json")
            if path.exists():
                value = json.loads(path.read_text())
                self._memory[(kind, key)] = value
                self._record(kind, True)
                return value
        self._record(kind, False)
        return None

    def put_json(self, kind: str, key: str, value: Any) -> None:
        value = to_jsonable(value)
        self._memory[(kind, key)] = value
        self.stat(kind).puts += 1
        if self.root is not None:
            payload = json.dumps(value, indent=2, sort_keys=True).encode("utf-8")
            _atomic_write(self._path(kind, key, ".json"), lambda f: f.write(payload))

    # -- array artifacts (matrix decompositions etc.) --------------------------

    def get_arrays(self, kind: str, key: str) -> dict[str, np.ndarray] | None:
        memo = self._memory.get((kind, key))
        if memo is not None:
            self._record(kind, True)
            return memo
        if self.root is not None:
            path = self._path(kind, key, ".npz")
            if path.exists():
                with np.load(path) as data:
                    arrays = {name: data[name] for name in data.files}
                self._memory[(kind, key)] = arrays
                self._record(kind, True)
                return arrays
        self._record(kind, False)
        return None

    def put_arrays(self, kind: str, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        arrays = {name: np.asarray(arr) for name, arr in arrays.items()}
        self._memory[(kind, key)] = arrays
        self.stat(kind).puts += 1
        if self.root is not None:
            _atomic_write(
                self._path(kind, key, ".npz"),
                lambda f: np.savez_compressed(f, **arrays),
            )

    # -- embedding pairs ---------------------------------------------------------

    def get_embedding_pair(self, kind: str, key: str) -> tuple[Embedding, Embedding] | None:
        """Look up a (base, drifted) embedding pair; ``None`` on miss."""
        memo = self._memory.get((kind, key))
        if memo is not None:
            self._record(kind, True)
            return memo
        if self.root is not None:
            path = self._path(kind, key, ".npz")
            if path.exists():
                pair = self._load_pair(path)
                self._memory[(kind, key)] = pair
                self._record(kind, True)
                return pair
        self._record(kind, False)
        return None

    def put_embedding_pair(
        self, kind: str, key: str, pair: tuple[Embedding, Embedding]
    ) -> None:
        self._memory[(kind, key)] = pair
        self.stat(kind).puts += 1
        if self.root is not None:
            emb_a, emb_b = pair
            payload = {
                "vectors_a": emb_a.vectors,
                "vectors_b": emb_b.vectors,
                "words_a": np.array(emb_a.vocab.words, dtype=object),
                "counts_a": emb_a.vocab.counts,
                "words_b": np.array(emb_b.vocab.words, dtype=object),
                "counts_b": emb_b.vocab.counts,
                "metadata": np.array(
                    json.dumps([to_jsonable(emb_a.metadata), to_jsonable(emb_b.metadata)])
                ),
            }
            _atomic_write(
                self._path(kind, key, ".npz"),
                lambda f: np.savez_compressed(f, **payload),
            )

    @staticmethod
    def _load_pair(path: Path) -> tuple[Embedding, Embedding]:
        with np.load(path, allow_pickle=True) as data:
            meta_a, meta_b = json.loads(str(data["metadata"]))
            embeddings = []
            for side, meta in (("a", meta_a), ("b", meta_b)):
                words = [str(w) for w in data[f"words_{side}"]]
                counts = data[f"counts_{side}"]
                vectors = data[f"vectors_{side}"]
                vocab = _vocab_from_arrays(np.array(words, dtype=object), counts)
                # Vocabulary re-sorts by frequency; restore row alignment.
                order = np.asarray([words.index(w) for w in vocab.words], dtype=np.int64)
                embeddings.append(Embedding(vocab=vocab, vectors=vectors[order], metadata=meta))
        return embeddings[0], embeddings[1]


# -- process-wide default store ------------------------------------------------
#
# ``repro.experiments.runner --cache-dir`` configures a root here once, and
# every pipeline constructed afterwards without an explicit store persists to
# it; the default without configuration stays a private in-memory store per
# pipeline, matching the seed behaviour.

_DEFAULT_ROOT: Path | None = None


def configure_default_store(root: str | Path | None) -> None:
    """Set (or clear, with ``None``) the process-wide artifact store root."""
    global _DEFAULT_ROOT
    _DEFAULT_ROOT = Path(root) if root is not None else None
    if _DEFAULT_ROOT is not None:
        logger.info("default artifact store root: %s", _DEFAULT_ROOT)


def default_store() -> ArtifactStore:
    """A store at the configured default root, or a fresh in-memory store."""
    return ArtifactStore(_DEFAULT_ROOT)
