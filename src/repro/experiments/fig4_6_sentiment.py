"""Figures 4-6 (Appendix D.1): the stability-memory tradeoff on all sentiment tasks.

Repeats the dimension, precision and joint sweeps on the remaining sentiment
datasets (MR, Subj, MPQA analogues), confirming the trends of Figures 1-2
hold beyond SST-2.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.experiments.fig2_memory import rule_of_thumb
from repro.instability.grid import average_over_seeds
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    tasks: tuple[str, ...] = ("mr", "subj", "mpqa"),
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce the appendix sentiment sweeps (Figures 4-6)."""
    pipe = resolve_pipeline(pipeline)
    records = resolve_engine(pipe, n_workers=n_workers).run(tasks=tasks, with_measures=False)
    averaged = average_over_seeds(records)
    rows = [
        {
            "task": r.task,
            "algorithm": r.algorithm,
            "dimension": r.dim,
            "precision": r.precision,
            "memory_bits_per_word": r.memory,
            "disagreement_pct": r.disagreement,
        }
        for r in sorted(averaged, key=lambda r: (r.task, r.algorithm, r.memory))
    ]
    summary = rule_of_thumb(records)
    return ExperimentResult(name="figures-4-6-sentiment-appendix", rows=rows, summary=summary)
