"""Use the eigenspace instability measure to pick dimension-precision settings.

Reproduces the paper's practical application (Sections 4.2 and 5.2): given a
memory budget, choose the dimension-precision combination expected to be most
stable downstream *without training any downstream model*, and compare the
choice against the oracle and against the other embedding distance measures.

Run with: ``python examples/select_dimension_precision.py``
"""

from repro.analysis.reporting import format_table
from repro.engine import GridEngine
from repro.experiments import quick_pipeline_config, table2_selection, table3_budget
from repro.selection.budget import group_by_budget
from repro.selection.criteria import ORACLE, measure_criterion
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()
    config = quick_pipeline_config(
        algorithms=("mc",),
        dimensions=(8, 16, 32),
        precisions=(1, 2, 4, 8, 32),
        tasks=("sst2",),
    )
    records = GridEngine(config).run(with_measures=True)

    # What would the EIS measure pick for each memory budget, and what would
    # the oracle (which trains every downstream model) have picked?
    eis = measure_criterion("eis")
    picks = []
    for memory, candidates in group_by_budget(records).items():
        chosen = eis.select(candidates)
        oracle = ORACLE.select(candidates)
        picks.append(
            {
                "memory_bits_per_word": memory,
                "eis_pick": f"d={chosen.dim},b={chosen.precision}",
                "eis_pick_disagreement_pct": chosen.disagreement,
                "oracle_pick": f"d={oracle.dim},b={oracle.precision}",
                "oracle_disagreement_pct": oracle.disagreement,
            }
        )
    print(format_table(picks, title="EIS picks vs oracle per memory budget"))
    print()

    print(table2_selection.summarize(records).to_table())
    print()
    print(table3_budget.summarize(records).to_table())


if __name__ == "__main__":
    main()
