"""Pull-based cluster worker: the ``repro-worker`` entrypoint.

A worker polls a coordinator (any ``repro-serve`` instance) for leases over
plain stdlib HTTP, executes each leased
:class:`~repro.engine.scheduler.CellGroup` through a warm local
:class:`~repro.instability.pipeline.InstabilityPipeline`, and pushes the
resulting :class:`~repro.instability.grid.GridRecord`\\ s back.  Three
properties make the fleet safe and fast:

* **the coordinator is a store tier** -- each worker's
  :class:`~repro.engine.store.ArtifactStore` mounts the coordinator's
  ``/artifacts`` API as its remote tier, so trained pairs, anchor
  decompositions and measure values are computed once cluster-wide and
  fetched everywhere else; pushes ride the async replication queue and are
  :meth:`~repro.engine.store.ArtifactStore.flush`\\ ed before a group is
  reported complete, so dependants always find their ancestors;
* **heartbeats** -- a background thread renews the lease while a group
  executes; if the worker dies, the lease expires and the coordinator
  re-leases the group (at-least-once is safe: results are deterministic and
  content-addressed);
* **warm pipelines** -- pipelines are cached per config hash, so every lease
  of the same run (and every warm rerun) reuses the corpus, datasets and
  store of the first.

Run it::

    repro-worker http://coordinator:8732            # or python -m repro.cluster.worker
    repro-worker http://coordinator:8732 --cache-dir /data/cache --max-idle 60
"""

from __future__ import annotations

import argparse
import json
import os
import random
import socket
import sys
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.cluster.coordinator import group_from_wire
from repro.cluster.client import open_json_connection
from repro.engine.scheduler import evaluate_group
from repro.engine.store import ArtifactStore, config_hash
from repro.telemetry.trace import Trace, propagation_headers
from repro.utils.io import to_jsonable
from repro.utils.logging import configure_logging, get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instability.pipeline import InstabilityPipeline

logger = get_logger(__name__)

__all__ = ["ClusterWorker", "CoordinatorClient", "main"]


class CoordinatorClient:
    """Minimal JSON-over-HTTP client for the ``/cluster/*`` endpoints."""

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        self.url = url
        self.timeout = float(timeout)
        self._local = threading.local()
        # Every open connection, across all threads.  Connections are
        # per-thread (http.client is not thread-safe) but abort() must reach
        # them from *outside* their owning thread -- e.g. the worker closing
        # a heartbeat thread's socket so its blocked send fails fast.
        self._conns_lock = threading.Lock()
        self._conns: set = set()

    def abort(self) -> None:
        """Close every open connection, unblocking threads stuck in I/O.

        Safe to call from any thread: ``http.client`` transparently reopens
        a closed connection on the next request, so surviving threads just
        pay one reconnect.
        """
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def _post(self, path: str, payload: dict) -> dict:
        """POST one JSON payload; reconnects once on a stale keep-alive."""
        body = json.dumps(to_jsonable(payload)).encode("utf-8")
        last_error: Exception | None = None
        for _ in (0, 1):
            conn = getattr(self._local, "conn", None)
            if conn is None:
                conn, base = open_json_connection(self.url, self.timeout)
                self._local.conn = conn
                self._local.base = base
                with self._conns_lock:
                    self._conns.add(conn)
            try:
                headers = {"Content-Type": "application/json"}
                headers.update(propagation_headers())
                conn.request(
                    "POST", f"{self._local.base}{path}", body=body, headers=headers
                )
                response = conn.getresponse()
                data = response.read()
                if response.status != 200:
                    raise ConnectionError(
                        f"coordinator answered HTTP {response.status} on {path}: "
                        f"{data.decode('utf-8', 'replace')[:200]}"
                    )
                return json.loads(data)
            except (OSError, ConnectionError, ValueError) as error:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - best effort
                    pass
                with self._conns_lock:
                    self._conns.discard(conn)
                self._local.conn = None
                last_error = error
        raise ConnectionError(f"coordinator {self.url} unreachable: {last_error}")

    def lease(self, worker: str) -> dict:
        return self._post("/cluster/lease", {"worker": worker})

    def heartbeat(self, worker: str, lease_id: str) -> dict:
        return self._post("/cluster/heartbeat", {"worker": worker, "lease_id": lease_id})

    def complete(
        self,
        worker: str,
        lease_id: str,
        run_id: str,
        group_index: int,
        rows: list[dict],
        stats: dict | None = None,
        error: str | None = None,
        spans: list[dict] | None = None,
    ) -> dict:
        payload = {
            "worker": worker,
            "lease_id": lease_id,
            "run_id": run_id,
            "group_index": group_index,
            "records": rows,
            "stats": stats,
            "error": error,
        }
        if spans:
            payload["spans"] = spans
        return self._post("/cluster/complete", payload)


class ClusterWorker:
    """Lease-execute-report loop against one coordinator.

    Parameters
    ----------
    coordinator_url:
        Base URL of the coordinator (``repro-serve``); also mounted as the
        worker store's remote tier.
    worker_id:
        Stable identity reported with every request (defaults to host-pid).
    cache_dir:
        Optional local disk tier under the remote tier; gives the worker
        warm restarts in addition to the cluster-wide store.
    store_replicas:
        Replica targets (peer URLs and/or directories) mounted as one
        N-way replicated store tier **instead of** the coordinator tier:
        the storage fabric is then separate from the control plane, and the
        fleet survives the loss of any single replica (reads fall through
        to the survivors, missed writes queue as hints).
    poll_interval:
        Baseline sleep between lease polls when the coordinator has no work
        (also the backoff floor).
    max_idle:
        Stop after this many consecutive idle seconds (``None`` = run until
        :meth:`stop`); how CI and tests bound a worker's lifetime.
    client:
        Injectable transport (tests drive the worker against an in-process
        coordinator without sockets).
    flush_timeout:
        Bound on the pre-report artifact replication barrier.
    max_pipelines:
        Warm pipelines kept alive at once (LRU by use).  A long-lived worker
        serving many distinct configurations would otherwise pin a corpus,
        datasets, store and replication thread per config forever.
    backoff_max:
        Cap on the exponential backoff applied to consecutive
        ``ConnectionError`` polls.  Each failure doubles the sleep from
        ``poll_interval`` up to this cap, jittered by a uniform 50-100%
        factor so a fleet that lost its coordinator together does not
        rejoin as a thundering herd; one success resets the sequence.
    idle_backoff_max:
        Cap on the sleep honoured from the coordinator's ``retry_after``
        hint on idle/wait/drain answers (jittered like the failure
        backoff).  Kept small so a worker notices freshly submitted work
        quickly.
    heartbeat_join_timeout:
        Bound on waiting for the heartbeat thread after a group finishes;
        past it the client connections are aborted (failing the thread's
        blocked send) and the join retried, so a stuck socket cannot make
        a heartbeat outlive its lease.
    rng:
        Injectable ``random.Random`` for the jitter (deterministic tests).
    """

    def __init__(
        self,
        coordinator_url: str,
        *,
        worker_id: str | None = None,
        cache_dir: str | None = None,
        store_replicas: "list[str] | None" = None,
        poll_interval: float = 0.5,
        max_idle: float | None = None,
        client: CoordinatorClient | None = None,
        flush_timeout: float = 120.0,
        max_pipelines: int = 4,
        backoff_max: float = 30.0,
        idle_backoff_max: float = 2.0,
        heartbeat_join_timeout: float = 5.0,
        rng: random.Random | None = None,
        trace_sample: float = 1.0,
        trace_slow_ms: float = 0.0,
    ) -> None:
        if max_pipelines < 1:
            raise ValueError(f"max_pipelines must be >= 1, got {max_pipelines}")
        if backoff_max <= 0:
            raise ValueError(f"backoff_max must be positive, got {backoff_max}")
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError(f"trace_sample must be in [0, 1], got {trace_sample}")
        if trace_slow_ms < 0:
            raise ValueError(f"trace_slow_ms must be >= 0, got {trace_slow_ms}")
        self.coordinator_url = coordinator_url
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.cache_dir = cache_dir
        self.store_replicas = list(store_replicas) if store_replicas else None
        self.poll_interval = float(poll_interval)
        self.max_idle = max_idle
        self.flush_timeout = float(flush_timeout)
        self.max_pipelines = int(max_pipelines)
        self.backoff_max = float(backoff_max)
        self.idle_backoff_max = float(idle_backoff_max)
        self.heartbeat_join_timeout = float(heartbeat_join_timeout)
        self._rng = rng or random.Random()
        #: Probability a traced lease's spans are shipped with its completion
        #: (``repro-worker --trace-sample``); ``trace_slow_ms`` additionally
        #: ships every group slower than the threshold even when sampled out.
        self.trace_sample = float(trace_sample)
        self.trace_slow_ms = float(trace_slow_ms)
        self.spans_shipped = 0
        #: Consecutive ConnectionError polls, driving the backoff exponent.
        self._failures = 0
        self.client = client or CoordinatorClient(coordinator_url)
        self._pipelines: "OrderedDict[str, InstabilityPipeline]" = OrderedDict()
        self._stop = threading.Event()
        self.groups_executed = 0
        self.cells_executed = 0
        #: Cumulative pipeline counters of evicted pipelines, so the stats
        #: reported to the coordinator never go backwards.
        self._retired = {
            "corpus_build_count": 0,
            "embedding_train_count": 0,
            "downstream_train_count": 0,
        }
        #: Same, for evicted stores' replication-health counters.
        self._retired_store = {
            "store_repairs": 0,
            "store_hints_queued": 0,
            "store_hints_drained": 0,
            "store_hints_dropped": 0,
        }
        #: Replication drops already warned about, per config hash.
        self._drops_seen: dict[str, int] = {}

    # -- pipeline cache --------------------------------------------------------

    def _pipeline_for(self, config_payload: dict) -> "InstabilityPipeline":
        """The warm pipeline executing this config (built once per config)."""
        from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

        key = config_hash(config_payload)
        pipeline = self._pipelines.get(key)
        if pipeline is not None:
            self._pipelines.move_to_end(key)
        else:
            config = PipelineConfig.from_jsonable(config_payload)
            store = ArtifactStore(
                self.cache_dir,
                # A replica fabric replaces the coordinator-as-store-tier:
                # storage then lives on its own peers, decoupled from the
                # control plane and replicated against single-peer loss.
                remote_url=None if self.store_replicas else self.coordinator_url,
                replicas=self.store_replicas,
                async_replication=True,
                # Generous bound: one group's artifacts (pairs, quantized
                # pairs, decompositions, measures, downstream results) are
                # far fewer than this, and the store flushes between groups
                # -- so the lossy overflow path should never trigger; when
                # it somehow does, the drop is detected after flush below.
                replication_queue=1024,
            )
            pipeline = InstabilityPipeline(config, store=store)
            self._pipelines[key] = pipeline
            self._evict_stale_pipelines(keep=key)
            logger.info(
                "worker %s built pipeline for config %s", self.worker_id, key
            )
        return pipeline

    def _evict_stale_pipelines(self, keep: str) -> None:
        """LRU-bound the pipeline cache; evicted stores drain and stop."""
        while len(self._pipelines) > self.max_pipelines:
            old_key, old = next(iter(self._pipelines.items()))
            if old_key == keep:  # pragma: no cover - max_pipelines >= 1
                break
            del self._pipelines[old_key]
            for name in self._retired:
                self._retired[name] += getattr(old, name)
            for name, value in old.store.replica_counters().items():
                key = f"store_{name}"
                if key in self._retired_store:
                    self._retired_store[key] += value
            old.store.close(timeout=self.flush_timeout)
            logger.info("worker %s evicted pipeline %s", self.worker_id, old_key)

    def stats(self) -> dict:
        """Counters reported to the coordinator with every completion.

        Includes the store's replication-health counters (``store_repairs``,
        ``store_hints_*``) so the coordinator's ``/metrics`` shows a fleet's
        degraded-storage activity without scraping every worker.
        """
        totals = {
            "groups_executed": self.groups_executed,
            "cells_executed": self.cells_executed,
            "spans_shipped": self.spans_shipped,
            **self._retired,
            **self._retired_store,
        }
        for pipeline in self._pipelines.values():
            totals["corpus_build_count"] += pipeline.corpus_build_count
            totals["embedding_train_count"] += pipeline.embedding_train_count
            totals["downstream_train_count"] += pipeline.downstream_train_count
            for name, value in pipeline.store.replica_counters().items():
                key = f"store_{name}"
                if key in totals:
                    totals[key] += value
        return totals

    # -- execution -------------------------------------------------------------

    def _lease_trace(self, lease: dict) -> Trace | None:
        """Span collector for a traced lease (``None`` when tracing is off).

        The coordinator forwards the submitting request's trace context in
        the lease; spans recorded here under :meth:`Trace.active` carry that
        trace id, so shipping them back with the completion stitches this
        worker's execution into the cluster-wide trace.
        """
        context = lease.get("trace")
        if not isinstance(context, dict) or not context.get("trace_id"):
            return None
        if self.trace_sample <= 0.0 and self.trace_slow_ms <= 0.0:
            return None
        return Trace(
            "worker.group",
            trace_id=str(context["trace_id"]),
            parent_id=str(context.get("parent_span") or "") or None,
            attrs={
                "worker": self.worker_id,
                "run_id": lease.get("run_id"),
                "group_index": lease.get("group_index"),
                "speculative": bool(lease.get("speculative", False)),
            },
        )

    def _heartbeat_loop(self, lease: dict, done: threading.Event) -> None:
        interval = max(float(lease.get("ttl", 60.0)) / 3.0, 0.05)
        while not done.wait(interval):
            try:
                answer = self.client.heartbeat(self.worker_id, lease["lease_id"])
            except ConnectionError as error:  # keep computing; complete() retries
                logger.warning("heartbeat failed: %s", error)
                continue
            if answer.get("status") != "ok":
                logger.warning(
                    "lease %s no longer ours (%s); finishing the group anyway -- "
                    "a late result is still accepted if nobody beat us to it",
                    lease["lease_id"], answer.get("status"),
                )
                return

    def _execute_lease(self, lease: dict) -> None:
        group = group_from_wire(lease["group"])
        trace = self._lease_trace(lease)
        done = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(lease, done),
            name=f"heartbeat-{lease['lease_id']}", daemon=True,
        )
        beat.start()
        rows: list[dict] = []
        error: str | None = None
        try:
            pipeline = self._pipeline_for(lease["config"])
            if trace is not None:
                with trace.active():
                    records = evaluate_group(pipeline, group)
            else:
                records = evaluate_group(pipeline, group)
            rows = [to_jsonable(record.to_row()) for record in records]
        except Exception as failure:  # reported, the coordinator decides retry/fail
            logger.exception("group execution failed")
            error = f"{type(failure).__name__}: {failure}"
        finally:
            done.set()
            beat.join(timeout=self.heartbeat_join_timeout)
            if beat.is_alive():
                # The thread is stuck in a slow HTTP send; ignoring it would
                # let a zombie heartbeat outlive this lease and beat against
                # the next one's log context.  Abort the client's connections
                # (the blocked send fails immediately, the loop sees done and
                # exits) and give the join one more bounded chance.
                abort = getattr(self.client, "abort", None)
                if abort is not None:
                    abort()
                beat.join(timeout=self.heartbeat_join_timeout)
                if beat.is_alive():
                    logger.warning(
                        "heartbeat thread of lease %s still alive after abort; "
                        "abandoning it (daemon)", lease["lease_id"],
                    )
        if error is None:
            # Replication barrier: artifacts must reach the coordinator before
            # the group is reported done, so ancestry-gated dependants always
            # find their anchors remotely instead of retraining them.  A
            # drained queue can still have *dropped* writes (overflow), which
            # flush() cannot see -- surface those too, because a dropped
            # anchor push silently downgrades "trained exactly once
            # cluster-wide" to "recomputed by dependants" (correct but slow).
            store = self._pipelines[config_hash(lease["config"])].store
            if trace is not None:
                with trace.active():
                    flushed = store.flush(timeout=self.flush_timeout)
            else:
                flushed = store.flush(timeout=self.flush_timeout)
            if not flushed:
                logger.warning(
                    "artifact replication did not drain within %.0fs; "
                    "dependants may recompute ancestors", self.flush_timeout,
                )
            replication = store.replication_stats()
            if replication:
                key = config_hash(lease["config"])
                new_drops = replication["dropped"] - self._drops_seen.get(key, 0)
                if new_drops:
                    self._drops_seen[key] = replication["dropped"]
                    logger.warning(
                        "%d artifact push(es) were dropped by the replication "
                        "queue; dependants may recompute ancestors", new_drops,
                    )
            self.groups_executed += 1
            self.cells_executed += len(rows)
        spans: list[dict] | None = None
        if trace is not None:
            trace.finish()
            slow = (
                self.trace_slow_ms > 0.0
                and (trace.duration_ms or 0.0) >= self.trace_slow_ms
            )
            if slow or self._rng.random() < self.trace_sample:
                spans = trace.span_rows()
                self.spans_shipped += len(spans)
        answer = self.client.complete(
            self.worker_id, lease["lease_id"], lease["run_id"],
            lease["group_index"], rows, stats=self.stats(), error=error,
            spans=spans,
        )
        logger.info(
            "group %d of %s -> %s (%d records)",
            lease["group_index"], lease["run_id"], answer.get("status"), len(rows),
        )

    # -- main loop -------------------------------------------------------------

    def step(self) -> bool:
        """One poll: execute a lease if one is available; True when work ran."""
        worked, _ = self._poll()
        return worked

    def _poll(self) -> tuple[bool, float]:
        """One poll returning (work ran, seconds to sleep before the next).

        A successful poll -- lease executed, or a clean idle/wait/drain
        answer -- resets the failure backoff; the idle sleep then honours
        the coordinator's ``retry_after`` hint (jittered, capped at
        ``idle_backoff_max``).  A ``ConnectionError`` escalates the failure
        backoff instead.  Exceptions propagate to :meth:`run`.
        """
        answer = self.client.lease(self.worker_id)
        self._failures = 0
        if answer.get("status") == "lease":
            self._execute_lease(answer)
            return True, 0.0
        return False, self._idle_delay(answer.get("retry_after"))

    def _backoff_delay(self, failures: int) -> float:
        """Exponential backoff with jitter for ``failures`` consecutive errors."""
        base = max(self.poll_interval, 0.05)
        delay = min(self.backoff_max, base * (2.0 ** max(failures - 1, 0)))
        return delay * (0.5 + 0.5 * self._rng.random())

    def _idle_delay(self, retry_after: float | None) -> float:
        """Sleep honoured on an idle/wait/drain answer, jittered and capped."""
        ceiling = max(self.poll_interval, self.idle_backoff_max)
        hint = self.poll_interval if retry_after is None else float(retry_after)
        delay = min(max(hint, self.poll_interval), ceiling)
        return delay * (0.5 + 0.5 * self._rng.random())

    def _sleep(self, seconds: float) -> None:
        """Interruptible sleep (a single point tests can observe/neutralise)."""
        if seconds > 0:
            self._stop.wait(seconds)

    def run(self) -> None:
        """Poll until :meth:`stop` (or ``max_idle`` seconds without work)."""
        idle_since: float | None = None
        while not self._stop.is_set():
            try:
                worked, delay = self._poll()
            except ConnectionError as error:
                self._failures += 1
                delay = self._backoff_delay(self._failures)
                logger.warning(
                    "coordinator unreachable (%d in a row, next poll in %.2fs): %s",
                    self._failures, delay, error,
                )
                worked = False
            if worked:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if self.max_idle is not None and now - idle_since >= self.max_idle:
                logger.info(
                    "worker %s idle for %.0fs; exiting", self.worker_id, self.max_idle
                )
                return
            self._sleep(delay)

    def stop(self) -> None:
        self._stop.set()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "coordinator",
        help="coordinator base URL (a repro-serve instance, e.g. http://host:8732)",
    )
    parser.add_argument(
        "--worker-id", default=None, help="stable worker identity (default host-pid)"
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="local disk store tier (in addition to the coordinator tier)",
    )
    parser.add_argument(
        "--store-replicas", default=None,
        help="comma-separated replica targets (peer URLs and/or directories) "
             "mounted as one N-way replicated store tier instead of the "
             "coordinator tier (read-repair + hinted handoff)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds between lease polls when idle",
    )
    parser.add_argument(
        "--max-idle", type=float, default=None,
        help="exit after this many consecutive idle seconds (default: run forever)",
    )
    parser.add_argument(
        "--backoff-max", type=float, default=30.0,
        help="cap (seconds) on the exponential backoff after coordinator outages",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="probability a traced lease ships its telemetry spans back with "
             "its completion (0 disables span shipping)",
    )
    parser.add_argument(
        "--slow-ms", type=float, default=0.0,
        help="always ship spans of groups slower than this many milliseconds, "
             "even when sampled out (0 disables the slow override)",
    )
    args = parser.parse_args(argv)
    configure_logging()
    replicas = [entry for entry in (args.store_replicas or "").split(",") if entry]
    worker = ClusterWorker(
        args.coordinator,
        worker_id=args.worker_id,
        cache_dir=args.cache_dir,
        store_replicas=replicas or None,
        poll_interval=args.poll_interval,
        max_idle=args.max_idle,
        backoff_max=args.backoff_max,
        trace_sample=args.trace_sample,
        trace_slow_ms=args.slow_ms,
    )
    print(f"repro-worker {worker.worker_id} polling {args.coordinator}", flush=True)
    try:
        worker.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
