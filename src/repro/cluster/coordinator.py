"""Cluster coordinator: leases grid cell-groups to pull-based workers.

The coordinator is the server half of the distributed grid-execution
subsystem.  It decomposes a grid into the scheduler's ancestry-aware
:class:`~repro.engine.scheduler.CellGroup`\\ s (one
:class:`~repro.engine.scheduler.GridPlan` per run), hands groups out as
**leases** with a heartbeat-extended expiry, and commits the records workers
push back through the engine's
:class:`~repro.engine.streaming.OrderedCommitter` -- so a distributed run
streams records in the canonical axis-product order, bit-identical to a
serial :meth:`GridEngine.run`.

Scheduling rules:

* **anchor groups first** -- groups are leased in plan order, which puts the
  anchor-dimension group of each (algorithm, seed) ancestry ahead of the
  groups that consume its embeddings as EIS anchors;
* **ancestry gating** -- while a measure-bearing run's ancestry has no
  completed group, only its first pending group is leasable.  The first
  group trains the shared anchor pair and pushes it into the coordinator's
  artifact store (workers mount the coordinator as a remote store tier);
  gating the siblings until that push lands is what makes every trained
  pair unique cluster-wide instead of redundantly retrained per worker;
* **at-least-once execution** -- a lease that misses its heartbeat expires
  and the group returns to the pending pool.  Re-execution is safe because
  every artifact and record is a deterministic function of its
  configuration: whichever result arrives first is committed, later
  arrivals are counted (``duplicate_results``) and dropped;
* **speculative re-execution** -- when a run has no pending work left but a
  leased group has run well past the duration of its completed siblings,
  the coordinator issues a *second* lease on it to another worker.
  First-result-commits makes the race idempotent, and speculative leases
  never consume the group's ``max_attempts`` failure budget.

Crash safety: when constructed with an :class:`ArtifactStore`, the
coordinator checkpoints every run's durable state (plan wire form, config
payload, group states/attempts, committed rows) as ``cluster-run`` JSON
artifacts on each state transition, and :meth:`resume_runs` rebuilds the
lease tables from those checkpoints after a restart -- committed records
replay through a fresh :class:`OrderedCommitter` so a resumed stream stays
bit-identical, and only unfinished groups re-lease.

The coordinator holds plain thread-safe state and speaks no HTTP itself;
the serving layer mounts it as the ``/cluster/*`` endpoints (same
unauthenticated trust model as ``/artifacts``).  ``clock`` injects a
monotonic time source so lease expiry is testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator

from repro.engine.scheduler import CellGroup, GridPlan
from repro.engine.streaming import OrderedCommitter, cell_key
from repro.utils.io import to_jsonable
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.store import ArtifactStore
    from repro.instability.grid import GridRecord
    from repro.instability.pipeline import PipelineConfig
    from repro.telemetry.trace import TraceBuffer

logger = get_logger(__name__)

__all__ = [
    "ClusterCoordinator",
    "ClusterRunFailed",
    "config_wire_payload",
    "group_from_wire",
    "group_wire_payload",
    "plan_from_wire",
    "plan_wire_payload",
]

#: Group states in a run's lease table.
_PENDING, _LEASED, _DONE = "pending", "leased", "done"

#: Count backstop on finished-run retention (age GC is the primary policy).
_MAX_FINISHED_RUNS = 64

#: Artifact kind of coordinator checkpoints (stored via the JSON codec).
CHECKPOINT_KIND = "cluster-run"

#: Store key of the checkpoint index (the list of checkpointed run ids).
_INDEX_KEY = "runs-index"


class ClusterRunFailed(RuntimeError):
    """A run's group exhausted its attempts; raised to the record consumer."""


def config_wire_payload(config: "PipelineConfig") -> dict:
    """The JSON wire form of a pipeline config, with the kernel policy pinned.

    A config field left ``None`` resolves against the *process-wide* default
    policy, which may differ between the submitting host and a worker; the
    wire form pins the resolved SVD method and dtype so every worker resolves
    decompositions exactly as the submitter would (the cluster analogue of
    the scheduler shipping ``default_policy()`` to pool workers).  Pinning
    does not change artifact keys -- they are derived from the resolved
    policy either way.
    """
    payload = to_jsonable(config)
    policy = config.resolved_kernel_policy()
    payload["kernel_policy"] = policy.svd
    payload["measure_dtype"] = policy.dtype
    return payload


def group_wire_payload(group: CellGroup) -> dict:
    """The JSON wire form of one cell group (a lease's work description)."""
    return {
        "algorithm": group.algorithm,
        "dim": group.dim,
        "seed": group.seed,
        "precisions": list(group.precisions),
        "tasks": list(group.tasks),
        "with_measures": group.with_measures,
        "model_type": group.model_type,
    }


def group_from_wire(payload: dict) -> CellGroup:
    """Rebuild a :class:`CellGroup` from :func:`group_wire_payload`."""
    return CellGroup(
        algorithm=str(payload["algorithm"]),
        dim=int(payload["dim"]),
        seed=int(payload["seed"]),
        precisions=tuple(int(p) for p in payload["precisions"]),
        tasks=tuple(str(t) for t in payload["tasks"]),
        with_measures=bool(payload.get("with_measures", False)),
        model_type=str(payload.get("model_type", "bow")),
    )


def plan_wire_payload(plan: GridPlan) -> dict:
    """The JSON wire form of a full grid plan (a run checkpoint's work spec)."""
    return {
        "algorithms": list(plan.algorithms),
        "dimensions": list(plan.dimensions),
        "precisions": list(plan.precisions),
        "seeds": list(plan.seeds),
        "tasks": list(plan.tasks),
        "with_measures": plan.with_measures,
        "model_type": plan.model_type,
        "anchor_dim": plan.anchor_dim,
        "groups": [group_wire_payload(group) for group in plan.groups],
    }


def plan_from_wire(payload: dict) -> GridPlan:
    """Rebuild a :class:`GridPlan` from :func:`plan_wire_payload`."""
    anchor = payload.get("anchor_dim")
    return GridPlan(
        algorithms=tuple(str(a) for a in payload["algorithms"]),
        dimensions=tuple(int(d) for d in payload["dimensions"]),
        precisions=tuple(int(p) for p in payload["precisions"]),
        seeds=tuple(int(s) for s in payload["seeds"]),
        tasks=tuple(str(t) for t in payload["tasks"]),
        with_measures=bool(payload.get("with_measures", False)),
        model_type=str(payload.get("model_type", "bow")),
        anchor_dim=None if anchor is None else int(anchor),
        groups=tuple(group_from_wire(g) for g in payload["groups"]),
    )


class _ClusterRun:
    """Lease table and ordered-commit state of one submitted grid."""

    def __init__(
        self, run_id: str, plan: GridPlan, config_payload: dict, created_at: float = 0.0,
        trace: dict | None = None,
    ) -> None:
        self.run_id = run_id
        self.plan = plan
        self.config_payload = config_payload
        self.committer = OrderedCommitter(plan.cell_keys())
        #: Records released by the committer, in canonical order; consumers
        #: (the /grid NDJSON stream) read a growing prefix of this list.
        self.ready: list["GridRecord"] = []
        self.states = [_PENDING] * len(plan.groups)
        self.attempts = [0] * len(plan.groups)
        #: Trace context of the submitting request (``{"trace_id", "parent_span"}``
        #: or ``None``); rides in every lease so worker spans stitch into the
        #: submitter's trace.  Ephemeral: not checkpointed.
        self.trace = trace
        #: When each group last became leasable, feeding the per-group
        #: ``cluster.lease_wait`` span.
        self.pending_since = [created_at] * len(plan.groups)
        self.cancelled = False
        self.completed = False
        self.failure: str | None = None
        self.created_at = created_at
        self.finished_at: float | None = None
        #: Wall-clock runtimes of completed leases, feeding the speculation
        #: threshold (a percentile of finished siblings).
        self.durations: list[float] = []
        #: Attached record streams; a run with consumers is never GC'd.
        self.consumers = 0
        #: True once the finished run's ready list was released to save
        #: memory -- the records remain recoverable from the checkpoint.
        self.ready_dropped = False

    @property
    def active(self) -> bool:
        return not (self.completed or self.cancelled or self.failure)

    def done_count(self) -> int:
        return sum(1 for state in self.states if state is _DONE)

    def summary(self) -> dict:
        return {
            "groups": len(self.states),
            "done": self.done_count(),
            "leased": sum(1 for s in self.states if s is _LEASED),
            "pending": sum(1 for s in self.states if s is _PENDING),
            "cells": self.plan.n_cells,
            "committed": self.committer.committed,
            "remaining": self.committer.remaining,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failure": self.failure,
        }


class _Lease:
    def __init__(
        self,
        lease_id: str,
        run_id: str,
        group_index: int,
        worker: str,
        expires_at: float,
        started_at: float = 0.0,
        speculative: bool = False,
    ) -> None:
        self.lease_id = lease_id
        self.run_id = run_id
        self.group_index = group_index
        self.worker = worker
        self.expires_at = expires_at
        self.started_at = started_at
        self.speculative = speculative


class ClusterCoordinator:
    """Thread-safe lease/commit state machine behind the ``/cluster/*`` API.

    Parameters
    ----------
    default_config:
        Wire payload (see :func:`config_wire_payload`) handed to workers for
        runs submitted without an explicit config -- normally the hosting
        service's own pipeline configuration.
    lease_ttl:
        Seconds a lease stays valid without a heartbeat; an expired lease
        returns its group to the pending pool.
    max_attempts:
        Lease attempts per group before a reported execution *error* fails
        the whole run (expiries also consume attempts; speculative leases
        do not).
    store:
        Optional :class:`ArtifactStore` for run checkpoints.  With a
        persistent store, :meth:`resume_runs` can rebuild every run after a
        coordinator restart; without one, checkpointing is disabled.
    run_gc_age:
        Seconds a finished run (and its checkpoints) is retained after it
        finished, once no record stream is attached; ``0`` disables age GC
        (the ``_MAX_FINISHED_RUNS`` count backstop still applies).
    worker_ttl:
        Seconds of inactivity after which a worker holding no lease is
        evicted from the status table; its counters retire into monotonic
        fleet aggregates.  ``0`` disables eviction.
    speculation_factor:
        A leased group becomes a speculation candidate once its runtime
        exceeds ``speculation_factor`` times the ``speculation_percentile``
        duration of the run's completed leases; ``0`` disables speculation.
    clock:
        Monotonic time source (injectable for the lease-lifecycle tests).
    """

    def __init__(
        self,
        *,
        default_config: dict | None = None,
        lease_ttl: float = 60.0,
        max_attempts: int = 3,
        store: "ArtifactStore | None" = None,
        run_gc_age: float = 3600.0,
        worker_ttl: float = 300.0,
        speculation_factor: float = 2.0,
        speculation_percentile: float = 0.75,
        speculation_min_done: int = 2,
        clock=time.monotonic,
        trace_sink: "TraceBuffer | None" = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if run_gc_age < 0:
            raise ValueError(f"run_gc_age must be >= 0, got {run_gc_age}")
        if worker_ttl < 0:
            raise ValueError(f"worker_ttl must be >= 0, got {worker_ttl}")
        if not 0.0 < speculation_percentile <= 1.0:
            raise ValueError(
                f"speculation_percentile must be in (0, 1], got {speculation_percentile}"
            )
        self.default_config = default_config or {}
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.store = store
        self.run_gc_age = float(run_gc_age)
        self.worker_ttl = float(worker_ttl)
        self.speculation_factor = float(speculation_factor)
        self.speculation_percentile = float(speculation_percentile)
        self.speculation_min_done = int(speculation_min_done)
        self._clock = clock
        #: Optional :class:`~repro.telemetry.trace.TraceBuffer` that receives
        #: coordinator-side spans (lease wait) and worker-shipped span rows,
        #: stitching distributed runs into their submitter's trace.
        self.trace_sink = trace_sink
        self._cond = threading.Condition()
        self._runs: "OrderedDict[str, _ClusterRun]" = OrderedDict()
        self._leases: dict[str, _Lease] = {}
        self._serial = 0
        self._draining = False
        self._workers: dict[str, dict] = {}
        #: Monotonic aggregates of evicted workers, so fleet-level totals in
        #: the snapshot never shrink when the worker table is pruned (same
        #: retired-counter pattern as the worker's pipeline cache).
        self._retired_workers = {
            "workers_evicted": 0,
            "leases": 0,
            "groups_completed": 0,
            "cells_completed": 0,
            "failures": 0,
        }
        self.counters = {
            "runs_created": 0,
            "runs_completed": 0,
            "runs_cancelled": 0,
            "runs_failed": 0,
            "runs_resumed": 0,
            "runs_gced": 0,
            "leases_issued": 0,
            "leases_expired": 0,
            "leases_reassigned": 0,
            "leases_speculative": 0,
            "duplicate_results": 0,
            "late_results": 0,
            "group_failures": 0,
            "records_committed": 0,
            "records_replayed": 0,
            "cells_completed": 0,
            "checkpoints_written": 0,
            "ready_records_dropped": 0,
            "workers_evicted": 0,
            "drains_started": 0,
        }

    # -- run lifecycle ---------------------------------------------------------

    def create_run(
        self,
        plan: GridPlan,
        config_payload: dict | None = None,
        trace: dict | None = None,
    ) -> str:
        """Register a grid for distributed execution; returns its run id.

        ``trace`` optionally carries the submitting request's trace context
        (``{"trace_id": ..., "parent_span": ...}``); it rides in every lease
        of the run so worker-side spans stitch into that trace.
        """
        if trace is not None:
            trace_id = trace.get("trace_id") if isinstance(trace, dict) else None
            trace = {
                "trace_id": str(trace_id),
                "parent_span": str(trace.get("parent_span") or ""),
            } if trace_id else None
        with self._cond:
            run_id = f"run-{self._next_serial_locked():04d}"
            run = _ClusterRun(
                run_id, plan, config_payload or self.default_config, self._clock(),
                trace=trace,
            )
            self._runs[run_id] = run
            self.counters["runs_created"] += 1
            self._gc_finished_locked(self._clock())
            self._checkpoint_run_locked(run)
            self._checkpoint_index_locked()
            self._cond.notify_all()
        logger.info(
            "cluster run %s created: %d groups, %d cells",
            run_id, len(plan.groups), plan.n_cells,
        )
        return run_id

    def cancel(self, run_id: str) -> bool:
        """Stop leasing a run's groups; outstanding results are dropped."""
        with self._cond:
            run = self._runs.get(run_id)
            if run is None or not run.active:
                return False
            run.cancelled = True
            run.finished_at = self._clock()
            self._checkpoint_run_locked(run)
            self._cond.notify_all()
            self.counters["runs_cancelled"] += 1
        logger.info("cluster run %s cancelled", run_id)
        return True

    def run_status(self, run_id: str) -> dict | None:
        with self._cond:
            run = self._runs.get(run_id)
            return None if run is None else {"run_id": run_id, **run.summary()}

    def resume_runs(self) -> int:
        """Rebuild runs from store checkpoints after a coordinator restart.

        Every checkpointed run in the index comes back: committed groups
        replay their rows through a fresh :class:`OrderedCommitter` (so the
        resumed stream is bit-identical and the records are immediately
        consumable), unfinished groups return to the pending pool with
        their attempt counts intact, and finished runs resume for status
        queries until age GC collects them.  Returns the number of runs
        resumed; safe to call with no store or no checkpoints (returns 0).
        """
        from repro.instability.grid import GridRecord

        if self.store is None:
            return 0
        try:
            index = self.store.get_json(CHECKPOINT_KIND, _INDEX_KEY)
        except Exception as err:  # pragma: no cover - defensive
            logger.warning("could not read the cluster-run checkpoint index: %s", err)
            return 0
        if not index:
            return 0
        resumed = 0
        with self._cond:
            now = self._clock()
            for run_id in index.get("runs", []):
                if run_id in self._runs:
                    continue
                try:
                    meta = self.store.get_json(CHECKPOINT_KIND, run_id)
                except Exception as err:  # pragma: no cover - defensive
                    logger.warning("checkpoint of %s unreadable: %s", run_id, err)
                    continue
                if not meta:
                    continue
                try:
                    run = self._rebuild_run_locked(run_id, meta, now, GridRecord)
                except (KeyError, ValueError, TypeError) as err:
                    logger.warning("checkpoint of %s malformed, skipping: %s", run_id, err)
                    continue
                self._runs[run_id] = run
                self.counters["runs_resumed"] += 1
                resumed += 1
                try:
                    serial = int(run_id.rsplit("-", 1)[1])
                except (IndexError, ValueError):
                    serial = 0
                self._serial = max(self._serial, serial)
                logger.info(
                    "cluster run %s resumed from checkpoint: %d/%d groups done, "
                    "%d records replayed",
                    run_id, run.done_count(), len(run.states), len(run.ready),
                )
            if resumed:
                self._cond.notify_all()
        return resumed

    def _rebuild_run_locked(
        self, run_id: str, meta: dict, now: float, record_cls
    ) -> _ClusterRun:
        plan = plan_from_wire(meta["plan"])
        run = _ClusterRun(run_id, plan, dict(meta.get("config") or {}), now)
        attempts = meta.get("attempts") or []
        for index, count in enumerate(attempts[: len(run.attempts)]):
            run.attempts[index] = int(count)
        states = meta.get("states") or []
        for index, state in enumerate(states[: len(run.states)]):
            if state != _DONE:
                continue
            rows_payload = None
            try:
                rows_payload = self.store.get_json(
                    CHECKPOINT_KIND, _group_key(run_id, index)
                )
            except Exception as err:  # pragma: no cover - defensive
                logger.warning(
                    "rows checkpoint of %s group %d unreadable: %s", run_id, index, err
                )
            if not rows_payload or "rows" not in rows_payload:
                # The meta checkpoint said done but the rows are gone: the
                # group falls back to pending and simply re-executes (the
                # artifacts are still warm, so the re-run is cheap).
                logger.warning(
                    "rows of %s group %d missing; group returns to pending",
                    run_id, index,
                )
                continue
            records = [record_cls.from_row(row) for row in rows_payload["rows"]]
            for record in records:
                run.ready.extend(run.committer.push(record))
            run.states[index] = _DONE
            self.counters["records_replayed"] += len(records)
        run.cancelled = bool(meta.get("cancelled", False))
        run.failure = meta.get("failure")
        run.completed = bool(meta.get("completed", False)) and all(
            state is _DONE for state in run.states
        )
        if not run.active:
            run.finished_at = now
        return run

    # -- drain -----------------------------------------------------------------

    def drain(self, draining: bool = True) -> dict:
        """Toggle drain mode: stop issuing leases, let in-flight work finish.

        Heartbeats and completions are still accepted while draining, so
        every outstanding lease can land its result; only *new* leases are
        refused (workers get ``{"status": "drain"}`` and back off).  Returns
        the same payload as :meth:`drain_status`.
        """
        with self._cond:
            draining = bool(draining)
            if draining and not self._draining:
                self.counters["drains_started"] += 1
                logger.info("cluster coordinator draining: no new leases")
            elif not draining and self._draining:
                logger.info("cluster coordinator drain lifted")
            self._draining = draining
            self._cond.notify_all()
            return self._drain_status_locked()

    def drain_status(self) -> dict:
        with self._cond:
            self._sweep_locked(self._clock())
            return self._drain_status_locked()

    def _drain_status_locked(self) -> dict:
        return {
            "draining": self._draining,
            "leases_outstanding": len(self._leases),
            "runs_active": sum(1 for run in self._runs.values() if run.active),
            "drained": self._draining and not self._leases,
        }

    # -- worker-facing API (the /cluster/* endpoints) --------------------------

    def lease(self, worker: str) -> dict:
        """Hand the next available group to ``worker``.

        Returns a ``{"status": "lease", ...}`` payload carrying the group,
        the run's pipeline config and the TTL; ``{"status": "wait"}`` when
        runs exist but every eligible group is leased or ancestry-gated
        (after considering a speculative re-lease of a straggler);
        ``{"status": "drain"}`` while draining; and ``{"status": "idle"}``
        when there is nothing to execute at all.
        """
        worker = str(worker)
        with self._cond:
            now = self._clock()
            self._sweep_locked(now)
            self._touch_worker_locked(worker, now)
            if self._draining:
                return {"status": "drain", "retry_after": min(5.0, self.lease_ttl)}
            any_active = False
            for run in self._runs.values():
                if not run.active:
                    continue
                any_active = True
                index = self._next_available_locked(run)
                if index is None:
                    continue
                lease_id = f"{run.run_id}-lease-{self._next_serial_locked():04d}"
                run.states[index] = _LEASED
                run.attempts[index] += 1
                if run.attempts[index] > 1:
                    self.counters["leases_reassigned"] += 1
                self._leases[lease_id] = _Lease(
                    lease_id, run.run_id, index, worker, now + self.lease_ttl,
                    started_at=now,
                )
                self.counters["leases_issued"] += 1
                self._workers[worker]["leases"] += 1
                self._checkpoint_run_locked(run)
                self._record_lease_wait_locked(run, index, worker, now)
                answer = {
                    "status": "lease",
                    "lease_id": lease_id,
                    "run_id": run.run_id,
                    "group_index": index,
                    "group": group_wire_payload(run.plan.groups[index]),
                    "config": run.config_payload,
                    "ttl": self.lease_ttl,
                }
                if run.trace is not None:
                    answer["trace"] = run.trace
                return answer
            if any_active:
                speculative = self._speculative_lease_locked(worker, now)
                if speculative is not None:
                    return speculative
                return {"status": "wait", "retry_after": min(1.0, self.lease_ttl / 4)}
            return {"status": "idle", "retry_after": min(5.0, self.lease_ttl)}

    def heartbeat(self, worker: str, lease_id: str) -> dict:
        """Extend a lease; ``{"status": "gone"}`` tells the worker it expired."""
        with self._cond:
            now = self._clock()
            self._sweep_locked(now)
            self._touch_worker_locked(str(worker), now)
            lease = self._leases.get(lease_id)
            if lease is None or lease.worker != worker:
                return {"status": "gone"}
            lease.expires_at = now + self.lease_ttl
            return {"status": "ok", "ttl": self.lease_ttl}

    def complete(
        self,
        worker: str,
        lease_id: str,
        run_id: str,
        group_index: int,
        rows: list[dict] | None = None,
        stats: dict | None = None,
        error: str | None = None,
        spans: list[dict] | None = None,
    ) -> dict:
        """Accept one group's results (or its failure report) from a worker.

        ``spans`` optionally carries telemetry span rows recorded by the
        worker while executing the lease; accepted results feed them into
        the coordinator's trace sink, stitching the distributed execution
        into the submitting request's trace.

        Identified by ``(run_id, group_index)`` rather than the lease alone,
        so a result that outlived its lease -- the worker stalled past the
        TTL but did finish -- is still accepted if the group is not done yet
        (``late_results``); a group that *is* done counts a duplicate and the
        payload is dropped.  Both are safe: results are content-addressed
        and deterministic, so every copy is identical.
        """
        from repro.instability.grid import GridRecord

        worker = str(worker)
        with self._cond:
            now = self._clock()
            self._sweep_locked(now)
            self._touch_worker_locked(worker, now)
            lease = self._leases.get(lease_id)
            if lease is not None and lease.worker == worker:
                # Popping a lease must never strand its group: return it to
                # the pending pool immediately (still under the lock), and
                # let the success path below re-mark it done.
                del self._leases[lease_id]
                owner = self._runs.get(lease.run_id)
                if owner is not None:
                    self._release_group_locked(owner, lease.group_index)
                    self._cond.notify_all()
            else:
                # A lease id the caller does not own stays where it is: a
                # buggy or hostile worker quoting someone else's lease must
                # not pop it out from under the real owner (that would leave
                # the owner's group _LEASED with no lease to ever expire).
                lease = None
            if stats is not None:
                self._workers[worker]["reported"] = dict(stats)
            run = self._runs.get(run_id)
            if run is None:
                return {"status": "unknown-run"}
            index = int(group_index)
            if not 0 <= index < len(run.states):
                return {"status": "rejected", "error": f"no group {index}"}
            if run.states[index] is _DONE:
                self.counters["duplicate_results"] += 1
                return {"status": "duplicate"}
            if not run.active:
                return {"status": "cancelled"}
            own_lease = (
                lease is not None
                and lease.run_id == run_id
                and lease.group_index == index
            )
            if error is not None:
                self._workers[worker]["failures"] += 1
                if not own_lease or lease.speculative:
                    # A failure report from an expired/reassigned lease must
                    # not reset a group another worker is actively computing,
                    # nor consume the run's failure budget -- the current
                    # owner is authoritative.  A *speculative* failure is
                    # equally non-authoritative: the primary lease lives on.
                    return {"status": "stale"}
                self.counters["group_failures"] += 1
                if run.attempts[index] >= self.max_attempts:
                    run.failure = (
                        f"group {index} failed after {run.attempts[index]} attempts: {error}"
                    )
                    run.finished_at = now
                    self.counters["runs_failed"] += 1
                    self._checkpoint_run_locked(run)
                    self._cond.notify_all()
                    return {"status": "failed"}
                # The group already went back to pending when the lease was
                # popped above; just wake waiting workers.
                self._cond.notify_all()
                return {"status": "retry"}
            group = run.plan.groups[index]
            rows = rows or []
            rejection = None
            records: list["GridRecord"] = []
            if len(rows) != group.n_cells:
                rejection = f"group {index} expects {group.n_cells} records, got {len(rows)}"
            else:
                try:
                    records = [GridRecord.from_row(row) for row in rows]
                except (KeyError, ValueError, TypeError) as bad:
                    rejection = f"malformed record row: {bad}"
            if rejection is None:
                # Validate the whole batch against the group's cells BEFORE
                # touching the committer: a partial push would poison every
                # retry of this group ("pushed twice").
                expected_keys = {
                    (group.algorithm, group.dim, precision, group.seed, task)
                    for precision in group.precisions
                    for task in group.tasks
                }
                keys = [cell_key(record) for record in records]
                if len(set(keys)) != len(keys) or set(keys) != expected_keys:
                    rejection = f"records do not match the cells of group {index}"
            if rejection is not None:
                # The group already went back to pending when the lease was
                # popped above, so a rejection cannot strand it.
                return {"status": "rejected", "error": rejection}
            released: list["GridRecord"] = []
            for record in records:
                released.extend(run.committer.push(record))
            run.ready.extend(released)
            run.states[index] = _DONE
            self.counters["records_committed"] += len(records)
            self.counters["cells_completed"] += len(records)
            stats_row = self._workers[worker]
            stats_row["groups_completed"] += 1
            stats_row["cells_completed"] += len(records)
            if own_lease:
                run.durations.append(max(now - lease.started_at, 0.0))
            else:
                self.counters["late_results"] += 1
            if all(state is _DONE for state in run.states):
                run.completed = True
                run.finished_at = now
                self.counters["runs_completed"] += 1
                logger.info("cluster run %s complete (%d cells)", run_id, run.plan.n_cells)
            self._checkpoint_group_locked(run, index, rows)
            self._checkpoint_run_locked(run)
            self._cond.notify_all()
            if spans and self.trace_sink is not None and isinstance(spans, list):
                self.trace_sink.ingest(spans)
            return {"status": "ok", "accepted": len(records)}

    # -- record consumption (the /grid NDJSON stream) --------------------------

    def records(
        self,
        run_id: str,
        *,
        poll_interval: float = 0.5,
        stop: threading.Event | None = None,
    ) -> Iterator["GridRecord"]:
        """Yield a run's records in canonical order as workers commit them.

        Blocks while the run is in progress (waking every ``poll_interval``
        to sweep expired leases, so a crashed worker cannot stall a stream
        whose other workers have all gone quiet).  Raises
        :class:`ClusterRunFailed` when the run fails; ends silently when the
        run is cancelled (the consumer initiated it) or ``stop`` is set (a
        detaching consumer that does *not* want to cancel the run).  While
        a stream is attached the run is pinned against GC; when the last
        consumer of a finished run detaches, the in-memory ``ready`` list
        is released (the records stay recoverable from the checkpoint).
        """
        with self._cond:
            run = self._runs.get(run_id)
            if run is None:
                raise KeyError(f"unknown cluster run {run_id!r}")
            if run.ready_dropped:
                raise KeyError(
                    f"records of finished run {run_id!r} were already released"
                )
            run.consumers += 1
        emitted = 0
        try:
            while True:
                with self._cond:
                    while (
                        emitted >= len(run.ready)
                        and run.active
                        and not (stop is not None and stop.is_set())
                    ):
                        self._sweep_locked(self._clock())
                        self._cond.wait(poll_interval)
                    batch = run.ready[emitted:]
                    failure = run.failure
                    finished = not run.active
                    stopped = stop is not None and stop.is_set()
                for record in batch:
                    emitted += 1
                    yield record
                if batch:
                    continue
                if stopped:
                    return
                if failure:
                    raise ClusterRunFailed(failure)
                if finished:
                    return
        finally:
            with self._cond:
                run.consumers -= 1
                if run.consumers == 0 and not run.active and not run.ready_dropped:
                    run.ready_dropped = True
                    self.counters["ready_records_dropped"] += len(run.ready)
                    run.ready = []

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able counter/state snapshot for ``repro.engine.stats()``."""
        with self._cond:
            now = self._clock()
            workers = {}
            for name, row in self._workers.items():
                active = max(now - row["first_seen"], 1e-9)
                workers[name] = {
                    "leases": row["leases"],
                    "groups_completed": row["groups_completed"],
                    "cells_completed": row["cells_completed"],
                    "failures": row["failures"],
                    "seconds_active": round(active, 3),
                    "cells_per_second": round(row["cells_completed"] / active, 4),
                    "reported": row["reported"],
                }
            retired = dict(self._retired_workers)
            fleet = {
                "workers_live": len(workers),
                "workers_evicted": retired["workers_evicted"],
            }
            for field in ("leases", "groups_completed", "cells_completed", "failures"):
                fleet[field] = retired[field] + sum(w[field] for w in workers.values())
            return {
                "counters": dict(self.counters),
                "lease_ttl": self.lease_ttl,
                "draining": self._draining,
                "runs_active": sum(1 for run in self._runs.values() if run.active),
                "leases_outstanding": len(self._leases),
                "workers": workers,
                "retired_workers": retired,
                "fleet": fleet,
                "runs": {run_id: run.summary() for run_id, run in self._runs.items()},
            }

    # -- internals (all hold self._cond) ---------------------------------------

    def _next_serial_locked(self) -> int:
        self._serial += 1
        return self._serial

    def _touch_worker_locked(self, worker: str, now: float) -> None:
        row = self._workers.get(worker)
        if row is None:
            row = self._workers[worker] = {
                "leases": 0,
                "groups_completed": 0,
                "cells_completed": 0,
                "failures": 0,
                "first_seen": now,
                "reported": None,
            }
        row["last_seen"] = now

    def _release_group_locked(self, run: _ClusterRun, index: int) -> None:
        """Return a leased group to the pending pool, unless another worker
        still holds a live lease on it (their result remains authoritative)."""
        if run.states[index] is _LEASED and not any(
            lease.run_id == run.run_id and lease.group_index == index
            for lease in self._leases.values()
        ):
            run.states[index] = _PENDING
            run.pending_since[index] = self._clock()

    def _record_lease_wait_locked(
        self, run: _ClusterRun, index: int, worker: str, now: float
    ) -> None:
        """Span the time the group spent leasable before this grant."""
        if run.trace is None or self.trace_sink is None:
            return
        wait_s = max(now - run.pending_since[index], 0.0)
        self.trace_sink.add_span(
            run.trace["trace_id"], "cluster.lease_wait",
            time.time() - wait_s, wait_s * 1e3,
            run_id=run.run_id, group_index=index, worker=worker,
        )

    def _sweep_locked(self, now: float) -> None:
        """One housekeeping pass: expiries, worker eviction, finished-run GC."""
        self._expire_leases_locked(now)
        self._evict_idle_workers_locked(now)
        self._gc_finished_locked(now)

    def _expire_leases_locked(self, now: float) -> None:
        expired = [l for l in self._leases.values() if l.expires_at <= now]
        for lease in expired:
            del self._leases[lease.lease_id]
            self.counters["leases_expired"] += 1
            run = self._runs.get(lease.run_id)
            if run is not None:
                # Via _release_group_locked, NOT an unconditional reset: when
                # a second (speculative) lease on the group is still alive,
                # its holder keeps working and the group must stay _LEASED --
                # a third lease on an already-raced group would be waste.
                self._release_group_locked(run, lease.group_index)
                self._checkpoint_run_locked(run)
            logger.warning(
                "lease %s (worker %s, group %d of %s%s) expired; group returned "
                "to the pending pool",
                lease.lease_id, lease.worker, lease.group_index, lease.run_id,
                ", speculative" if lease.speculative else "",
            )
        if expired:
            self._cond.notify_all()

    def _evict_idle_workers_locked(self, now: float) -> None:
        if self.worker_ttl <= 0:
            return
        held = {lease.worker for lease in self._leases.values()}
        idle = [
            name
            for name, row in self._workers.items()
            if name not in held and now - row["last_seen"] >= self.worker_ttl
        ]
        for name in idle:
            row = self._workers.pop(name)
            retired = self._retired_workers
            retired["workers_evicted"] += 1
            for field in ("leases", "groups_completed", "cells_completed", "failures"):
                retired[field] += row[field]
            self.counters["workers_evicted"] += 1
            logger.info(
                "worker %s idle for %.0fs, evicted from the status table",
                name, now - row["last_seen"],
            )

    def _speculative_lease_locked(self, worker: str, now: float) -> dict | None:
        """A second lease on a straggling group, for an otherwise-idle worker.

        A group qualifies when it is held by exactly one non-speculative
        lease owned by a *different* worker, and that lease has been running
        longer than ``speculation_factor`` times the
        ``speculation_percentile`` duration of the run's completed leases
        (needing at least ``speculation_min_done`` samples).  The attempt
        counter is untouched: speculation is a hedge, not a retry.
        """
        if self.speculation_factor <= 0:
            return None
        for run in self._runs.values():
            if not run.active or len(run.durations) < self.speculation_min_done:
                continue
            durations = sorted(run.durations)
            position = min(
                len(durations) - 1,
                int(self.speculation_percentile * len(durations)),
            )
            threshold = self.speculation_factor * durations[position]
            for index, state in enumerate(run.states):
                if state is not _LEASED:
                    continue
                live = [
                    lease
                    for lease in self._leases.values()
                    if lease.run_id == run.run_id and lease.group_index == index
                ]
                if len(live) != 1:
                    continue
                (current,) = live
                if (
                    current.speculative
                    or current.worker == worker
                    or now - current.started_at < threshold
                ):
                    continue
                lease_id = f"{run.run_id}-lease-{self._next_serial_locked():04d}"
                self._leases[lease_id] = _Lease(
                    lease_id, run.run_id, index, worker, now + self.lease_ttl,
                    started_at=now, speculative=True,
                )
                self.counters["leases_issued"] += 1
                self.counters["leases_speculative"] += 1
                self._workers[worker]["leases"] += 1
                logger.info(
                    "speculative lease %s: group %d of %s re-leased to %s "
                    "(straggling on %s for %.1fs, threshold %.1fs)",
                    lease_id, index, run.run_id, worker, current.worker,
                    now - current.started_at, threshold,
                )
                answer = {
                    "status": "lease",
                    "lease_id": lease_id,
                    "run_id": run.run_id,
                    "group_index": index,
                    "group": group_wire_payload(run.plan.groups[index]),
                    "config": run.config_payload,
                    "ttl": self.lease_ttl,
                    "speculative": True,
                }
                if run.trace is not None:
                    answer["trace"] = run.trace
                return answer
        return None

    def _next_available_locked(self, run: _ClusterRun) -> int | None:
        """The first leasable group index of a run, honouring ancestry gates."""
        if not run.plan.with_measures:
            for index, state in enumerate(run.states):
                if state is _PENDING:
                    return index
            return None
        groups = run.plan.groups
        done = {
            (groups[i].algorithm, groups[i].seed)
            for i, state in enumerate(run.states) if state is _DONE
        }
        busy = {
            (groups[i].algorithm, groups[i].seed)
            for i, state in enumerate(run.states) if state is _LEASED
        }
        claimed: set = set()
        for index, state in enumerate(run.states):
            if state is not _PENDING:
                continue
            ancestry = (groups[index].algorithm, groups[index].seed)
            if ancestry in done:
                return index
            # No group of this ancestry has completed yet: admit only the
            # first pending group (the anchor bearer, by plan order), and
            # only while no sibling is already leased.
            if ancestry not in busy and ancestry not in claimed:
                return index
            claimed.add(ancestry)
        return None

    def _gc_finished_locked(self, now: float) -> None:
        """Age-based GC of finished runs and their checkpoints.

        A finished run lingers for ``run_gc_age`` seconds so late status
        queries and re-attaching streams still find it, then both the
        in-memory state and the store checkpoints go.  Runs with attached
        consumers are pinned.  ``_MAX_FINISHED_RUNS`` stays as a count
        backstop against burst submission on a quiet coordinator.
        """
        removed = False
        collectable = [
            (run_id, run)
            for run_id, run in self._runs.items()
            if not run.active and run.consumers == 0
        ]
        if self.run_gc_age > 0:
            for run_id, run in collectable:
                finished_at = run.finished_at if run.finished_at is not None else run.created_at
                if now - finished_at >= self.run_gc_age:
                    del self._runs[run_id]
                    self._delete_checkpoints_locked(run)
                    self.counters["runs_gced"] += 1
                    removed = True
                    logger.info("cluster run %s GC'd after %.0fs", run_id, now - finished_at)
        remaining = [
            run_id
            for run_id, run in self._runs.items()
            if not run.active and run.consumers == 0
        ]
        while len(remaining) > _MAX_FINISHED_RUNS:
            run_id = remaining.pop(0)
            run = self._runs.pop(run_id)
            self._delete_checkpoints_locked(run)
            self.counters["runs_gced"] += 1
            removed = True
        if removed:
            self._checkpoint_index_locked()

    # -- checkpointing (all hold self._cond; never raises) ---------------------

    def _checkpoint_index_locked(self) -> None:
        if self.store is None:
            return
        try:
            self.store.put_json(CHECKPOINT_KIND, _INDEX_KEY, {"runs": list(self._runs)})
            self.counters["checkpoints_written"] += 1
        except Exception as err:  # pragma: no cover - defensive
            logger.warning("cluster-run index checkpoint failed: %s", err)

    def _checkpoint_run_locked(self, run: _ClusterRun) -> None:
        if self.store is None:
            return
        payload = {
            "run_id": run.run_id,
            "plan": plan_wire_payload(run.plan),
            "config": run.config_payload,
            # A _LEASED group checkpoints as pending: after a restart its
            # lease is gone, so the group must re-lease either way.
            "states": [_DONE if s is _DONE else _PENDING for s in run.states],
            "attempts": list(run.attempts),
            "completed": run.completed,
            "cancelled": run.cancelled,
            "failure": run.failure,
            "counters": {
                "committed": run.committer.committed,
                "remaining": run.committer.remaining,
            },
        }
        try:
            self.store.put_json(CHECKPOINT_KIND, run.run_id, payload)
            self.counters["checkpoints_written"] += 1
        except Exception as err:  # pragma: no cover - defensive
            logger.warning("checkpoint of cluster run %s failed: %s", run.run_id, err)

    def _checkpoint_group_locked(self, run: _ClusterRun, index: int, rows: list[dict]) -> None:
        if self.store is None:
            return
        try:
            self.store.put_json(
                CHECKPOINT_KIND, _group_key(run.run_id, index), {"rows": rows}
            )
            self.counters["checkpoints_written"] += 1
        except Exception as err:  # pragma: no cover - defensive
            logger.warning(
                "rows checkpoint of %s group %d failed: %s", run.run_id, index, err
            )

    def _delete_checkpoints_locked(self, run: _ClusterRun) -> None:
        if self.store is None:
            return
        names = [run.run_id + ".json"]
        names.extend(
            _group_key(run.run_id, index) + ".json" for index in range(len(run.states))
        )
        for name in names:
            try:
                self.store.delete_bytes(CHECKPOINT_KIND, name)
            except Exception as err:  # pragma: no cover - defensive
                logger.warning("checkpoint delete of %s/%s failed: %s", CHECKPOINT_KIND, name, err)


def _group_key(run_id: str, index: int) -> str:
    return f"{run_id}-group-{index:04d}"
