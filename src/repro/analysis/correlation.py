"""Spearman rank correlation between distance measures and downstream instability.

Table 1 of the paper reports, per (task, algorithm), the Spearman correlation
between each embedding distance measure and the downstream prediction
disagreement across all dimension-precision pairs.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.instability.grid import GridRecord

__all__ = ["spearman_correlation", "measure_correlations"]


def spearman_correlation(x, y) -> float:
    """Spearman's rho between two equal-length sequences.

    Returns 0.0 when either input is constant (no meaningful ranking), which
    keeps downstream tables well-defined on degenerate toy inputs.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("inputs must have equal shape")
    if x.size < 2:
        raise ValueError("need at least two observations")
    if np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0
    rho = stats.spearmanr(x, y).statistic
    return float(rho) if np.isfinite(rho) else 0.0


def measure_correlations(
    records: list[GridRecord],
    *,
    measures: tuple[str, ...] | None = None,
) -> dict[tuple[str, str, str], float]:
    """Per (task, algorithm, measure) Spearman correlation with disagreement.

    Records for different seeds of the same setting are treated as separate
    observations, matching the paper's protocol of evaluating measure-vs-
    disagreement pairs per seed.
    """
    grouped: dict[tuple[str, str], list[GridRecord]] = {}
    for rec in records:
        if not rec.measures:
            continue
        grouped.setdefault((rec.task, rec.algorithm), []).append(rec)

    correlations: dict[tuple[str, str, str], float] = {}
    for (task, algorithm), group in sorted(grouped.items()):
        names = measures or tuple(sorted(group[0].measures))
        disagreements = [g.disagreement for g in group]
        for name in names:
            values = [g.measures.get(name, np.nan) for g in group]
            if any(np.isnan(values)):
                continue
            correlations[(task, algorithm, name)] = spearman_correlation(values, disagreements)
    return correlations
