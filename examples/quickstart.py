"""Quickstart: measure the downstream instability of one embedding pair.

Walks the full path of the paper once:

1. generate a Corpus'17/Corpus'18 pair (the synthetic stand-in for the two
   Wikipedia dumps);
2. train a CBOW embedding on each corpus and align them;
3. compress both embeddings with uniform quantization;
4. train a sentiment classifier on each embedding and measure how many test
   predictions disagree (Definition 1);
5. compute the eigenspace instability measure and the k-NN measure between
   the embeddings, which predict that disagreement without training anything.

Run with: ``python examples/quickstart.py``
"""

from repro.compression import compress_pair
from repro.corpus import SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.embeddings import CBOWModel, align_pair
from repro.instability.downstream import classification_disagreement
from repro.measures import EigenspaceInstability, KNNDistance
from repro.models import BowClassifier, TrainingConfig
from repro.tasks import build_task_lexicons, generate_sentiment_dataset, train_val_test_split
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()

    # 1. Two corpus snapshots a "year" apart.
    generator = SyntheticCorpusGenerator(
        SyntheticCorpusConfig(vocab_size=300, n_documents=300, doc_length_mean=80, seed=0)
    )
    pair = generator.generate_pair(seed=0)
    vocab = pair.shared_vocabulary(min_count=2)
    print(f"corpora: {pair.base.num_tokens} / {pair.drifted.num_tokens} tokens, "
          f"{len(vocab)}-word shared vocabulary")

    # 2. One embedding per corpus (same algorithm, dimension and seed).
    dim = 32
    emb_17 = CBOWModel(dim=dim, epochs=10, seed=0).fit(pair.base, vocab=vocab)
    emb_18 = CBOWModel(dim=dim, epochs=10, seed=0).fit(pair.drifted, vocab=vocab)
    emb_18 = align_pair(emb_17, emb_18)          # orthogonal Procrustes alignment

    # 3. Compress to 4 bits per entry, sharing the clipping threshold.
    emb_17_q, emb_18_q = compress_pair(emb_17, emb_18, bits=4)

    # 4. Train a downstream sentiment model on each embedding.
    lexicons = build_task_lexicons(generator, vocab)
    dataset = generate_sentiment_dataset("sst2", lexicons, seed=0)
    splits = train_val_test_split(dataset, val_fraction=0.15, test_fraction=0.25, seed=0)
    config = TrainingConfig(learning_rate=0.05, epochs=15, optimizer="adam").with_seed(0)

    model_17 = BowClassifier(emb_17_q, config=config)
    model_17.fit(splits.train, splits.val)
    model_18 = BowClassifier(emb_18_q, config=config)
    model_18.fit(splits.train, splits.val)

    disagreement = classification_disagreement(model_17, model_18, splits.test)
    print(f"downstream: accuracy {model_17.accuracy(splits.test):.3f} / "
          f"{model_18.accuracy(splits.test):.3f}, prediction disagreement {disagreement:.2f}%")

    # 5. Embedding distance measures predict this without training models.
    eis = EigenspaceInstability(emb_17, emb_18, alpha=3.0)
    knn = KNNDistance(k=5, num_queries=300)
    print(f"eigenspace instability measure: {eis.compute_embeddings(emb_17_q, emb_18_q).value:.4f}")
    print(f"1 - kNN overlap:                {knn.compute_embeddings(emb_17_q, emb_18_q).value:.4f}")


if __name__ == "__main__":
    main()
