"""Content-addressed artifact store: a tier stack over pluggable backends.

Every expensive artifact of the instability pipeline -- trained embedding
pairs, quantized pairs, matrix decompositions, downstream results, measure
values -- is keyed by a hash of the configuration that produced it.  Repeated
grid cells, repeated experiments, and repeated *runs* then hit the cache
instead of recomputing.

The store is layered:

* an **object memory tier** (always on) holds decoded artifacts and preserves
  object identity within a process -- it also backs :meth:`preload` (worker
  warm-up) and :meth:`memory_entries`;
* below it, a **tier stack** of byte-level backends
  (:mod:`repro.engine.backends`): a local disk tree, N sharded directories,
  a remote ``repro-serve`` peer, or any combination.  Reads walk tiers top to
  bottom and promote hits into the tiers above (read-through); writes encode
  once and land in every tier (write-back, top to bottom).

``ArtifactStore(root)`` keeps the original behaviour and on-disk layout:
one memory tier plus one disk tier at ``root/<kind>/<key>.{json,npz}``.
``shards=N`` replaces the disk tier with N consistent-hashed shard
directories; ``remote_url=...`` appends an HTTP peer tier;
``replicas=[...]`` appends an N-way replicated tier (first-success reads
with read-repair, fan-out writes with hinted handoff).  Because keys are
content hashes, they are location-independent: any tier on any host serves
the same bytes for the same key.

Per-kind hit/miss counters make cache behaviour testable ("a warm rerun
performs zero retrainings"); a corrupted or truncated payload in any tier is
logged, counted (``corrupt``) and treated as a miss instead of poisoning the
run.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from dataclasses import asdict, dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.embeddings.base import Embedding
from repro.engine.backends import (
    AsyncReplicator,
    DiskBackend,
    RemoteBackend,
    ReplicatedBackend,
    ShardedBackend,
    StoreBackend,
    backend_from_spec,
)
from repro.engine.codecs import (
    ARRAYS_CODEC,
    EMBEDDING_PAIR_CODEC,
    JSON_CODEC,
    ArtifactCodec,
    codec_for_value,
    mmap_codec_variant,
)
from repro.telemetry.trace import span
from repro.utils.io import to_jsonable
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "config_hash",
    "CacheStats",
    "StoreIO",
    "ArtifactStore",
    "configure_default_store",
    "default_store",
]


def config_hash(payload: Any) -> str:
    """Stable content hash of a JSON-able configuration payload.

    Dataclasses, numpy scalars/arrays and nested mappings are canonicalised
    through :func:`repro.utils.io.to_jsonable`; key order does not matter.
    """
    canonical = json.dumps(to_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


@dataclass
class CacheStats:
    """Hit/miss/write counters for one artifact kind."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Entries seeded into the memory tier from outside (worker warm-up);
    #: they are neither hits nor puts -- the store did not produce them.
    preloads: int = 0
    #: Payloads found in a tier but undecodable (truncated file, bad npz/json);
    #: each one is logged and treated as a miss for that tier.
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


def _private_array_bytes(value: Any) -> int:
    """Array bytes ``value`` holds in private memory (mapped arrays excluded).

    Understands the store's artifact families: embedding pairs, dicts of
    arrays, bare arrays.  JSON-able values count zero -- the gauge exists to
    show where the large matrices live, not to re-implement ``sys.getsizeof``.
    """
    if isinstance(value, np.ndarray):
        base: Any = value
        while base is not None:
            if isinstance(base, np.memmap):
                return 0
            base = getattr(base, "base", None)
        return int(value.nbytes)
    if isinstance(value, Embedding):
        return _private_array_bytes(value.vectors)
    if isinstance(value, tuple):
        return sum(_private_array_bytes(item) for item in value)
    if isinstance(value, Mapping):
        return sum(_private_array_bytes(item) for item in value.values())
    return 0


@dataclass
class StoreIO:
    """Array-byte accounting of npz-family artifact reads.

    ``mapped_*`` counts decodes served as read-only memory maps of a disk
    tier's file (page-cache pages shared across every co-located process);
    ``copied_*`` counts decodes that materialised private copies of the
    arrays.  The mmap benchmark and the ``/metrics`` endpoint read these to
    show the fast path's memory win; a warm mmap rerun of the pipeline keeps
    ``copied_reads`` at zero for its pair artifacts.
    """

    mapped_reads: int = 0
    mapped_bytes: int = 0
    copied_reads: int = 0
    copied_bytes: int = 0


class ArtifactStore:
    """Tiered content-addressed artifact cache (memory + backend stack).

    Parameters
    ----------
    root:
        Local cache directory.  ``None`` keeps the store memory-only unless
        other tiers are given.  With ``shards`` <= 1 the disk layout is the
        original ``root/<kind>/<key>.{json,npz}``.
    backends:
        Explicit tier stack (upper tier first); overrides ``root``/``shards``/
        ``remote_url`` construction.
    shards:
        Split the local disk tier into this many consistent-hashed shard
        directories (``root/shard-00`` ...).  Values <= 1 mean unsharded.
    remote_url:
        A peer ``repro-serve`` base URL appended as the lowest tier; local
        misses are fetched from the peer and promoted into the tiers above.
    replicas:
        N replica targets appended as one
        :class:`~repro.engine.backends.ReplicatedBackend` tier below the
        root tier.  Each entry is either a peer base URL (contains
        ``://`` -> :class:`~repro.engine.backends.RemoteBackend`) or a
        local directory (:class:`~repro.engine.backends.DiskBackend`).
        Writes fan out to every replica; reads are first-success with
        read-repair and hinted handoff.  Mutually exclusive with
        ``remote_url``.
    remote_timeout:
        Per-request socket timeout of the remote tier(s), in seconds.
    async_replication:
        Replicate write-backs to **remote-capable** tiers through a
        background :class:`~repro.engine.backends.AsyncReplicator` instead
        of synchronously, taking the network round trip off the training
        hot path.  Local tiers always stay synchronous.  Overflowing the
        bounded queue drops the write (counted per tier in
        ``TierStats.dropped``); :meth:`flush` is the barrier that waits for
        queued writes to land -- the cluster's workers call it before
        reporting a group complete so the coordinator can serve the pushed
        artifacts to the next worker.
    replication_queue:
        Entry bound of the async replication queue.
    mmap:
        Serve npz-family artifacts straight from the disk tier as read-only
        memory maps instead of decoding private copies, and write them
        uncompressed (``ZIP_STORED``) so future reads are mappable.  N
        workers plus a serving instance on one host then share one
        page-cache copy of each large pair.  Payloads written earlier with
        compression keep working -- they just decode the copying way.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        backends: Sequence[StoreBackend] | None = None,
        shards: int | None = None,
        remote_url: str | None = None,
        replicas: Sequence[str | Path] | None = None,
        remote_timeout: float = 10.0,
        async_replication: bool = False,
        replication_queue: int = 256,
        mmap: bool = False,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.mmap = bool(mmap)
        if backends is not None:
            if shards or remote_url or replicas:
                raise ValueError(
                    "pass either explicit backends or shards/remote_url/replicas"
                )
            self.tiers: list[StoreBackend] = list(backends)
        else:
            if remote_url and replicas:
                raise ValueError("pass either remote_url or replicas, not both")
            self.tiers = []
            if self.root is not None:
                if shards is not None and shards > 1:
                    self.tiers.append(ShardedBackend.local(self.root, shards))
                else:
                    self.tiers.append(DiskBackend(self.root))
            if remote_url:
                self.tiers.append(RemoteBackend(remote_url, timeout=remote_timeout))
            if replicas:
                self.tiers.append(
                    ReplicatedBackend(
                        [
                            self._replica_backend(entry, remote_timeout)
                            for entry in replicas
                        ]
                    )
                )
        self._replicator: AsyncReplicator | None = (
            AsyncReplicator(max_queue=replication_queue) if async_replication else None
        )
        self._memory: dict[tuple[str, str], Any] = {}
        #: Codec each memory entry was stored/decoded with.  The byte-level
        #: peer API needs it to encode memory-only artifacts under the same
        #: name a disk tier would use; re-inferring from the value's type is
        #: ambiguous (an empty dict could be JSON or an empty arrays npz).
        self._memory_codecs: dict[tuple[str, str], ArtifactCodec] = {}
        #: Byte payloads get_bytes encoded on the fly for peers, memoised so
        #: repeated fetches of the same memory-only artifact don't re-run
        #: savez_compressed; invalidated whenever the entry changes.
        self._encoded: dict[tuple[str, str], bytes] = {}
        #: Private array bytes each memory-tier entry holds (mapped bytes are
        #: excluded at record time); feeds the ``bytes_in_memory`` gauge.
        self._memory_bytes: dict[tuple[str, str], int] = {}
        self.stats: dict[str, CacheStats] = {}
        self.io = StoreIO()

    # -- bookkeeping ---------------------------------------------------------

    def stat(self, kind: str) -> CacheStats:
        """The (auto-created) counter block of one artifact kind."""
        if kind not in self.stats:
            self.stats[kind] = CacheStats()
        return self.stats[kind]

    def reset_stats(self) -> None:
        self.stats = {}

    @property
    def persistent(self) -> bool:
        """Whether any tier outlives this process (disk, shards, or a peer)."""
        return any(tier.persistent for tier in self.tiers)

    def key(self, **fields: Any) -> str:
        """Content hash of keyword fields (convenience over :func:`config_hash`)."""
        return config_hash(fields)

    def preload(self, kind: str, key: str, value: Any) -> None:
        """Seed the memory tier with an externally-produced artifact.

        Used by the worker warm-up path: the parent ships artifacts it already
        holds and workers preload them, skipping recomputation without
        touching the byte tiers (the parent persists its own copies).
        """
        self._memory[(kind, key)] = value
        self._memory_bytes[(kind, key)] = _private_array_bytes(value)
        self._encoded.pop((kind, key), None)
        self.stat(kind).preloads += 1

    def memory_entries(self, kind: str) -> dict[str, Any]:
        """Snapshot of the memory tier's entries of one artifact kind."""
        return {key: value for (k, key), value in self._memory.items() if k == kind}

    def __len__(self) -> int:
        return len(self._memory)

    def _record(self, kind: str, found: bool) -> None:
        stat = self.stat(kind)
        if found:
            stat.hits += 1
        else:
            stat.misses += 1

    def tier_stats(self) -> list[dict]:
        """Per-tier counter snapshots, upper tier first (JSON-able)."""
        return [tier.describe() for tier in self.tiers]

    def bytes_in_memory(self) -> int:
        """Private bytes the object memory tier holds (mapped pages excluded).

        Sums each entry's privately-materialised array bytes plus any byte
        payloads memoised for peer serving.  With mmap mode on, large pairs
        contribute nothing here -- that is the observable memory win.
        """
        return sum(self._memory_bytes.values()) + sum(
            len(payload) for payload in self._encoded.values()
        )

    def io_counters(self) -> dict:
        """JSON-able mapped-vs-copied read accounting plus the memory gauge."""
        return {**asdict(self.io), "bytes_in_memory": self.bytes_in_memory()}

    def replication_stats(self) -> dict | None:
        """Counters of the async replication queue (``None`` when synchronous)."""
        return self._replicator.describe() if self._replicator is not None else None

    @staticmethod
    def _replica_backend(entry: str | Path, timeout: float) -> StoreBackend:
        """One ``replicas=`` entry: a peer URL or a local directory."""
        text = str(entry)
        if "://" in text:
            return RemoteBackend(text, timeout=timeout)
        return DiskBackend(entry)

    def _walk_tiers(self):
        """Every backend in the stack, depth-first through shards/replicas."""
        def walk(backend: StoreBackend):
            yield backend
            for child in getattr(backend, "shards", ()):
                yield from walk(child)
            for child in getattr(backend, "replicas", ()):
                yield from walk(child)
        for tier in self.tiers:
            yield from walk(tier)

    def remote_peers(self) -> "list[RemoteBackend]":
        """Every remote peer backend in the stack (direct or nested)."""
        return [b for b in self._walk_tiers() if isinstance(b, RemoteBackend)]

    def peer_health(self) -> list[dict]:
        """Breaker state per remote peer (the ``/healthz`` degraded signal)."""
        return [
            {"url": peer.url, "breaker_open": peer.breaker_open}
            for peer in self.remote_peers()
        ]

    @property
    def degraded(self) -> bool:
        """Whether any remote peer's circuit breaker is currently open."""
        return any(peer["breaker_open"] for peer in self.peer_health())

    def replica_counters(self) -> dict:
        """Replication health counters aggregated over replicated tiers.

        All-zero when the stack has no replicated tier, so consumers (worker
        stats, ``/metrics``) can read the keys unconditionally.
        """
        totals = {
            "repairs": 0,
            "hints_queued": 0,
            "hints_drained": 0,
            "hints_dropped": 0,
            "hints_pending": 0,
        }
        for backend in self._walk_tiers():
            if isinstance(backend, ReplicatedBackend):
                totals["repairs"] += backend.repairs
                totals["hints_queued"] += backend.hints_queued
                totals["hints_drained"] += backend.hints_drained
                totals["hints_dropped"] += backend.hints_dropped
                totals["hints_pending"] += backend.hints_pending
        return totals

    # -- reconstruction (scheduler workers) ----------------------------------

    def spec(self) -> dict:
        """Picklable description so worker processes can rebuild this store.

        Tiers that cannot describe themselves (custom backend objects) are
        dropped from the description; workers then reconstruct the closest
        expressible store (at worst ``root``-only, the old behaviour).
        """
        tier_specs = [tier.spec() for tier in self.tiers]
        return {
            "root": str(self.root) if self.root is not None else None,
            "tiers": [spec for spec in tier_specs if spec is not None],
            "mmap": self.mmap,
        }

    @classmethod
    def from_spec(cls, spec: "dict | str | Path | None") -> "ArtifactStore":
        """Rebuild a store from :meth:`spec` (also accepts a bare root path)."""
        if spec is None:
            return cls()
        if isinstance(spec, (str, Path)):
            return cls(spec)
        mmap = bool(spec.get("mmap", False))
        tiers = [backend_from_spec(s) for s in spec.get("tiers", [])]
        if tiers:
            return cls(spec.get("root"), backends=tiers, mmap=mmap)
        return cls(spec.get("root"), mmap=mmap)

    # -- generic tiered read/write -------------------------------------------

    def _get(self, kind: str, key: str, codec: ArtifactCodec) -> Any | None:
        memo = self._memory.get((kind, key))
        if memo is not None:
            self._record(kind, True)
            return memo
        name = key + codec.suffix
        mappable = self.mmap and codec.suffix == ".npz"
        for index, tier in enumerate(self.tiers):
            if mappable:
                value = self._mapped_get(kind, key, name, tier, codec)
                if value is not None:
                    return value
            with span("store.get", metric="store", label=f"{tier.name}.get",
                      tier=tier.name, kind=kind) as tier_span:
                payload = tier.get(kind, name)
                tier_span.set(hit=payload is not None,
                              bytes=len(payload) if payload is not None else 0)
            if payload is None:
                continue
            try:
                value = codec.decode(payload)
            except Exception as error:
                logger.warning(
                    "corrupt %s artifact %s/%s in %s tier: %s; treating as a miss",
                    codec.name, kind, name, tier.name, error,
                )
                self.stat(kind).corrupt += 1
                continue
            if codec.suffix == ".npz":
                self.io.copied_reads += 1
                self.io.copied_bytes += _private_array_bytes(value)
            # Read-through: promote the payload into every tier above the hit.
            for upper in self.tiers[:index]:
                upper.put(kind, name, payload)
            self._memoize(kind, key, value, codec)
            self._record(kind, True)
            return value
        self._record(kind, False)
        return None

    def _mapped_get(
        self, kind: str, key: str, name: str, tier: StoreBackend, codec: ArtifactCodec
    ) -> Any | None:
        """Try serving ``kind/name`` as a memory map of ``tier``'s file.

        A mapped hit is counted on the tier like a byte hit, but is *not*
        promoted into upper tiers -- promotion would materialise exactly the
        private copy the mapping exists to avoid.
        """
        path = tier.open_path(kind, name)
        if path is None:
            return None
        decoded = codec.decode_path(path)
        if decoded is None:
            return None
        value, mapped_bytes, copied_bytes = decoded
        tier.stats.hits += 1
        self.io.mapped_reads += 1
        self.io.mapped_bytes += mapped_bytes
        self.io.copied_bytes += copied_bytes
        self._memoize(kind, key, value, mmap_codec_variant(codec), nbytes=copied_bytes)
        self._record(kind, True)
        return value

    def _memoize(
        self, kind: str, key: str, value: Any, codec: ArtifactCodec,
        nbytes: int | None = None,
    ) -> None:
        self._memory[(kind, key)] = value
        self._memory_codecs[(kind, key)] = codec
        self._memory_bytes[(kind, key)] = (
            _private_array_bytes(value) if nbytes is None else nbytes
        )

    def _put(self, kind: str, key: str, value: Any, codec: ArtifactCodec) -> None:
        if self.mmap:
            # Write npz artifacts uncompressed so later reads are mappable.
            codec = mmap_codec_variant(codec)
        self._memoize(kind, key, value, codec)
        self._encoded.pop((kind, key), None)
        self.stat(kind).puts += 1
        if self.tiers:
            payload = codec.encode(value)
            name = key + codec.suffix
            for tier in self.tiers:
                if self._replicator is not None and tier.remote_capable:
                    # Async path: the enqueue is free; the wall time shows up
                    # in the ``store.replicate`` span around flush().
                    self._replicator.submit(tier, kind, name, payload)
                else:
                    with span("store.put", metric="store", label=f"{tier.name}.put",
                              tier=tier.name, kind=kind, bytes=len(payload)):
                        tier.put(kind, name, payload)

    def flush(self, timeout: float | None = None) -> bool:
        """Barrier for async replication; a no-op ``True`` when synchronous."""
        if self._replicator is None:
            return True
        with span("store.replicate", metric="store", label="replicate") as flush_span:
            flushed = self._replicator.flush(timeout)
            flush_span.set(ok=flushed)
        return flushed

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain and stop the async replication thread (no-op when synchronous).

        The store stays usable afterwards -- writes to remote tiers simply
        become drops (counted) -- so this is for retiring a store whose
        lifetime is bounded, e.g. an evicted cluster-worker pipeline.
        """
        if self._replicator is not None:
            self._replicator.flush(timeout)
            self._replicator.close()

    # -- typed artifact families ---------------------------------------------

    def get_json(self, kind: str, key: str) -> Any | None:
        """Look up a JSON-able artifact; ``None`` on miss (counted)."""
        return self._get(kind, key, JSON_CODEC)

    def put_json(self, kind: str, key: str, value: Any) -> None:
        self._put(kind, key, to_jsonable(value), JSON_CODEC)

    def get_arrays(self, kind: str, key: str) -> dict[str, np.ndarray] | None:
        return self._get(kind, key, ARRAYS_CODEC)

    def put_arrays(self, kind: str, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        self._put(
            kind, key, {name: np.asarray(arr) for name, arr in arrays.items()},
            ARRAYS_CODEC,
        )

    def get_embedding_pair(self, kind: str, key: str) -> tuple[Embedding, Embedding] | None:
        """Look up a (base, drifted) embedding pair; ``None`` on miss."""
        return self._get(kind, key, EMBEDDING_PAIR_CODEC)

    def put_embedding_pair(
        self, kind: str, key: str, pair: tuple[Embedding, Embedding]
    ) -> None:
        self._put(kind, key, (pair[0], pair[1]), EMBEDDING_PAIR_CODEC)

    # -- byte-level access (the serving layer's /artifacts endpoints) ----------
    #
    # The byte API answers *peers*, so it deliberately touches only local
    # tiers: a node must never answer a peer's fetch by fetching from its own
    # peers (two symmetrically-configured nodes would recurse on every miss),
    # nor forward a peer's replication write back out to another peer.

    @property
    def _local_tiers(self) -> list[StoreBackend]:
        return [tier for tier in self.tiers if not tier.remote_capable]

    @staticmethod
    def _split_name(name: str) -> tuple[str, str] | None:
        for suffix in (".json", ".npz"):
            if name.endswith(suffix):
                return name[: -len(suffix)], suffix
        return None

    def _memory_codec(self, kind: str, key: str, value: Any) -> ArtifactCodec:
        """Codec of a memory entry: recorded at put/decode, else type-inferred.

        The fallback covers :meth:`preload`-seeded entries, which arrive
        without byte-level provenance.
        """
        return self._memory_codecs.get((kind, key)) or codec_for_value(value)

    def get_bytes(self, kind: str, name: str) -> bytes | None:
        """Raw payload of ``kind/name`` for serving to a peer (local tiers only).

        Walks the local byte tiers first; when the artifact lives only in
        the object memory tier (e.g. a serving node that trained it this
        process), it is encoded on the fly with the codec matching the
        object's type.  Not counted in the per-kind hit/miss stats -- peer
        traffic is accounted by the peer's own store.
        """
        for tier in self._local_tiers:
            payload = tier.get(kind, name)
            if payload is not None:
                return payload
        split = self._split_name(name)
        if split is not None:
            key, suffix = split
            memo = self._memory.get((kind, key))
            if memo is not None:
                codec = self._memory_codec(kind, key, memo)
                if codec.suffix == suffix:
                    payload = self._encoded.get((kind, key))
                    if payload is None:
                        payload = codec.encode(memo)
                        self._encoded[(kind, key)] = payload
                    return payload
        return None

    def contains_bytes(self, kind: str, name: str) -> bool:
        if any(tier.contains(kind, name) for tier in self._local_tiers):
            return True
        split = self._split_name(name)
        if split is None:
            return False
        key, suffix = split
        memo = self._memory.get((kind, key))
        # Mirror get_bytes: a memory-only artifact only "exists" under the
        # name its codec would encode it as (HEAD 200 must imply GET 200).
        return memo is not None and self._memory_codec(kind, key, memo).suffix == suffix

    def put_bytes(self, kind: str, name: str, payload: bytes) -> None:
        """Write a peer-provided payload into the local byte tiers (not decoded).

        A store with no local byte tiers (memory-only serving node) decodes
        the payload into its object tier instead, so replication to it still
        sticks; an undecodable payload is dropped and counted as corrupt.
        """
        local = self._local_tiers
        if not local:
            split = self._split_name(name)
            if split is None:
                return
            key, suffix = split
            try:
                value, codec = self._decode_payload(payload, suffix)
            except Exception as error:
                logger.warning(
                    "dropping corrupt peer payload %s/%s: %s", kind, name, error
                )
                self.stat(kind).corrupt += 1
            else:
                self._memoize(kind, key, value, codec)
                self._encoded.pop((kind, key), None)
            return
        for tier in local:
            tier.put(kind, name, payload)

    @staticmethod
    def _decode_payload(payload: bytes, suffix: str) -> tuple[Any, ArtifactCodec]:
        """Decode a raw payload by suffix (npz family sniffed by field names)."""
        if suffix == ".json":
            return JSON_CODEC.decode(payload), JSON_CODEC
        # Never allow_pickle: the payload may come from an untrusted peer.
        with np.load(io.BytesIO(payload)) as data:
            files = set(data.files)
        if {"vectors_a", "vectors_b", "metadata"} <= files:
            return EMBEDDING_PAIR_CODEC.decode(payload), EMBEDDING_PAIR_CODEC
        return ARRAYS_CODEC.decode(payload), ARRAYS_CODEC

    def delete_bytes(self, kind: str, name: str) -> None:
        for tier in self._local_tiers:
            tier.delete(kind, name)
        split = self._split_name(name)
        if split is not None:
            self._memory.pop((kind, split[0]), None)
            self._memory_codecs.pop((kind, split[0]), None)
            self._memory_bytes.pop((kind, split[0]), None)
            self._encoded.pop((kind, split[0]), None)


# -- process-wide default store ------------------------------------------------
#
# ``repro.experiments.runner --cache-dir/--store-shards/--store-url`` configures
# the default construction here once, and every pipeline constructed afterwards
# without an explicit store uses it; the default without configuration stays a
# private in-memory store per pipeline, matching the seed behaviour.

_DEFAULT_ROOT: Path | None = None
_DEFAULT_SHARDS: int | None = None
_DEFAULT_REMOTE_URL: str | None = None
_DEFAULT_REPLICAS: tuple[str, ...] | None = None
_DEFAULT_MMAP: bool = False


def configure_default_store(
    root: str | Path | None,
    *,
    shards: int | None = None,
    remote_url: str | None = None,
    replicas: Sequence[str] | None = None,
    mmap: bool = False,
) -> None:
    """Set (or clear, with all-``None``) the process-wide store construction."""
    global _DEFAULT_ROOT, _DEFAULT_SHARDS, _DEFAULT_REMOTE_URL, _DEFAULT_REPLICAS
    global _DEFAULT_MMAP
    _DEFAULT_ROOT = Path(root) if root is not None else None
    _DEFAULT_SHARDS = shards
    _DEFAULT_REMOTE_URL = remote_url
    _DEFAULT_REPLICAS = tuple(replicas) if replicas else None
    _DEFAULT_MMAP = bool(mmap)
    if _DEFAULT_ROOT is not None or remote_url is not None or replicas:
        logger.info(
            "default artifact store: root=%s shards=%s remote=%s replicas=%s mmap=%s",
            _DEFAULT_ROOT, shards, remote_url, _DEFAULT_REPLICAS, _DEFAULT_MMAP,
        )


def default_store() -> ArtifactStore:
    """A store built from the configured defaults, or a fresh in-memory store."""
    return ArtifactStore(
        _DEFAULT_ROOT,
        shards=_DEFAULT_SHARDS,
        remote_url=_DEFAULT_REMOTE_URL,
        replicas=_DEFAULT_REPLICAS,
        mmap=_DEFAULT_MMAP,
    )
