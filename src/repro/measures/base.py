"""Common interface of the embedding distance measures."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.embeddings.base import Embedding
from repro.utils.registry import Registry
from repro.utils.validation import check_embedding_pair

__all__ = ["MEASURES", "EmbeddingDistanceMeasure", "MeasureResult"]

#: Registry of distance measures keyed by the names used in the paper's tables.
MEASURES: Registry = Registry("embedding distance measure")

#: The paper computes every measure over the top-10k most frequent words only
#: (Section 2.4); our vocabularies are smaller so the slice is usually a no-op,
#: but the mechanism is preserved.
DEFAULT_TOP_K = 10_000


@dataclass(frozen=True)
class MeasureResult:
    """A measure evaluation: the value plus identifying metadata."""

    measure: str
    value: float
    n_words: int
    details: dict | None = None


class EmbeddingDistanceMeasure(abc.ABC):
    """A dissimilarity between two embeddings of the same vocabulary.

    Subclasses implement :meth:`compute` on row-aligned matrices; the
    :meth:`compute_embeddings` wrapper handles restricting a pair of
    :class:`~repro.embeddings.base.Embedding` objects to their common
    (top-``k``) vocabulary first.
    """

    #: Name used in the paper's tables (e.g. ``"eis"``, ``"1-knn"``).
    name: str = "measure"
    #: Whether the same embedding dimension is required for both inputs.
    requires_same_dim: bool = False

    @abc.abstractmethod
    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        """Dissimilarity between row-aligned embedding matrices."""

    def _validate(self, X: np.ndarray, X_tilde: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return check_embedding_pair(X, X_tilde, same_dim=self.requires_same_dim)

    def compute_embeddings(
        self, a: Embedding, b: Embedding, *, top_k: int | None = DEFAULT_TOP_K
    ) -> MeasureResult:
        """Evaluate the measure on the common (top-``k``) vocabulary of ``a`` and ``b``."""
        ra, rb = Embedding.aligned_pair(a, b, top_k=top_k)
        value = self.compute(ra.vectors, rb.vectors)
        return MeasureResult(measure=self.name, value=float(value), n_words=ra.n_words)

    def __call__(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        return self.compute(X, X_tilde)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"
