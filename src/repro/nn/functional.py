"""Functional operations built on :class:`~repro.nn.tensor.Tensor`."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "nll_loss",
    "dropout",
    "one_hot",
    "accuracy",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    # Subtracting the (detached) max does not change gradients.
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets`` under ``log_probs``."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy between ``(n, c)`` logits and integer targets."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy on raw logits against {0, 1} targets."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    probs = logits.sigmoid()
    eps = 1e-12
    loss = -(targets_t * (probs + eps).log() + (1.0 - targets_t) * (1.0 - probs + eps).log())
    return loss.mean()


def dropout(x: Tensor, p: float, *, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer ``indices`` into ``num_classes`` columns."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((len(indices), num_classes))
    out[np.arange(len(indices)), indices] = 1.0
    return out


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Fraction of argmax predictions matching integer targets."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    preds = np.argmax(data, axis=-1)
    return float(np.mean(preds == np.asarray(targets)))
