"""Tests for NN layers, functional ops, optimisers and batching utilities."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.data import BatchIterator, pad_sequences
from repro.nn.layers import Dropout, Embedding, Linear, Module, ReLU, Sequential, Tanh
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


class TestFunctional:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = Tensor(rng.standard_normal((5, 4)))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.data.sum(axis=-1), 1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.standard_normal((5, 4)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10
        )

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        assert F.cross_entropy(logits, np.array([0, 1])).item() < 1e-4

    def test_cross_entropy_uniform_is_log_c(self):
        logits = Tensor(np.zeros((3, 4)))
        assert F.cross_entropy(logits, np.array([0, 1, 2])).item() == pytest.approx(np.log(4))

    def test_bce_with_logits(self):
        logits = Tensor(np.array([100.0, -100.0]))
        assert F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0])).item() < 1e-6

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert F.accuracy(logits, np.array([0, 1])) == 1.0
        assert F.accuracy(logits, np.array([1, 1])) == 0.5

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_dropout_training_vs_eval(self, rng):
        x = Tensor(np.ones((100, 10)))
        dropped = F.dropout(x, 0.5, training=True, rng=rng)
        kept = F.dropout(x, 0.5, training=False, rng=rng)
        assert (dropped.data == 0).any()
        np.testing.assert_allclose(kept.data, 1.0)

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.5, training=True, rng=rng)


class TestLayers:
    def test_linear_shapes_and_grads(self, rng):
        layer = Linear(4, 3, seed=0)
        out = layer(Tensor(rng.standard_normal((5, 4))))
        assert out.shape == (5, 3)
        out.sum().backward()
        assert layer.weight.grad.shape == (4, 3)
        assert layer.bias.grad.shape == (3,)

    def test_linear_without_bias(self, rng):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_embedding_frozen_vs_trainable(self, rng):
        table = rng.standard_normal((6, 3))
        frozen = Embedding(table, trainable=False)
        trainable = Embedding(table, trainable=True)
        assert len(list(frozen.parameters())) == 0
        assert len(list(trainable.parameters())) == 1
        np.testing.assert_allclose(frozen(np.array([1, 2])).data, table[[1, 2]])

    def test_embedding_mean_of_empty_bag(self, rng):
        emb = Embedding(rng.standard_normal((4, 3)))
        np.testing.assert_allclose(emb.mean_of(np.array([], dtype=np.int64)).data, 0.0)

    def test_sequential_and_activations(self, rng):
        model = Sequential(Linear(4, 8, seed=0), ReLU(), Linear(8, 2, seed=1), Tanh())
        out = model(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)
        assert np.all(np.abs(out.data) <= 1.0)
        assert len(model) == 4
        assert isinstance(model[1], ReLU)

    def test_module_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_state_dict_round_trip(self, rng):
        model = Linear(3, 2, seed=0)
        state = model.state_dict()
        model.weight.data += 1.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.weight.data, state["weight"])

    def test_load_state_dict_missing_key_raises(self):
        model = Linear(3, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_num_parameters(self):
        model = Linear(3, 2)
        assert model.num_parameters() == 3 * 2 + 2


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([1.0, -2.0, 3.0])
        w = Tensor(np.zeros(3), requires_grad=True)

        def loss_fn():
            diff = w - Tensor(target)
            return (diff * diff).sum()

        return w, loss_fn, target

    def test_sgd_converges(self):
        w, loss_fn, target = self._quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        w, loss_fn, target = self._quadratic_problem()
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(200):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_adam_converges(self):
        w, loss_fn, target = self._quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_clip_norm_limits_update(self):
        w = Tensor(np.zeros(3), requires_grad=True)
        opt = SGD([w], lr=1.0, clip_norm=0.5)
        loss = (w * Tensor(np.array([100.0, 100.0, 100.0]))).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert np.linalg.norm(w.data) <= 0.5 + 1e-9

    def test_invalid_args(self):
        w = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([w], lr=-0.1)
        with pytest.raises(ValueError):
            SGD([w], lr=0.1, momentum=1.5)
        opt = SGD([w], lr=0.1)
        with pytest.raises(ValueError):
            opt.set_lr(0.0)


class TestBatching:
    def test_pad_sequences(self):
        padded, lengths = pad_sequences([np.array([1, 2]), np.array([3])], pad_value=-1)
        np.testing.assert_array_equal(padded, [[1, 2], [3, -1]])
        np.testing.assert_array_equal(lengths, [2, 1])

    def test_pad_empty_list(self):
        padded, lengths = pad_sequences([])
        assert padded.shape == (0, 0) and lengths.shape == (0,)

    def test_batch_iterator_covers_all_items_once(self):
        iterator = BatchIterator(10, 3, seed=0)
        seen = np.concatenate(list(iterator))
        assert sorted(seen.tolist()) == list(range(10))
        assert len(iterator) == 4

    def test_batch_iterator_seeded_order(self):
        a = np.concatenate(list(BatchIterator(20, 4, seed=5)))
        b = np.concatenate(list(BatchIterator(20, 4, seed=5)))
        np.testing.assert_array_equal(a, b)

    def test_batch_iterator_no_shuffle(self):
        batches = list(BatchIterator(5, 2, shuffle=False))
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(5))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BatchIterator(-1, 2)
        with pytest.raises(ValueError):
            BatchIterator(5, 0)
