"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on a
scaled-down grid.  The expensive artifacts (the corpus pair, the embedding
pairs, and the fully-evaluated grid records) are built once per session in
fixtures; the individual benchmarks time the per-figure analysis and print the
table the paper reports.
"""

from __future__ import annotations

import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.engine.scheduler import GridEngine
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig


def benchmark_pipeline_config() -> PipelineConfig:
    """The dimension-precision grid used across the benchmark suite.

    Dimensions and precisions are chosen so that several combinations collide
    on the same memory budget (needed by the Table 3 selection task), while
    keeping the grid small enough to evaluate in a couple of minutes.
    """
    return PipelineConfig(
        corpus=SyntheticCorpusConfig(vocab_size=300, n_documents=250, doc_length_mean=70, seed=0),
        algorithms=("cbow", "mc"),
        dimensions=(8, 16, 32),
        precisions=(1, 2, 4, 8, 32),
        seeds=(0,),
        tasks=("sst2", "subj", "conll"),
        embedding_epochs=8,
        downstream_epochs=12,
        ner_epochs=10,
    )


@pytest.fixture(scope="session")
def pipeline() -> InstabilityPipeline:
    """Session-wide pipeline; artifacts land in its (in-memory) engine store."""
    return InstabilityPipeline(benchmark_pipeline_config())


@pytest.fixture(scope="session")
def engine(pipeline) -> GridEngine:
    """Session-wide grid-execution engine over the shared pipeline."""
    return GridEngine(pipeline)


@pytest.fixture(scope="session")
def grid_records(engine):
    """The fully evaluated dimension-precision grid (with distance measures)."""
    return engine.run(with_measures=True)


# -- shared results writer (used by the CLI benchmarks, uploaded by CI) --------

def write_benchmark_results(name, *, summary=None, rows=None, output=None):
    """Persist one benchmark's results as ``BENCH_<name>.json``.

    Every CLI benchmark funnels its output through here so the files CI
    uploads all carry the same envelope: the benchmark name, the exact
    revision that produced the numbers, a UTC timestamp, and the payload
    (``summary`` for scalar timings/counters, ``rows`` for per-case tables).
    ``output`` overrides the default path.  Returns the written path.
    """
    import datetime
    import json
    import subprocess
    from pathlib import Path

    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=Path(__file__).resolve().parent,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        rev = "unknown"
    payload = {
        "benchmark": name,
        "git_rev": rev,
        "written_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }
    if summary is not None:
        payload["summary"] = summary
    if rows is not None:
        payload["rows"] = rows
    path = Path(output) if output else Path(f"BENCH_{name}.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path
