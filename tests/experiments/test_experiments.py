"""Tests for the experiment harness (fast, scaled-down runs)."""

import numpy as np
import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.experiments import (
    EXPERIMENTS,
    fig1_dimension,
    fig2_memory,
    fig3_kge,
    proposition1,
    quick_pipeline_config,
    run_experiment,
    table1_correlation,
    table2_selection,
    table3_budget,
    table13_randomness,
)
from repro.experiments.base import ExperimentResult, resolve_pipeline
from repro.experiments.fig3_kge import KGEExperimentConfig
from repro.instability.grid import GridRunner
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
from repro.kge.graph import SyntheticKGConfig


@pytest.fixture(scope="module")
def fast_pipeline():
    config = PipelineConfig(
        corpus=SyntheticCorpusConfig(vocab_size=200, n_documents=120, doc_length_mean=50, seed=7),
        algorithms=("svd",),
        dimensions=(6, 12),
        precisions=(1, 2, 4, 32),
        seeds=(0,),
        tasks=("sst2",),
        embedding_epochs=3,
        downstream_epochs=5,
        ner_epochs=3,
    )
    return InstabilityPipeline(config)


@pytest.fixture(scope="module")
def fast_records(fast_pipeline):
    return GridRunner(fast_pipeline).run(with_measures=True)


class TestExperimentPlumbing:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "figure-1-dimension", "figure-1-precision", "figure-2-memory", "figure-3-kge",
            "figures-4-6-sentiment", "figures-7-8-quality", "figure-11-contextual",
            "figure-12-subword", "figure-13-complex-models", "figure-14b-finetune",
            "figure-15-learning-rate", "table-1-correlation", "table-2-selection",
            "table-3-budget", "table-8-hyperparameters", "table-13-randomness",
            "proposition-1",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("figure-99")

    def test_result_container(self, tmp_path):
        result = ExperimentResult(name="demo", rows=[{"a": 1.0}], summary={"ok": True})
        assert len(result) == 1
        assert "demo" in result.to_table()
        result.to_csv(tmp_path / "demo.csv")
        assert (tmp_path / "demo.csv").exists()

    def test_quick_config_and_resolve(self):
        config = quick_pipeline_config(algorithms=("svd",), dimensions=(6,))
        assert config.algorithms == ("svd",)
        pipeline = resolve_pipeline(config)
        assert isinstance(pipeline, InstabilityPipeline)
        assert resolve_pipeline(pipeline) is pipeline


class TestGridBackedExperiments:
    def test_fig1_dimension_rows(self, fast_pipeline):
        result = fig1_dimension.run(fast_pipeline)
        assert {r["dimension"] for r in result.rows} == {6, 12}
        assert all(0.0 <= r["disagreement_pct"] <= 100.0 for r in result.rows)

    def test_fig2_summary_fields(self, fast_records):
        result = fig2_memory.summarize(fast_records)
        for key in ("memory_slope_pct_per_doubling", "dimension_slope_pct_per_doubling",
                    "precision_slope_pct_per_doubling"):
            assert key in result.summary

    def test_table1_rows_cover_all_measures(self, fast_records):
        result = table1_correlation.summarize(fast_records)
        measures = {r["measure"] for r in result.rows}
        assert measures == {"eis", "1-knn", "semantic-displacement", "pip",
                            "1-eigenspace-overlap"}
        assert all(-1.0 <= r["spearman_rho"] <= 1.0 for r in result.rows)

    def test_table2_and_table3(self, fast_records):
        selection = table2_selection.summarize(fast_records)
        budget = table3_budget.summarize(fast_records)
        assert all(0.0 <= r["selection_error"] <= 1.0 for r in selection.rows)
        assert all(r["mean_distance_to_oracle_pct"] >= 0 for r in budget.rows)
        criteria = {r["criterion"] for r in budget.rows}
        assert {"high-precision", "low-precision"} <= criteria

    def test_table13_randomness_sources(self, fast_pipeline):
        result = table13_randomness.run(fast_pipeline, tasks=("sst2",), algorithm="svd", dim=12)
        sources = {r["source"] for r in result.rows}
        assert "embedding-training-data" in sources
        assert "model-initialization-seed" in sources


class TestStandaloneExperiments:
    def test_proposition1_holds(self):
        result = proposition1.run(n_samples=800, seed=1)
        assert result.summary["exact_vs_efficient_abs_diff"] < 1e-9
        assert result.summary["proposition_holds_within_5pct"]

    def test_fig3_kge_small(self):
        config = KGEExperimentConfig(
            graph=SyntheticKGConfig(n_entities=60, n_relations=5, n_triplets=500, seed=0),
            dimensions=(4, 8),
            precisions=(1, 32),
            epochs=10,
        )
        result = fig3_kge.run(config)
        assert len(result.rows) == 4
        assert all(0.0 <= r["unstable_rank_at_10_pct"] <= 100.0 for r in result.rows)
        assert all(np.isfinite(r["mean_rank_full"]) for r in result.rows)
