"""Figure 14b: fine-tuning the embeddings during downstream training."""

from repro.experiments import fig14_finetune


def test_fig14_finetune(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: fig14_finetune.run(
            pipeline, algorithms=("mc",), dimensions=(8, 32), precisions=(1, 32)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 8
    assert result.summary["mean_disagreement_fixed"] >= 0
