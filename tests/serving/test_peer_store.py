"""Two-store peer tests: node B warm-serves artifacts node A computed.

Node A is a real ``repro-serve``-style server (asyncio API on an ephemeral
port) over a disk-backed store whose grid has been fully executed.  Node B
builds a fresh pipeline whose store uses A as a remote tier -- the
multi-host deployment the sharded/remote storage subsystem exists for --
and must reproduce A's records bit-identically with **zero retrainings and
zero new decompositions**, all artifacts flowing over ``/artifacts``.
"""

import asyncio
import threading
import warnings

import pytest

from repro.engine import ArtifactStore, GridEngine, RemoteBackend
from repro.engine import stats as engine_stats
from repro.serving import StabilityService
from repro.serving.api import StabilityAPIServer, quick_serve_config


@pytest.fixture(scope="module")
def peer(tmp_path_factory):
    """(server, warm grid records) -- node A, fully warmed, serving HTTP."""
    root = tmp_path_factory.mktemp("store-a")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(quick_serve_config(), store=ArtifactStore(root))
        records = service.engine.run(with_measures=True)
    api = StabilityAPIServer(service, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "peer server failed to start"
    yield api, records
    asyncio.run_coroutine_threadsafe(api.stop(), loop).result(timeout=10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)
    service.close()


def peer_url(api: StabilityAPIServer) -> str:
    return f"http://127.0.0.1:{api.port}"


class TestRemoteBackendAgainstLivePeer:
    def test_round_trip_and_contains(self, peer):
        api, _ = peer
        backend = RemoteBackend(peer_url(api))
        backend.put("testkind", "abc123.json", b'{"x": 1}')
        assert backend.contains("testkind", "abc123.json")
        assert backend.get("testkind", "abc123.json") == b'{"x": 1}'
        backend.delete("testkind", "abc123.json")
        assert not backend.contains("testkind", "abc123.json")
        assert backend.get("testkind", "abc123.json") is None
        assert backend.stats.errors == 0

    def test_fetches_artifacts_the_peer_computed(self, peer):
        api, _ = peer
        backend = RemoteBackend(peer_url(api))
        store_a = api.service.store
        kind = "measures"
        keys = list(store_a.memory_entries(kind))
        assert keys, "warm peer should hold measure artifacts"
        payload = backend.get(kind, f"{keys[0]}.json")
        assert payload is not None
        assert payload == store_a.get_bytes(kind, f"{keys[0]}.json")

    def test_many_gets_reuse_one_connection(self, peer):
        api, _ = peer
        backend = RemoteBackend(peer_url(api))
        backend.put("testkind", "reuse.json", b"{}")
        sockets = set()
        for _ in range(5):
            assert backend.get("testkind", "reuse.json") == b"{}"
            sockets.add(id(backend._connection().sock))
        assert len(sockets) == 1, "keep-alive should reuse the TCP connection"
        backend.close()


class TestPeerWarmGrid:
    def test_remote_tier_warm_rerun_is_bit_identical_with_zero_training(self, peer):
        api, records_a = peer
        store_b = ArtifactStore(remote_url=peer_url(api))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            engine_b = GridEngine(quick_serve_config(), store=store_b)
            records_b = engine_b.run(with_measures=True)

        assert records_b == records_a          # dataclass equality: exact floats

        snapshot = engine_stats(engine_b)
        assert snapshot["pipeline"]["embedding_train_count"] == 0
        assert snapshot["pipeline"]["downstream_train_count"] == 0
        # Warm measures short-circuit before decompositions: none computed.
        assert snapshot["store"].get("decomposition", {}).get("puts", 0) == 0
        assert snapshot["store"].get("embedding_pair", {}).get("puts", 0) == 0
        assert snapshot["store"]["measures"]["puts"] == 0
        assert snapshot["store"]["measures"]["hits"] > 0
        (remote,) = snapshot["store_tiers"]
        assert remote["name"] == "remote" and remote["hits"] > 0
        assert remote["errors"] == 0

    def test_disk_plus_remote_promotes_peer_artifacts_to_disk(self, peer, tmp_path):
        api, records_a = peer
        store = ArtifactStore(tmp_path, remote_url=peer_url(api))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            engine = GridEngine(quick_serve_config(), store=store)
            records = engine.run(with_measures=True)
        assert records == records_a
        assert engine.pipeline.embedding_train_count == 0

        # Promotion made the artifacts local: a disk-only store now serves the
        # whole grid without the peer (and without training).
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            offline_engine = GridEngine(
                quick_serve_config(), store=ArtifactStore(tmp_path)
            )
            offline = offline_engine.run(with_measures=True)
        assert offline == records_a
        assert offline_engine.pipeline.embedding_train_count == 0

    def test_artifacts_computed_on_b_replicate_back_to_a(self, peer):
        api, _ = peer
        store_b = ArtifactStore(remote_url=peer_url(api))
        store_b.put_json("replication", "fresh-key", {"value": 42})
        # Node A's store now holds the payload (written through /artifacts).
        assert api.service.store.get_json("replication", "fresh-key") == {"value": 42}
