"""The Pairwise Inner Product (PIP) loss (Yin & Shen, 2018).

``PIP(X, X~) = || X X^T - X~ X~^T ||_F`` -- the Frobenius distance between the
two Gram matrices.  Computed without materialising the ``n x n`` Gram matrices
via the identity

    ||X X^T - Y Y^T||_F^2 = ||X^T X||_F^2 + ||Y^T Y||_F^2 - 2 ||X^T Y||_F^2,

which only needs ``d x d`` products for tall-and-thin embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import gram_frobenius_diff_sq
from repro.measures.base import MEASURES, DecompositionCache, EmbeddingDistanceMeasure
from repro.utils.validation import check_embedding_pair

__all__ = ["pip_loss", "PIPLoss"]


def pip_loss(
    X: np.ndarray, X_tilde: np.ndarray, *, cache: DecompositionCache | None = None
) -> float:
    """Frobenius norm of the Gram-matrix difference ``X X^T - X~ X~^T``."""
    X, X_tilde = check_embedding_pair(X, X_tilde)
    if cache is not None:
        # From X = U S V^T: ||X X^T||_F^2 = sum(S^4) and
        # tr(X X^T Y Y^T) = ||diag(S) U^T U~ diag(S~)||_F^2, so the shared SVD
        # and cross product replace all three Gram products.  Reductions run
        # in float64 even when the decompositions are float32.
        _, S, _ = cache.svd(X)
        _, S_t, _ = cache.svd(X_tilde)
        M = (S[:, np.newaxis] * cache.cross(X, X_tilde)) * S_t[np.newaxis, :]
        sq = float(
            np.sum(S**4, dtype=np.float64)
            + np.sum(S_t**4, dtype=np.float64)
            - 2.0 * np.sum(M**2, dtype=np.float64)
        )
    else:
        sq = gram_frobenius_diff_sq(X, X_tilde)
    # Round-off can produce a tiny negative value when the matrices are equal.
    return float(np.sqrt(max(sq, 0.0)))


@MEASURES.register("pip")
class PIPLoss(EmbeddingDistanceMeasure):
    """Pairwise inner product loss between two embeddings."""

    name = "pip"

    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        return pip_loss(X, X_tilde)

    def compute_cached(
        self, X: np.ndarray, X_tilde: np.ndarray, cache: DecompositionCache | None = None
    ) -> float:
        return pip_loss(X, X_tilde, cache=cache)
