"""Figure 13 (Appendix E.2): more complex downstream models.

The paper checks that the stability-memory tradeoff also appears with a CNN
sentence classifier (SST-2) and a BiLSTM-CRF tagger (CoNLL-2003), not just the
simple linear / BiLSTM models of the main study.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_pipeline
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    dimensions: tuple[int, ...] | None = None,
    precisions: tuple[int, ...] = (1, 4, 32),
    algorithm: str = "mc",
    seed: int = 0,
    include_crf: bool = True,
) -> ExperimentResult:
    """Reproduce the complex-downstream-model sweep (Figure 13)."""
    pipe = resolve_pipeline(pipeline)
    dims = dimensions or tuple(sorted(pipe.config.dimensions)[:2] + (max(pipe.config.dimensions),))

    rows = []
    for dim in sorted(set(dims)):
        for precision in precisions:
            emb_a, emb_b = pipe.compressed_pair(algorithm, dim, precision, seed)
            cnn = pipe.downstream_result("sst2", emb_a, emb_b, seed, model_type="cnn")
            rows.append(
                {
                    "model": "cnn",
                    "task": "sst2",
                    "algorithm": algorithm,
                    "dimension": dim,
                    "precision": precision,
                    "memory_bits_per_word": dim * precision,
                    "disagreement_pct": cnn.disagreement,
                    "quality": cnn.mean_accuracy,
                }
            )
            if include_crf:
                crf = pipe.downstream_result("conll", emb_a, emb_b, seed, use_crf=True)
                rows.append(
                    {
                        "model": "bilstm-crf",
                        "task": "conll",
                        "algorithm": algorithm,
                        "dimension": dim,
                        "precision": precision,
                        "memory_bits_per_word": dim * precision,
                        "disagreement_pct": crf.disagreement,
                        "quality": crf.mean_accuracy,
                    }
                )

    summary = {}
    for model in ("cnn", "bilstm-crf"):
        series = sorted(
            (r for r in rows if r["model"] == model), key=lambda r: r["memory_bits_per_word"]
        )
        if len(series) >= 2:
            summary[f"{model}_low_vs_high_memory"] = (
                series[0]["disagreement_pct"],
                series[-1]["disagreement_pct"],
            )
    return ExperimentResult(name="figure-13-complex-models", rows=rows, summary=summary)
