"""Tests for the eigenspace instability measure, including Proposition 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.proposition1 import monte_carlo_disagreement
from repro.measures.eigenspace_instability import (
    EigenspaceInstability,
    eigenspace_instability,
    eigenspace_instability_exact,
    sigma_from_anchors,
)


@pytest.fixture()
def matrices(rng):
    n = 40
    X = rng.standard_normal((n, 6))
    X_tilde = rng.standard_normal((n, 8))
    E = rng.standard_normal((n, 10))
    E_tilde = E + 0.2 * rng.standard_normal((n, 10))
    return X, X_tilde, E, E_tilde


class TestDefinition:
    def test_identical_embeddings_are_zero(self, rng):
        X = rng.standard_normal((30, 5))
        E = rng.standard_normal((30, 8))
        assert eigenspace_instability(X, X, E, E, alpha=2.0) == pytest.approx(0.0, abs=1e-10)

    def test_identical_subspace_different_basis_is_zero(self, rng):
        """EIS only depends on the span of the left singular vectors."""
        X = rng.standard_normal((30, 5))
        mixing = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        E = rng.standard_normal((30, 8))
        assert eigenspace_instability(X, X @ mixing, E, E, alpha=1.0) == pytest.approx(0.0, abs=1e-8)

    def test_orthogonal_subspaces_give_large_value(self):
        """Disjoint column spans cover Sigma's energy twice -> value near 1."""
        n = 20
        X = np.zeros((n, 5))
        X[:5, :5] = np.eye(5)
        X_tilde = np.zeros((n, 5))
        X_tilde[5:10, :5] = np.eye(5)
        E = np.eye(n)
        value = eigenspace_instability(X, X_tilde, E, E, alpha=0.0)
        assert value == pytest.approx(0.5, abs=1e-8)  # 10 of 20 directions uncovered... each half

    def test_value_nonnegative(self, matrices):
        X, X_tilde, E, E_tilde = matrices
        assert eigenspace_instability(X, X_tilde, E, E_tilde) >= 0.0

    def test_symmetry_in_pair(self, matrices):
        X, X_tilde, E, E_tilde = matrices
        a = eigenspace_instability(X, X_tilde, E, E_tilde, alpha=2.0)
        b = eigenspace_instability(X_tilde, X, E, E_tilde, alpha=2.0)
        assert a == pytest.approx(b, rel=1e-9)

    def test_efficient_matches_exact(self, matrices):
        X, X_tilde, E, E_tilde = matrices
        for alpha in (0.0, 1.0, 3.0):
            sigma = sigma_from_anchors(E, E_tilde, alpha=alpha)
            exact = eigenspace_instability_exact(X, X_tilde, sigma)
            efficient = eigenspace_instability(X, X_tilde, E, E_tilde, alpha=alpha)
            assert efficient == pytest.approx(exact, rel=1e-9, abs=1e-12)

    def test_row_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            eigenspace_instability(
                rng.standard_normal((10, 3)),
                rng.standard_normal((10, 3)),
                rng.standard_normal((9, 3)),
                rng.standard_normal((10, 3)),
            )


class TestProposition1:
    def test_monte_carlo_matches_eis(self, rng):
        """Prop. 1: expected linear-regression disagreement equals EIS."""
        n = 30
        X = rng.standard_normal((n, 5))
        X_tilde = rng.standard_normal((n, 7))
        E = rng.standard_normal((n, 10))
        E_tilde = rng.standard_normal((n, 10))
        sigma = sigma_from_anchors(E, E_tilde, alpha=1.0)
        eis = eigenspace_instability_exact(X, X_tilde, sigma)
        empirical = monte_carlo_disagreement(X, X_tilde, sigma, n_samples=3000, seed=1)
        assert empirical == pytest.approx(eis, rel=0.1)

    def test_identity_sigma_reduces_to_projection_distance(self, rng):
        """With Sigma = I the EIS equals tr(P + P~ - 2 P~P) / n."""
        n = 25
        X = rng.standard_normal((n, 4))
        X_tilde = rng.standard_normal((n, 6))
        sigma = np.eye(n)
        value = eigenspace_instability_exact(X, X_tilde, sigma)
        U, _, _ = np.linalg.svd(X, full_matrices=False)
        Ut, _, _ = np.linalg.svd(X_tilde, full_matrices=False)
        P, Pt = U @ U.T, Ut @ Ut.T
        expected = np.trace(P + Pt - 2 * Pt @ P) / n
        assert value == pytest.approx(expected, rel=1e-9)


class TestMeasureClass:
    def test_compute_embeddings_uses_anchor_words(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        measure = EigenspaceInstability(emb_a, emb_b, alpha=3.0)
        result = measure.compute_embeddings(emb_a, emb_b)
        assert result.measure == "eis"
        assert result.value >= 0.0
        assert result.n_words == emb_a.n_words

    def test_anchor_too_small_raises(self, rng, embedding_pair):
        emb_a, emb_b = embedding_pair
        tiny_anchor = rng.standard_normal((3, 4))
        measure = EigenspaceInstability(tiny_anchor, tiny_anchor)
        with pytest.raises(ValueError, match="anchor"):
            measure.compute(emb_a.vectors, emb_b.vectors)

    def test_quantization_increases_or_keeps_eis(self, embedding_pair):
        """1-bit quantization should not look *more* stable than full precision."""
        from repro.compression.uniform_quantization import compress_pair

        emb_a, emb_b = embedding_pair
        measure = EigenspaceInstability(emb_a, emb_b, alpha=3.0)
        full = measure.compute_embeddings(emb_a, emb_b).value
        qa, qb = compress_pair(emb_a, emb_b, 1)
        coarse = measure.compute_embeddings(qa, qb).value
        assert coarse >= full - 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.floats(min_value=0.0, max_value=3.0))
def test_property_eis_bounded_and_zero_on_self(dim, alpha):
    rng = np.random.default_rng(dim)
    X = rng.standard_normal((20, dim))
    E = rng.standard_normal((20, dim + 2))
    assert eigenspace_instability(X, X, E, E, alpha=alpha) == pytest.approx(0.0, abs=1e-8)
    Y = rng.standard_normal((20, dim))
    value = eigenspace_instability(X, Y, E, E, alpha=alpha)
    assert 0.0 <= value <= 2.0
