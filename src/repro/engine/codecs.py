"""Typed artifact codecs: (de)serialization between objects and bytes.

The artifact store used to interleave *what* an artifact is (a JSON record, a
dict of arrays, an embedding pair) with *where* it lives (memory dict, disk
file).  The codecs extract the first concern: each codec turns one artifact
family into bytes and back, and every storage backend
(:mod:`repro.engine.backends`) only ever moves bytes.  That is what makes the
backends interchangeable -- a sharded directory tree and a remote HTTP peer
serve exactly the same payloads a local disk tier writes.

The byte formats match the pre-codec store's disk layout:

* :class:`JsonCodec` -- ``json.dumps(..., indent=2, sort_keys=True)`` UTF-8,
  ``.json`` files;
* :class:`ArraysCodec` -- ``np.savez_compressed``, ``.npz`` files;
* :class:`EmbeddingPairCodec` -- the store's aligned-pair ``.npz`` layout
  (vectors, vocab words/counts per side, metadata as an embedded JSON string).

Decoding never enables ``allow_pickle``: artifact payloads can arrive from
peers over the unauthenticated ``/artifacts`` HTTP API, and ``np.load`` with
pickling enabled would turn any reachable store port into arbitrary code
execution.  All payload fields are plain numeric / fixed-width-unicode
arrays, so pickle is never needed; an undecodable payload is a cache miss.
"""

from __future__ import annotations

import io
import json
import struct
import zipfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.embeddings.base import Embedding
from repro.utils.io import to_jsonable

__all__ = [
    "ArtifactCodec",
    "JsonCodec",
    "ArraysCodec",
    "EmbeddingPairCodec",
    "JSON_CODEC",
    "ARRAYS_CODEC",
    "EMBEDDING_PAIR_CODEC",
    "RAW_ARRAYS_CODEC",
    "RAW_EMBEDDING_PAIR_CODEC",
    "codec_for_value",
    "mmap_codec_variant",
    "mmap_npz_member",
]


def mmap_npz_member(path: str | Path, member: str) -> np.ndarray | None:
    """Memory-map one ``.npy`` member of an on-disk ``.npz`` archive.

    ``np.load(..., mmap_mode="r")`` silently ignores the mmap request for
    zipped archives, so the member is mapped manually: locate the member's
    data start through the zip local file header, parse the npy header for
    dtype/shape/order, and hand the remaining extent to :class:`numpy.memmap`
    read-only.  Only ``ZIP_STORED`` (uncompressed) members are mappable --
    the store writes npz artifacts uncompressed when its mmap mode is on.
    Returns ``None`` whenever the member cannot be mapped (compressed,
    zero-size, malformed); callers fall back to a regular decode.
    """
    try:
        with zipfile.ZipFile(path) as archive:
            info = archive.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            header_offset = info.header_offset
        with open(path, "rb") as handle:
            handle.seek(header_offset)
            local_header = handle.read(30)
            if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
                return None
            name_len, extra_len = struct.unpack("<HH", local_header[26:30])
            handle.seek(header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
            if dtype.hasobject or 0 in shape or shape == ():
                return None
            data_offset = handle.tell()
        return np.memmap(
            path, dtype=dtype, mode="r", offset=data_offset, shape=shape,
            order="F" if fortran else "C",
        )
    except Exception:
        return None


def _stored_members_only(path: str | Path) -> bool:
    """Whether every archive member is uncompressed (``ZIP_STORED``)."""
    try:
        with zipfile.ZipFile(path) as archive:
            return all(
                info.compress_type == zipfile.ZIP_STORED for info in archive.infolist()
            )
    except Exception:
        return False


class ArtifactCodec:
    """One artifact family's byte representation.

    ``suffix`` doubles as the on-disk file extension, keeping the disk
    backend's layout (``<kind>/<key><suffix>``) identical to the pre-codec
    store.
    """

    name: str = "abstract"
    suffix: str = ""

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes) -> Any:
        raise NotImplementedError

    def decode_path(self, path: str | Path) -> "tuple[Any, int, int] | None":
        """Decode straight from an on-disk payload, memory-mapping when possible.

        Returns ``(value, mapped_bytes, copied_bytes)`` -- how many array
        bytes stayed page-cache-backed versus privately materialised -- or
        ``None`` when the codec cannot map this payload (callers fall back
        to :meth:`decode` on the raw bytes).
        """
        return None


class JsonCodec(ArtifactCodec):
    """JSON-able artifacts (measure values, downstream results)."""

    name = "json"
    suffix = ".json"

    def encode(self, value: Any) -> bytes:
        return json.dumps(to_jsonable(value), indent=2, sort_keys=True).encode("utf-8")

    def decode(self, payload: bytes) -> Any:
        return json.loads(payload.decode("utf-8"))


class ArraysCodec(ArtifactCodec):
    """Dicts of named numpy arrays (matrix decompositions).

    ``compressed=False`` writes the members ``ZIP_STORED`` (still a valid
    npz/zip, CRCs intact for :func:`~repro.engine.backends.payload_intact`)
    so a disk tier in mmap mode can map them straight out of the page cache.
    """

    name = "arrays"
    suffix = ".npz"

    def __init__(self, *, compressed: bool = True) -> None:
        self.compressed = compressed

    def encode(self, value: Mapping[str, np.ndarray]) -> bytes:
        buffer = io.BytesIO()
        savez = np.savez_compressed if self.compressed else np.savez
        savez(buffer, **{k: np.asarray(v) for k, v in value.items()})
        return buffer.getvalue()

    def decode(self, payload: bytes) -> dict[str, np.ndarray]:
        with np.load(io.BytesIO(payload)) as data:
            return {name: data[name] for name in data.files}

    def decode_path(self, path: str | Path) -> tuple[dict[str, np.ndarray], int, int] | None:
        """Map every member read-only straight out of the archive on disk.

        A compressed (legacy ``savez_compressed``) archive is not mappable at
        all -- return ``None`` so the caller decodes the bytes as before.
        Members that are individually unmappable (0-d scalars, empty arrays)
        are loaded normally and counted as copied bytes; they are metadata
        riding along with the matrices the mapping exists to share.
        """
        if not _stored_members_only(path):
            return None
        value: dict[str, np.ndarray] = {}
        mapped = copied = 0
        try:
            with np.load(path) as data:
                for name in data.files:
                    array = mmap_npz_member(path, f"{name}.npy")
                    if array is None:
                        array = data[name]
                        copied += array.nbytes
                    else:
                        mapped += array.nbytes
                    value[name] = array
        except Exception:
            return None
        return value, mapped, copied


class EmbeddingPairCodec(ArtifactCodec):
    """Aligned (base, drifted) embedding pairs.

    The npz payload carries each side's vectors, vocabulary words and counts,
    plus both metadata dicts as one embedded JSON string; decoding restores
    row alignment after :class:`~repro.corpus.vocabulary.Vocabulary` re-sorts
    words by frequency.  Word arrays are fixed-width unicode (``dtype='U...'``)
    and decoding never enables ``allow_pickle``, so a hostile payload arriving
    over the ``/artifacts`` peer API cannot smuggle pickled objects -- the
    worst a bad payload can do is fail to decode (counted as corrupt, treated
    as a miss).  Payloads written by pre-2026 versions with dtype=object word
    arrays are rejected the same way and simply recomputed.
    """

    name = "embedding_pair"
    suffix = ".npz"

    def __init__(self, *, compressed: bool = True) -> None:
        self.compressed = compressed

    def encode(self, value: tuple[Embedding, Embedding]) -> bytes:
        emb_a, emb_b = value
        payload = {
            "vectors_a": emb_a.vectors,
            "vectors_b": emb_b.vectors,
            "words_a": np.array(emb_a.vocab.words, dtype=np.str_),
            "counts_a": emb_a.vocab.counts,
            "words_b": np.array(emb_b.vocab.words, dtype=np.str_),
            "counts_b": emb_b.vocab.counts,
            "metadata": np.array(
                json.dumps([to_jsonable(emb_a.metadata), to_jsonable(emb_b.metadata)])
            ),
        }
        buffer = io.BytesIO()
        savez = np.savez_compressed if self.compressed else np.savez
        savez(buffer, **payload)
        return buffer.getvalue()

    def decode(self, payload: bytes) -> tuple[Embedding, Embedding]:
        with np.load(io.BytesIO(payload)) as data:
            meta_a, meta_b = json.loads(str(data["metadata"]))
            embeddings = [
                Embedding.from_word_arrays(
                    data[f"words_{side}"], data[f"counts_{side}"],
                    data[f"vectors_{side}"], metadata=meta,
                )
                for side, meta in (("a", meta_a), ("b", meta_b))
            ]
        return embeddings[0], embeddings[1]

    def decode_path(self, path: str | Path) -> tuple[tuple[Embedding, Embedding], int, int] | None:
        """Rebuild the pair with its vector matrices memory-mapped.

        Vocabulary words/counts and metadata are tiny and always read
        normally; only the two vector matrices matter for page sharing.  The
        codec writes words in vocabulary order, so the rebuild's re-gather is
        the identity permutation and :meth:`Embedding.from_word_arrays`
        passes the mapped matrices through without copying them.
        """
        if not _stored_members_only(path):
            return None
        mapped = copied = 0
        try:
            with np.load(path) as data:
                meta_a, meta_b = json.loads(str(data["metadata"]))
                embeddings = []
                for side, meta in (("a", meta_a), ("b", meta_b)):
                    vectors = mmap_npz_member(path, f"vectors_{side}.npy")
                    if vectors is None:
                        vectors = data[f"vectors_{side}"]
                    embedding = Embedding.from_word_arrays(
                        data[f"words_{side}"], data[f"counts_{side}"],
                        vectors, metadata=meta,
                    )
                    if np.may_share_memory(embedding.vectors, vectors) and isinstance(
                        vectors, np.memmap
                    ):
                        mapped += embedding.vectors.nbytes
                    else:
                        copied += embedding.vectors.nbytes
                    embeddings.append(embedding)
        except Exception:
            return None
        return (embeddings[0], embeddings[1]), mapped, copied


JSON_CODEC = JsonCodec()
ARRAYS_CODEC = ArraysCodec()
EMBEDDING_PAIR_CODEC = EmbeddingPairCodec()
#: Uncompressed (``ZIP_STORED``) variants used by stores in mmap mode: the
#: bytes they write are what :meth:`ArtifactCodec.decode_path` can map.
RAW_ARRAYS_CODEC = ArraysCodec(compressed=False)
RAW_EMBEDDING_PAIR_CODEC = EmbeddingPairCodec(compressed=False)


def mmap_codec_variant(codec: ArtifactCodec) -> ArtifactCodec:
    """The uncompressed twin of an npz-family codec (identity otherwise)."""
    if isinstance(codec, EmbeddingPairCodec):
        return RAW_EMBEDDING_PAIR_CODEC
    if isinstance(codec, ArraysCodec):
        return RAW_ARRAYS_CODEC
    return codec


def codec_for_value(value: Any) -> ArtifactCodec:
    """The codec that can serialise ``value`` (type-driven dispatch).

    Used when a store must produce bytes for an artifact it only holds
    decoded in its memory tier -- e.g. a serving node answering a peer's
    ``/artifacts`` fetch for a pair it trained itself.
    """
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and all(isinstance(item, Embedding) for item in value)
    ):
        return EMBEDDING_PAIR_CODEC
    if isinstance(value, Mapping) and value and all(
        isinstance(item, np.ndarray) for item in value.values()
    ):
        return ARRAYS_CODEC
    return JSON_CODEC
