"""Table 2 (and Table 10): pairwise dimension-precision selection error.

Each embedding distance measure is used to pick the more stable of two
candidate dimension-precision settings; the table reports the selection error
rate per (task, algorithm), plus the worst-case disagreement increase
(Table 10).  The paper's finding: EIS and the k-NN measure have the lowest
error rates.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.experiments.table1_correlation import MEASURE_ORDER
from repro.instability.grid import GridRecord
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
from repro.selection.criteria import measure_criterion
from repro.selection.pairwise import pairwise_selection_error

__all__ = ["run", "summarize"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    tasks: tuple[str, ...] | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce Table 2 on the pipeline's grid."""
    pipe = resolve_pipeline(pipeline)
    records = resolve_engine(pipe, n_workers=n_workers).run(tasks=tasks, with_measures=True)
    return summarize(records)


def summarize(records: list[GridRecord]) -> ExperimentResult:
    """Build the Table 2 / Table 10 rows from evaluated grid records."""
    rows = []
    for measure in MEASURE_ORDER:
        criterion = measure_criterion(measure)
        for result in pairwise_selection_error(records, criterion):
            rows.append(
                {
                    "measure": measure,
                    "task": result.task,
                    "algorithm": result.algorithm,
                    "selection_error": result.error_rate,
                    "worst_case_error_pct": result.worst_case_error,
                    "n_groupings": result.n_groupings,
                }
            )

    per_measure: dict[str, list[float]] = {}
    for row in rows:
        per_measure.setdefault(row["measure"], []).append(row["selection_error"])
    mean_error = {m: float(np.mean(v)) for m, v in per_measure.items()}
    ranked = sorted(mean_error, key=lambda m: mean_error[m])
    summary = {
        "mean_selection_error_by_measure": mean_error,
        "best_two_measures": ranked[:2],
        "eis_or_knn_is_best": bool(ranked and ranked[0] in ("eis", "1-knn")),
    }
    return ExperimentResult(name="table-2-selection-error", rows=rows, summary=summary)
