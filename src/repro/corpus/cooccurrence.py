"""Co-occurrence statistics and the PPMI transform.

GloVe and matrix completion both factor a co-occurrence matrix built from the
corpus with a symmetric context window (the paper uses window size 15).  The
matrix-completion algorithm factors the *positive pointwise mutual
information* (PPMI) matrix rather than the raw counts (Bullinaria & Levy,
2007), so :func:`ppmi_matrix` is provided as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.corpus.vocabulary import Vocabulary

__all__ = [
    "CooccurrenceMatrix",
    "CooccurrenceAccumulator",
    "build_cooccurrence",
    "ppmi_matrix",
]


@dataclass
class CooccurrenceMatrix:
    """Sparse symmetric word-word co-occurrence counts.

    Attributes
    ----------
    matrix:
        ``scipy.sparse.csr_matrix`` of shape ``(n, n)`` with (possibly
        distance-weighted) co-occurrence counts.
    vocab:
        The vocabulary defining row/column order.
    window_size:
        The symmetric context window used to build the matrix.
    distance_weighting:
        Whether counts were weighted by ``1/distance`` (GloVe convention).
    """

    matrix: sp.csr_matrix
    vocab: Vocabulary
    window_size: int
    distance_weighting: bool

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def row_sums(self) -> np.ndarray:
        return np.asarray(self.matrix.sum(axis=1)).ravel()

    def to_dense(self) -> np.ndarray:
        return self.matrix.toarray()

    def ppmi(self, *, shift: float = 0.0) -> sp.csr_matrix:
        """Positive PMI transform of the counts (see :func:`ppmi_matrix`)."""
        return ppmi_matrix(self.matrix, shift=shift)


def build_cooccurrence(
    documents: Iterable[Sequence[int] | np.ndarray],
    vocab_size: int | Vocabulary,
    *,
    window_size: int = 8,
    distance_weighting: bool = True,
    symmetric: bool = True,
) -> sp.csr_matrix:
    """Build a sparse co-occurrence matrix from id-encoded documents.

    Parameters
    ----------
    documents:
        Iterable of documents, each a sequence of integer word ids already
        encoded in the target vocabulary (negative ids are skipped).
    vocab_size:
        Vocabulary size, or the :class:`Vocabulary` itself.
    window_size:
        Symmetric window radius.
    distance_weighting:
        Weight a pair at distance ``d`` by ``1/d`` (GloVe style) instead of 1.
    symmetric:
        Accumulate counts for both (word, context) and (context, word).

    Returns
    -------
    scipy.sparse.csr_matrix
        ``(n, n)`` float64 co-occurrence matrix.
    """
    n = len(vocab_size) if isinstance(vocab_size, Vocabulary) else int(vocab_size)
    if n <= 0:
        raise ValueError("vocab_size must be positive")
    if window_size < 1:
        raise ValueError("window_size must be >= 1")
    counts = _offset_counts(documents, n, window_size)
    return _materialize(
        counts, n, distance_weighting=distance_weighting, symmetric=symmetric
    )


def _offset_counts(
    documents: Iterable[Sequence[int] | np.ndarray], n: int, window_size: int
) -> list[sp.csr_matrix]:
    """Exact directional pair counts per window offset.

    ``counts[d - 1][i, j]`` is the number of times word ``j`` follows word
    ``i`` at distance ``d``, as an int64 CSR matrix.  Integer counts are
    order-independent (unlike float accumulation), which is what makes the
    incremental :class:`CooccurrenceAccumulator` bit-identical to a
    from-scratch build: however the counts were accumulated, the weighted
    float materialisation in :func:`_materialize` runs the same operations
    in the same order.
    """
    rows: list[list[np.ndarray]] = [[] for _ in range(window_size)]
    cols: list[list[np.ndarray]] = [[] for _ in range(window_size)]
    for doc in documents:
        ids = np.asarray(doc, dtype=np.int64)
        ids = ids[(ids >= 0) & (ids < n)]
        length = len(ids)
        if length < 2:
            continue
        for offset in range(1, min(window_size, length - 1) + 1):
            rows[offset - 1].append(ids[:-offset])
            cols[offset - 1].append(ids[offset:])
    counts: list[sp.csr_matrix] = []
    for offset in range(window_size):
        if not rows[offset]:
            counts.append(sp.csr_matrix((n, n), dtype=np.int64))
            continue
        row_idx = np.concatenate(rows[offset])
        col_idx = np.concatenate(cols[offset])
        data = np.ones(len(row_idx), dtype=np.int64)
        mat = sp.coo_matrix((data, (row_idx, col_idx)), shape=(n, n), dtype=np.int64)
        counts.append(mat.tocsr())
    return counts


def _materialize(
    counts: Sequence[sp.csr_matrix],
    n: int,
    *,
    distance_weighting: bool,
    symmetric: bool,
) -> sp.csr_matrix:
    """Weighted float64 co-occurrence matrix from per-offset integer counts.

    The only float operations are ``count * (1/d)`` and the sum over offsets
    in ascending ``d`` order, so any two count sets that are numerically
    equal materialise to bit-identical matrices.
    """
    total = sp.csr_matrix((n, n), dtype=np.float64)
    for offset, mat in enumerate(counts, start=1):
        if mat.nnz == 0:
            continue
        directional = (mat + mat.T) if symmetric else mat
        weight = (1.0 / offset) if distance_weighting else 1.0
        total = total + directional.astype(np.float64) * weight
    total.sum_duplicates()
    return total


class CooccurrenceAccumulator:
    """Incrementally-updated sparse co-occurrence counts over a growing corpus.

    The monitor's ingestion path feeds document batches in as they arrive;
    the accumulator keeps **exact integer pair counts per window offset**, so
    merging deltas is plain int64 addition and :meth:`materialize` yields a
    matrix bit-identical to :func:`build_cooccurrence` over the concatenated
    corpus (pinned in ``tests/corpus/test_cooccurrence.py``).

    Vocabulary growth reorders word ids (:class:`Vocabulary` keeps frequency
    order); :meth:`remap` migrates the accumulated counts onto the new id
    space through an explicit old-id -> new-id table, which is exact for
    integer counts.

    Parameters
    ----------
    vocab_size:
        Current vocabulary size (rows/cols of the accumulated matrix).
    window_size, distance_weighting, symmetric:
        As in :func:`build_cooccurrence`; fixed for the accumulator's life
        so every materialisation is comparable.
    """

    def __init__(
        self,
        vocab_size: int,
        *,
        window_size: int = 8,
        distance_weighting: bool = True,
        symmetric: bool = True,
    ) -> None:
        if vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.window_size = int(window_size)
        self.distance_weighting = bool(distance_weighting)
        self.symmetric = bool(symmetric)
        self._n = int(vocab_size)
        self._counts: list[sp.csr_matrix] = [
            sp.csr_matrix((self._n, self._n), dtype=np.int64)
            for _ in range(self.window_size)
        ]
        #: Documents and tokens accumulated so far (observability).
        self.documents_added = 0
        self.tokens_added = 0

    @property
    def vocab_size(self) -> int:
        return self._n

    @property
    def nnz(self) -> int:
        """Stored directional pair entries across all offsets."""
        return int(sum(mat.nnz for mat in self._counts))

    def add(self, documents: Iterable[Sequence[int] | np.ndarray]) -> int:
        """Merge a batch of id-encoded documents into the counts.

        Returns the number of documents merged.  Ids outside
        ``[0, vocab_size)`` are skipped, matching :func:`build_cooccurrence`.
        """
        batch = [np.asarray(doc, dtype=np.int64) for doc in documents]
        delta = _offset_counts(batch, self._n, self.window_size)
        self._counts = [have + new for have, new in zip(self._counts, delta)]
        self.documents_added += len(batch)
        self.tokens_added += int(sum(len(doc) for doc in batch))
        return len(batch)

    def remap(self, old_to_new: Sequence[int] | np.ndarray, new_size: int) -> None:
        """Migrate counts onto a grown (re-ordered) vocabulary id space.

        ``old_to_new[i]`` is the new id of the word that had id ``i``; every
        old id must map somewhere (vocabulary growth never drops words).
        """
        table = np.asarray(old_to_new, dtype=np.int64)
        if table.shape != (self._n,):
            raise ValueError(
                f"old_to_new must have length {self._n}, got {table.shape}"
            )
        if new_size < self._n:
            raise ValueError("new_size must not shrink the accumulator")
        if (table < 0).any() or (table >= new_size).any():
            raise ValueError("old_to_new entries must be valid new ids")
        if len(np.unique(table)) != len(table):
            raise ValueError("old_to_new must be injective")
        remapped: list[sp.csr_matrix] = []
        for mat in self._counts:
            coo = mat.tocoo()
            remapped.append(
                sp.coo_matrix(
                    (coo.data, (table[coo.row], table[coo.col])),
                    shape=(new_size, new_size),
                    dtype=np.int64,
                ).tocsr()
            )
        self._counts = remapped
        self._n = int(new_size)

    def materialize(self) -> sp.csr_matrix:
        """The weighted float64 co-occurrence matrix of everything added."""
        return _materialize(
            self._counts, self._n,
            distance_weighting=self.distance_weighting, symmetric=self.symmetric,
        )


def ppmi_matrix(counts: sp.spmatrix | np.ndarray, *, shift: float = 0.0) -> sp.csr_matrix:
    """Positive pointwise mutual information of a co-occurrence matrix.

    ``PPMI[i, j] = max(0, log(P(i, j) / (P(i) P(j))) - shift)`` computed only
    on the non-zero entries of ``counts`` (zero co-occurrences stay zero, which
    is what makes matrix *completion* rather than factorization meaningful).

    Parameters
    ----------
    counts:
        Sparse or dense non-negative co-occurrence counts.
    shift:
        Optional shift (``log k`` for the shifted-PPMI variant).
    """
    mat = sp.coo_matrix(counts, dtype=np.float64)
    if (mat.data < 0).any():
        raise ValueError("co-occurrence counts must be non-negative")
    total = mat.data.sum()
    if total <= 0:
        return sp.csr_matrix(mat.shape, dtype=np.float64)

    csr = mat.tocsr()
    row_sums = np.asarray(csr.sum(axis=1)).ravel()
    col_sums = np.asarray(csr.sum(axis=0)).ravel()

    coo = csr.tocoo()
    with np.errstate(divide="ignore"):
        pmi = np.log(coo.data * total) - np.log(row_sums[coo.row] * col_sums[coo.col])
    pmi -= shift
    positive = pmi > 0
    result = sp.coo_matrix(
        (pmi[positive], (coo.row[positive], coo.col[positive])),
        shape=csr.shape,
        dtype=np.float64,
    )
    return result.tocsr()
