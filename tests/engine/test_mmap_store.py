"""Memory-mapped disk-tier reads: warm reruns decode zero private copies.

The acceptance invariant of the mmap tier: a second process (modelled by a
fresh store over the same root) reading an uncompressed npz pair in mmap mode
serves every array as a read-only memory map of the disk file -- the
``copied_reads`` counter stays at zero and ``mapped_bytes`` accounts the
arrays -- while copy mode and legacy compressed payloads keep working through
the private-copy decode path.
"""

import numpy as np
import pytest

from repro.engine.store import ArtifactStore

KEY = "a1b2c3d4e5f60718293a4b5c"


def _pair_arrays() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    return {
        "xa": rng.normal(size=(64, 8)).astype(np.float32),
        "xb": rng.normal(size=(64, 8)).astype(np.float32),
        "meta": np.array([1.0, 2.0]),
    }


def _memmap_backed(array: np.ndarray) -> bool:
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


class TestMmapStore:
    def test_warm_mapped_read_makes_zero_copies(self, tmp_path):
        arrays = _pair_arrays()
        ArtifactStore(tmp_path, mmap=True).put_arrays("pair", KEY, arrays)
        warm = ArtifactStore(tmp_path, mmap=True)
        out = warm.get_arrays("pair", KEY)
        io = warm.io_counters()
        assert io["copied_reads"] == 0
        assert io["mapped_reads"] == 1
        assert io["mapped_bytes"] >= sum(a.nbytes for a in arrays.values())
        for name, expected in arrays.items():
            assert np.array_equal(out[name], expected), name
            assert _memmap_backed(out[name]), name

    def test_mapped_arrays_are_read_only(self, tmp_path):
        ArtifactStore(tmp_path, mmap=True).put_arrays("pair", KEY, _pair_arrays())
        out = ArtifactStore(tmp_path, mmap=True).get_arrays("pair", KEY)
        with pytest.raises((ValueError, OSError)):
            out["xa"][0, 0] = 1.0

    def test_copy_mode_counts_private_copies(self, tmp_path):
        arrays = _pair_arrays()
        ArtifactStore(tmp_path, mmap=False).put_arrays("pair", KEY, arrays)
        cold = ArtifactStore(tmp_path, mmap=False)
        out = cold.get_arrays("pair", KEY)
        io = cold.io_counters()
        assert io["mapped_reads"] == 0
        assert io["copied_reads"] == 1
        assert io["copied_bytes"] > 0
        for name, expected in arrays.items():
            assert np.array_equal(out[name], expected), name
            assert not _memmap_backed(out[name]), name

    def test_legacy_compressed_payload_decodes_the_copying_way(self, tmp_path):
        # A payload written before mmap mode (compressed) must keep working
        # under an mmap-enabled reader -- just through the copy path.
        arrays = _pair_arrays()
        ArtifactStore(tmp_path, mmap=False).put_arrays("pair", KEY, arrays)
        warm = ArtifactStore(tmp_path, mmap=True)
        out = warm.get_arrays("pair", KEY)
        io = warm.io_counters()
        assert io["copied_reads"] == 1
        for name, expected in arrays.items():
            assert np.array_equal(out[name], expected), name

    def test_memoised_rereads_stay_zero_copy(self, tmp_path):
        ArtifactStore(tmp_path, mmap=True).put_arrays("pair", KEY, _pair_arrays())
        warm = ArtifactStore(tmp_path, mmap=True)
        warm.get_arrays("pair", KEY)
        warm.get_arrays("pair", KEY)
        io = warm.io_counters()
        assert io["copied_reads"] == 0
        assert io["mapped_reads"] == 1  # second read is the memory memo
