"""Random-number-generator handling.

The paper's experiments train every artifact (embedding, downstream model,
knowledge-graph embedding) under a small number of explicit seeds and compare
artifacts trained with the *same* seed against each other.  Everything in this
repository therefore threads a :class:`numpy.random.Generator` explicitly; the
helpers here normalise the many ways a caller may specify randomness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_random_state", "spawn_seeds", "RngMixin"]


def check_random_state(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` seed, or an existing
        generator (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def spawn_seeds(seed: int | None | np.random.Generator, n: int) -> list[int]:
    """Derive ``n`` independent integer seeds from ``seed``.

    Used to give each member of a sweep (e.g. each dimension in a
    dimension-precision grid) its own reproducible stream.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = check_random_state(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]


class RngMixin:
    """Mixin giving a class a lazily-constructed ``self.rng`` generator.

    Classes set ``self.seed`` in ``__init__``; the generator is constructed on
    first use so that pickling / dataclass-style construction stays cheap.
    """

    seed: int | None | np.random.Generator = None

    @property
    def rng(self) -> np.random.Generator:
        rng = getattr(self, "_rng", None)
        if rng is None:
            rng = check_random_state(self.seed)
            self._rng = rng
        return rng

    def reseed(self, seed: int | None | np.random.Generator) -> None:
        """Replace the generator (used when re-running with a new seed)."""
        self.seed = seed
        self._rng = check_random_state(seed)
