"""The eigenspace instability measure (Section 4, the paper's core contribution).

For embeddings ``X = U S V^T`` and ``X~ = U~ S~ V~^T`` and a positive
semidefinite matrix ``Sigma``, the eigenspace instability (EI) measure is

    EI_Sigma(X, X~) = tr((U U^T + U~ U~^T - 2 U~ U~^T U U^T) Sigma) / tr(Sigma).

Proposition 1 shows that with ``Sigma = E[y y^T]`` this equals the expected
normalised disagreement between the linear-regression models trained on ``X``
and ``X~`` with random label vector ``y``.  In practice the paper instantiates
``Sigma = (E E^T)^alpha + (E~ E~^T)^alpha`` where ``E`` and ``E~`` are
high-dimensional full-precision "anchor" embeddings and ``alpha`` (default 3)
controls how much the high-eigenvalue directions dominate.

Two implementations are provided:

* :func:`eigenspace_instability` -- the efficient ``O(n d^2)`` formulation of
  Appendix B.1 that never materialises an ``n x n`` Gram matrix;
* :func:`eigenspace_instability_exact` -- the direct definition (builds
  ``U U^T``), used in tests to validate the efficient path and in the
  Proposition 1 Monte-Carlo check.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import Embedding
from repro.measures.base import DEFAULT_TOP_K, MEASURES, EmbeddingDistanceMeasure, MeasureResult
from repro.utils.validation import check_array, check_embedding_pair

__all__ = [
    "EigenspaceInstability",
    "eigenspace_instability",
    "eigenspace_instability_exact",
    "sigma_from_anchors",
]


def _left_singular_vectors(X: np.ndarray) -> np.ndarray:
    """Left singular vectors of ``X`` restricted to its numerical rank."""
    U, S, _ = np.linalg.svd(X, full_matrices=False)
    if S.size:
        tol = S.max() * max(X.shape) * np.finfo(np.float64).eps
        rank = int(np.sum(S > tol))
        U = U[:, : max(rank, 1)]
    return U


def sigma_from_anchors(E: np.ndarray, E_tilde: np.ndarray, alpha: float = 3.0) -> np.ndarray:
    """Materialise ``Sigma = (E E^T)^alpha + (E~ E~^T)^alpha`` (test-scale only).

    Exponentiation is in the spectral sense: ``(E E^T)^alpha = P R^{2 alpha} P^T``
    for ``E = P R W^T``.  Only used by the exact/test path -- the efficient path
    never forms this ``n x n`` matrix.
    """
    def gram_power(M: np.ndarray) -> np.ndarray:
        P, R, _ = np.linalg.svd(M, full_matrices=False)
        return (P * (R ** (2.0 * alpha))) @ P.T

    E = check_array(E, name="E", ndim=2)
    E_tilde = check_array(E_tilde, name="E_tilde", ndim=2)
    if E.shape[0] != E_tilde.shape[0]:
        raise ValueError("anchor embeddings must share a vocabulary")
    return gram_power(E) + gram_power(E_tilde)


def eigenspace_instability_exact(
    X: np.ndarray, X_tilde: np.ndarray, sigma: np.ndarray
) -> float:
    """Direct evaluation of Definition 2 given an explicit ``Sigma``."""
    X, X_tilde = check_embedding_pair(X, X_tilde)
    sigma = check_array(sigma, name="sigma", ndim=2)
    n = X.shape[0]
    if sigma.shape != (n, n):
        raise ValueError(f"sigma must be ({n}, {n}), got {sigma.shape}")
    U = _left_singular_vectors(X)
    U_t = _left_singular_vectors(X_tilde)
    P_u = U @ U.T
    P_ut = U_t @ U_t.T
    numerator = np.trace((P_u + P_ut - 2.0 * P_ut @ P_u) @ sigma)
    denominator = np.trace(sigma)
    if denominator <= 0:
        raise ValueError("sigma must have positive trace")
    return float(numerator / denominator)


def eigenspace_instability(
    X: np.ndarray,
    X_tilde: np.ndarray,
    E: np.ndarray,
    E_tilde: np.ndarray,
    *,
    alpha: float = 3.0,
) -> float:
    """Efficient eigenspace instability with ``Sigma = (EE^T)^a + (E~E~^T)^a``.

    Implements the trace expansion of Appendix B.1 in ``O(n d^2)`` time and
    ``O(d^2)`` extra memory, where all four matrices are "tall and thin".

    Parameters
    ----------
    X, X_tilde:
        The embedding pair being scored (row-aligned over the same words).
    E, E_tilde:
        The anchor embeddings defining ``Sigma`` (the paper uses the
        highest-dimensional full-precision Wiki'17/Wiki'18 embeddings).
    alpha:
        Eigenvalue weighting exponent (paper default: 3).
    """
    X, X_tilde = check_embedding_pair(X, X_tilde)
    E = check_array(E, name="E", ndim=2)
    E_tilde = check_array(E_tilde, name="E_tilde", ndim=2)
    n = X.shape[0]
    for name, M in (("E", E), ("E_tilde", E_tilde)):
        if M.shape[0] != n:
            raise ValueError(f"{name} must have {n} rows, got {M.shape[0]}")

    U = _left_singular_vectors(X)
    U_t = _left_singular_vectors(X_tilde)

    def anchor_factors(M: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        P, R, _ = np.linalg.svd(M, full_matrices=False)
        return P, R**alpha

    P, Ra = anchor_factors(E)            # Sigma term 1: P diag(Ra^2) P^T
    P_t, Ra_t = anchor_factors(E_tilde)  # Sigma term 2

    UtU = U_t.T @ U                      # (d~, d)

    def term(Panchor: np.ndarray, Ralpha: np.ndarray) -> float:
        # tr(R^a P^T (UU^T + U~U~^T - 2 U~U~^T U U^T) P R^a) expanded as in B.1.
        A = U.T @ Panchor                # (d, dE)
        B = U_t.T @ Panchor              # (d~, dE)
        t1 = float(np.sum((A * Ralpha[np.newaxis, :]) ** 2))
        t2 = float(np.sum((B * Ralpha[np.newaxis, :]) ** 2))
        M = UtU @ (A * Ralpha[np.newaxis, :])     # (d~, dE)
        t3 = float(np.sum((B * Ralpha[np.newaxis, :]) * M))
        return t1 + t2 - 2.0 * t3

    numerator = term(P, Ra) + term(P_t, Ra_t)
    denominator = float(np.sum(Ra**2) + np.sum(Ra_t**2))
    if denominator <= 0:
        raise ValueError("anchor embeddings produce a zero-trace Sigma")
    # Numerical round-off can push the value a hair outside [0, ~2]; clip at 0.
    return float(max(numerator / denominator, 0.0))


@MEASURES.register("eis")
class EigenspaceInstability(EmbeddingDistanceMeasure):
    """Eigenspace instability measure with anchor-defined ``Sigma``.

    Parameters
    ----------
    anchor_a, anchor_b:
        Anchor embeddings ``E`` and ``E~`` (either :class:`Embedding` objects
        or raw matrices).  In the paper these are the 800-dimensional
        full-precision Wiki'17/Wiki'18 embeddings of the same algorithm.
    alpha:
        Eigenvalue weighting exponent.
    """

    name = "eis"

    def __init__(
        self,
        anchor_a: Embedding | np.ndarray,
        anchor_b: Embedding | np.ndarray,
        *,
        alpha: float = 3.0,
    ) -> None:
        self.anchor_a = anchor_a
        self.anchor_b = anchor_b
        self.alpha = float(alpha)

    def _anchor_matrices(self, n_words: int) -> tuple[np.ndarray, np.ndarray]:
        def resolve(anchor) -> np.ndarray:
            mat = anchor.vectors if isinstance(anchor, Embedding) else np.asarray(anchor)
            if mat.shape[0] < n_words:
                raise ValueError(
                    f"anchor embedding has {mat.shape[0]} rows but {n_words} are required"
                )
            return mat[:n_words]

        return resolve(self.anchor_a), resolve(self.anchor_b)

    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        X = np.asarray(X)
        E, E_t = self._anchor_matrices(X.shape[0])
        return eigenspace_instability(X, X_tilde, E, E_t, alpha=self.alpha)

    def compute_embeddings(
        self, a: Embedding, b: Embedding, *, top_k: int | None = DEFAULT_TOP_K
    ) -> MeasureResult:
        """Evaluate over the common vocabulary, slicing the anchors to match.

        When the anchors are :class:`Embedding` objects their rows are matched
        by word; raw-matrix anchors are assumed to be row-aligned with ``a``.
        """
        ra, rb = Embedding.aligned_pair(a, b, top_k=top_k)
        words = ra.vocab.words
        anchors = []
        for anchor in (self.anchor_a, self.anchor_b):
            if isinstance(anchor, Embedding):
                ids = [anchor.vocab.word_to_id(w) for w in words]
                if any(i is None for i in ids):
                    raise ValueError("anchor embedding is missing words from the pair")
                anchors.append(anchor.vectors[np.asarray(ids, dtype=np.int64)])
            else:
                anchors.append(np.asarray(anchor)[: len(words)])
        value = eigenspace_instability(
            ra.vectors, rb.vectors, anchors[0], anchors[1], alpha=self.alpha
        )
        return MeasureResult(measure=self.name, value=float(value), n_words=ra.n_words)
