"""Chaos tests: the grid survives replica loss with bit-identical results.

Two layers of violence:

* **in-process** -- a :class:`~repro.engine.faults.FaultyBackend` partitions
  one of two store replicas *mid* ``GridEngine.run_iter``; the run must
  finish bit-identical to a fault-free serial run, the surviving replica
  must hold every artifact (zero loss), and read-repair must restore the
  recovered replica to full coverage;
* **live HTTP** -- a real coordinator plus storage-peer ``repro-serve``
  replicas and in-process cluster workers mounted on the replica fabric;
  one storage peer dies and the fleet keeps serving warm, then an empty
  replacement peer is healed back to full coverage by read-repair.
"""

import asyncio
import http.client
import json
import threading
import warnings

import pytest

from repro.cluster import ClusterWorker
from repro.engine import GridEngine
from repro.engine.backends import DiskBackend, ReplicatedBackend
from repro.engine.faults import FaultyBackend
from repro.engine.store import ArtifactStore
from repro.serving import ServiceConfig, StabilityService
from repro.serving.api import StabilityAPIServer, quick_serve_config


def reference_run():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return GridEngine(quick_serve_config()).run(with_measures=True)


def replicated_engine(replicas):
    store = ArtifactStore(backends=[ReplicatedBackend(replicas)])
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return GridEngine(quick_serve_config(), store=store)


class DiesMidRun(FaultyBackend):
    """A replica that partitions itself after its Nth write.

    The serial scheduler commits every artifact before streaming records, so
    a record-triggered kill would land after the write stream ended; dying
    on a write count guarantees the loss happens *mid-run*, with artifacts
    still in flight.
    """

    def __init__(self, inner, *, die_after_puts: int) -> None:
        super().__init__(inner)
        self.die_after_puts = die_after_puts

    def _put(self, kind, name, payload) -> None:
        super()._put(kind, name, payload)
        if self.stats.puts >= self.die_after_puts and not self.partitioned:
            self.partition()


class TestGridSurvivesReplicaLoss:
    def test_partition_mid_run_bit_identical_zero_loss_then_repair(self, tmp_path):
        dir_a, dir_b = tmp_path / "replica-a", tmp_path / "replica-b"
        faulty_a = DiesMidRun(DiskBackend(dir_a), die_after_puts=5)
        engine = replicated_engine([faulty_a, DiskBackend(dir_b)])
        replicated = engine.store.tiers[0]

        # Stream the grid; replica A dies after its fifth write, so the rest
        # of the run writes into a degraded fabric.
        records = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            for record in engine.run_iter(with_measures=True):
                records.append(record)

        # Bit-identical to a fault-free serial run; nothing raised.
        assert records == reference_run()
        assert faulty_a.partitioned  # the kill actually happened mid-run
        # Writes aimed at the dead replica were hinted, not lost.
        assert replicated.hints_queued > 0

        # Zero artifact loss: the SURVIVING replica alone serves a warm rerun
        # without a single retraining.
        survivor = replicated_engine([DiskBackend(dir_b)])
        assert survivor.run(with_measures=True) == records
        assert survivor.pipeline.embedding_train_count == 0
        assert survivor.pipeline.downstream_train_count == 0

        # Recovery: replica A comes back (empty of everything written while
        # partitioned).  A warm reader over [A, B] read-repairs A on every
        # miss and still trains nothing.
        healed = replicated_engine([DiskBackend(dir_a), DiskBackend(dir_b)])
        healed_tier = healed.store.tiers[0]
        assert healed.run(with_measures=True) == records
        assert healed.pipeline.embedding_train_count == 0
        assert healed_tier.repairs > 0

        # Read-repair restored A to full coverage: A alone now serves the
        # whole grid warm.
        solo = replicated_engine([DiskBackend(dir_a)])
        assert solo.run(with_measures=True) == records
        assert solo.pipeline.embedding_train_count == 0

    def test_flaky_replica_never_poisons_results(self, tmp_path):
        # Probabilistic chaos: one replica fails ~30% of operations and
        # corrupts ~30% of the payloads it does return.  Validation turns
        # corrupt copies into repairable misses; results stay bit-identical.
        import random

        flaky = FaultyBackend(
            DiskBackend(tmp_path / "flaky"),
            error_rate=0.3,
            corrupt_rate=0.3,
            rng=random.Random(1234),
        )
        engine = replicated_engine([flaky, DiskBackend(tmp_path / "stable")])
        assert engine.run(with_measures=True) == reference_run()

        warm = replicated_engine([DiskBackend(tmp_path / "stable")])
        assert warm.run(with_measures=True) == reference_run()
        assert warm.pipeline.embedding_train_count == 0


# -- live-HTTP fleet chaos ------------------------------------------------------


def start_server(service: StabilityService):
    """Run one StabilityAPIServer on its own event-loop thread."""
    api = StabilityAPIServer(service, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run_server() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    return api, loop, thread


def stop_server(api, loop, thread) -> None:
    asyncio.run_coroutine_threadsafe(api.stop(), loop).result(timeout=10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


def stream_grid(port: int) -> list[dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    conn.request("GET", "/grid?distributed=true")
    response = conn.getresponse()
    assert response.status == 200
    rows = [json.loads(line) for line in response.read().decode().strip().splitlines()]
    conn.close()
    return rows


def get_json(port: int, path: str) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    conn.request("GET", path)
    payload = json.loads(conn.getresponse().read())
    conn.close()
    return payload


def run_grid(api_port: int, url: str, replicas: list[str], worker_id: str):
    """Stream one distributed grid executed by a fresh (cold-memory) worker.

    A fresh worker per phase keeps the phases honest: nothing can be served
    from a previous worker's warm pipeline cache, only from the replica
    fabric under test.
    """
    worker = ClusterWorker(
        url, worker_id=worker_id, store_replicas=replicas, poll_interval=0.05
    )
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    try:
        rows = stream_grid(api_port)
    finally:
        worker.stop()
        thread.join(timeout=60)
    return rows, worker


@pytest.fixture(scope="module")
def fabric(tmp_path_factory):
    """A coordinator + two storage-peer servers, all live HTTP."""
    root = tmp_path_factory.mktemp("fabric")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        replica_a = StabilityService(
            quick_serve_config(), store=ArtifactStore(root / "replica-a")
        )
        replica_b = StabilityService(
            quick_serve_config(), store=ArtifactStore(root / "replica-b")
        )
    api_a, loop_a, thread_a = start_server(replica_a)
    api_b, loop_b, thread_b = start_server(replica_b)
    url_a = f"http://127.0.0.1:{api_a.port}"
    url_b = f"http://127.0.0.1:{api_b.port}"

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        coordinator = StabilityService(
            quick_serve_config(),
            store=ArtifactStore(replicas=[url_a, url_b]),
            config=ServiceConfig(lease_ttl=30),
        )
    api_c, loop_c, thread_c = start_server(coordinator)
    url_c = f"http://127.0.0.1:{api_c.port}"

    state = {
        "api": api_c, "url": url_c,
        "url_a": url_a, "url_b": url_b,
        "kill_b": lambda: stop_server(api_b, loop_b, thread_b),
        "root": root,
    }
    try:
        yield state
    finally:
        stop_server(api_c, loop_c, thread_c)
        stop_server(api_a, loop_a, thread_a)
        if thread_b.is_alive():
            stop_server(api_b, loop_b, thread_b)
        coordinator.close()
        replica_a.close()
        replica_b.close()


class TestClusterSurvivesStoragePeerDeath:
    def test_peer_death_recovery_and_read_repair(self, fabric):
        api, url = fabric["api"], fabric["url"]
        replicas = [fabric["url_a"], fabric["url_b"]]
        expected = [record.to_row() for record in reference_run()]

        # Phase 1: cold distributed run over the healthy fabric.
        rows, w1 = run_grid(api.port, url, replicas, "w1")
        assert rows == expected
        assert w1.stats()["embedding_train_count"] == 2  # one per dim, cold
        healthz = get_json(api.port, "/healthz")
        assert healthz["degraded"] is False
        assert {peer["url"] for peer in healthz["store_peers"]} == set(replicas)

        # Phase 2: replica B dies.  A fresh (cold-memory) worker mounted on
        # [A, B] still serves a warm rerun: every artifact comes from the
        # surviving replica, nothing retrains, records stay bit-identical.
        fabric["kill_b"]()
        warm_rows, w2 = run_grid(api.port, url, replicas, "w2")
        assert warm_rows == expected
        assert w2.stats()["embedding_train_count"] == 0
        assert w2.stats()["downstream_train_count"] == 0
        metrics = get_json(api.port, "/metrics")
        reported = metrics["cluster"]["workers"]["w2"]["reported"]
        assert reported["embedding_train_count"] == 0
        assert metrics["cluster"]["counters"]["duplicate_results"] == 0

        # The coordinator's own checkpoint writes hit the dead peer, so its
        # breaker opened and /healthz now advertises the degradation.
        healthz = get_json(api.port, "/healthz")
        assert healthz["degraded"] is True
        assert any(
            peer["url"] == fabric["url_b"] and peer["breaker_open"]
            for peer in healthz["store_peers"]
        )

        # Phase 3: an EMPTY replacement peer joins (listed first, so every
        # read probes it, misses, and read-repairs it from A).  The rerun
        # still trains nothing and the repair counters go nonzero.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            replacement = StabilityService(
                quick_serve_config(),
                store=ArtifactStore(fabric["root"] / "replica-c"),
            )
        api_r, loop_r, thread_r = start_server(replacement)
        url_r = f"http://127.0.0.1:{api_r.port}"
        try:
            repaired_rows, w3 = run_grid(
                api.port, url, [url_r, fabric["url_a"]], "w3"
            )
            assert repaired_rows == expected
            stats = w3.stats()
            assert stats["embedding_train_count"] == 0
            assert stats["store_repairs"] > 0
            # The coordinator's /metrics surfaces the repair activity too.
            metrics = get_json(api.port, "/metrics")
            assert metrics["cluster"]["workers"]["w3"]["reported"]["store_repairs"] > 0

            # Phase 4: the replacement alone now holds full coverage -- a
            # worker mounted ONLY on it serves the whole grid warm.
            solo_rows, w4 = run_grid(api.port, url, [url_r], "w4")
            assert solo_rows == expected
            assert w4.stats()["embedding_train_count"] == 0
        finally:
            stop_server(api_r, loop_r, thread_r)
            replacement.close()
