"""Pairwise dimension-precision selection (Table 2 and Table 10 of the paper).

Setting: form every grouping of two embedding pairs with *different*
dimension-precision combinations (same algorithm, same seed).  A selection
criterion picks the combination it believes is more stable; the selection
*error rate* is the fraction of groupings where the pick has strictly higher
true downstream disagreement.  The worst-case variant reports the largest
increase in disagreement a wrong pick incurs (Table 10).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.instability.grid import GridRecord
from repro.selection.criteria import SelectionCriterion

__all__ = ["PairwiseSelectionResult", "pairwise_selection_error"]


@dataclass(frozen=True)
class PairwiseSelectionResult:
    """Error statistics of one criterion on the pairwise selection task."""

    criterion: str
    algorithm: str
    task: str
    error_rate: float
    worst_case_error: float
    n_groupings: int


def _group_records(records: list[GridRecord]) -> dict[tuple[str, str, int], list[GridRecord]]:
    """Group by (algorithm, task, seed); selection compares within a group."""
    grouped: dict[tuple[str, str, int], list[GridRecord]] = {}
    for rec in records:
        grouped.setdefault((rec.algorithm, rec.task, rec.seed), []).append(rec)
    return grouped


def pairwise_selection_error(
    records: list[GridRecord],
    criterion: SelectionCriterion,
    *,
    tolerance: float = 1e-12,
) -> list[PairwiseSelectionResult]:
    """Evaluate a criterion on the two-candidate selection task.

    Returns one result per (algorithm, task), with the error rate and the
    worst-case disagreement increase averaged / maximised over seeds.

    Parameters
    ----------
    records:
        Grid records with measures populated (``with_measures=True``).
    criterion:
        The selection criterion being evaluated.
    tolerance:
        Ties in true disagreement within this tolerance are never counted as
        errors (either pick is equally good).
    """
    grouped = _group_records(records)

    # Accumulate per (algorithm, task) over seeds.
    stats: dict[tuple[str, str], dict[str, list[float]]] = {}
    for (algorithm, task, _seed), group in grouped.items():
        errors: list[float] = []
        regrets: list[float] = []
        for rec_a, rec_b in itertools.combinations(group, 2):
            if (rec_a.dim, rec_a.precision) == (rec_b.dim, rec_b.precision):
                continue
            chosen = criterion.select([rec_a, rec_b])
            other = rec_b if chosen is rec_a else rec_a
            regret = chosen.disagreement - other.disagreement
            is_error = regret > tolerance
            errors.append(1.0 if is_error else 0.0)
            regrets.append(max(regret, 0.0))
        if not errors:
            continue
        entry = stats.setdefault((algorithm, task), {"errors": [], "regrets": [], "count": []})
        entry["errors"].append(float(np.mean(errors)))
        entry["regrets"].append(float(np.max(regrets)))
        entry["count"].append(len(errors))

    results = []
    for (algorithm, task), entry in sorted(stats.items()):
        results.append(
            PairwiseSelectionResult(
                criterion=criterion.name,
                algorithm=algorithm,
                task=task,
                error_rate=float(np.mean(entry["errors"])),
                worst_case_error=float(np.max(entry["regrets"])),
                n_groupings=int(np.sum(entry["count"])),
            )
        )
    return results
