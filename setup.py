"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` uses PEP 660 editable wheels, which require ``wheel``;
fully offline environments that lack it can fall back to
``python setup.py develop`` (or add ``src/`` to ``PYTHONPATH``).  The
``repro-serve`` console script boots the serving layer and ``repro-worker``
a cluster worker; without an install they are equivalently
``python -m repro.serving.api`` and ``python -m repro.cluster.worker``.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serving.api:main",
            "repro-worker=repro.cluster.worker:main",
        ],
    },
)
