"""End-to-end instability pipeline.

Reproduces the paper's experimental pipeline (Appendix A.5):

1. generate the Corpus'17 / Corpus'18 pair;
2. train an embedding pair per (algorithm, dimension, seed), aligning the
   drifted embedding to the base one with orthogonal Procrustes;
3. uniformly quantize the pair to a precision (sharing the clipping
   threshold);
4. train downstream models on each embedding with tied seeds and measure the
   prediction disagreement on the task's test split;
5. compute the embedding distance measures between the pair.

Everything is cached aggressively because the grid study reuses the same
full-precision embeddings across many precisions and tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.memory import bits_per_word
from repro.compression.uniform_quantization import FULL_PRECISION_BITS, compress_pair
from repro.corpus.synthetic import CorpusPair, SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.alignment import align_pair
from repro.embeddings.base import EMBEDDING_ALGORITHMS, Embedding
from repro.instability.downstream import classification_disagreement, tagging_disagreement
from repro.measures.eigenspace_instability import EigenspaceInstability
from repro.measures.eigenspace_overlap import EigenspaceOverlapDistance
from repro.measures.knn import KNNDistance
from repro.measures.pip_loss import PIPLoss
from repro.measures.semantic_displacement import SemanticDisplacement
from repro.models.bilstm_tagger import BiLSTMTagger
from repro.models.bow_classifier import BowClassifier
from repro.models.cnn_classifier import CNNClassifier
from repro.models.trainer import TrainingConfig
from repro.tasks.datasets import DatasetSplits, train_val_test_split
from repro.tasks.lexicons import build_task_lexicons
from repro.tasks.ner import NERTaskConfig, generate_ner_dataset
from repro.tasks.sentiment import SENTIMENT_TASKS, generate_sentiment_dataset
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["PipelineConfig", "InstabilityPipeline", "DownstreamResult"]

#: Task names understood by the pipeline; "conll" is the NER task.
SENTIMENT_TASK_NAMES = tuple(SENTIMENT_TASKS)
NER_TASK_NAME = "conll"


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the end-to-end instability pipeline.

    The defaults are scaled down from the paper (whose corpora have 4.5B
    tokens and dimensions up to 800) so that a full grid runs on a laptop in
    minutes; every knob the paper sweeps is still exposed.
    """

    # Corpus.
    corpus: SyntheticCorpusConfig = field(default_factory=lambda: SyntheticCorpusConfig(
        vocab_size=300, n_documents=300, doc_length_mean=80, seed=0,
    ))
    vocab_min_count: int = 2
    #: The paper computes measures over the top-10k words; kept as a knob.
    measure_top_k: int = 10_000

    # Embeddings.
    algorithms: tuple[str, ...] = ("cbow", "glove", "mc")
    dimensions: tuple[int, ...] = (8, 16, 32, 64)
    precisions: tuple[int, ...] = (1, 2, 4, 8, 32)
    seeds: tuple[int, ...] = (0, 1, 2)
    anchor_dim: int | None = None            # defaults to max(dimensions)
    align: bool = True
    share_clip_threshold: bool = True
    embedding_epochs: int = 10
    embedding_window: int = 5

    # Downstream tasks.
    tasks: tuple[str, ...] = ("sst2", "subj", NER_TASK_NAME)
    task_seed: int = 0
    val_fraction: float = 0.15
    test_fraction: float = 0.25
    ner_config: NERTaskConfig = field(default_factory=lambda: NERTaskConfig(
        n_sentences=260, sentence_length=14, entity_density=0.35,
    ))
    downstream_epochs: int = 15
    #: The paper trains its NER BiLSTM with plain SGD; at the scale of the
    #: synthetic substitute Adam converges reliably within the small epoch
    #: budget, so it is the default here (the optimizer remains configurable).
    ner_optimizer: str = "adam"
    ner_epochs: int = 12
    ner_hidden_dim: int = 16
    sentiment_learning_rate: float = 0.05
    ner_learning_rate: float = 0.02
    fine_tune_embeddings: bool = False

    # Measures.
    eis_alpha: float = 3.0
    knn_k: int = 5
    knn_num_queries: int = 300

    def __post_init__(self) -> None:
        for algo in self.algorithms:
            if algo not in EMBEDDING_ALGORITHMS:
                raise KeyError(
                    f"unknown embedding algorithm {algo!r}; known: {EMBEDDING_ALGORITHMS.names()}"
                )
        for task in self.tasks:
            if task not in SENTIMENT_TASK_NAMES and task != NER_TASK_NAME:
                raise KeyError(f"unknown task {task!r}")
        if not self.dimensions or not self.precisions or not self.seeds:
            raise ValueError("dimensions, precisions and seeds must be non-empty")

    @property
    def resolved_anchor_dim(self) -> int:
        return self.anchor_dim if self.anchor_dim is not None else max(self.dimensions)


@dataclass(frozen=True)
class DownstreamResult:
    """Result of training a downstream model pair on one embedding pair."""

    task: str
    disagreement: float
    accuracy_a: float
    accuracy_b: float

    @property
    def mean_accuracy(self) -> float:
        return 0.5 * (self.accuracy_a + self.accuracy_b)


class InstabilityPipeline:
    """Caches and orchestrates embeddings, compression, tasks and models."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        corpus_pair: CorpusPair | None = None,
        generator: SyntheticCorpusGenerator | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.generator = generator or SyntheticCorpusGenerator(self.config.corpus)
        self.corpus_pair = corpus_pair or self.generator.generate_pair(seed=self.config.corpus.seed)
        self.vocab: Vocabulary = self.corpus_pair.shared_vocabulary(
            min_count=self.config.vocab_min_count
        )
        self.lexicons = build_task_lexicons(self.generator, self.vocab)
        self._datasets: dict[str, DatasetSplits] = {}
        self._embedding_cache: dict[tuple[str, int, int], tuple[Embedding, Embedding]] = {}
        self._downstream_cache: dict[tuple, DownstreamResult] = {}
        logger.info(
            "pipeline ready: %d-word vocabulary, %d/%d tokens",
            len(self.vocab),
            self.corpus_pair.base.num_tokens,
            self.corpus_pair.drifted.num_tokens,
        )

    # -- datasets --------------------------------------------------------------

    def dataset(self, task: str) -> DatasetSplits:
        """Train/val/test splits of a downstream task (built lazily, cached)."""
        if task not in self._datasets:
            if task == NER_TASK_NAME:
                full = generate_ner_dataset(
                    self.config.ner_config, self.lexicons, seed=self.config.task_seed,
                    vocab=self.vocab,
                )
            else:
                full = generate_sentiment_dataset(
                    task, self.lexicons, seed=self.config.task_seed, vocab=self.vocab
                )
            self._datasets[task] = train_val_test_split(
                full,
                val_fraction=self.config.val_fraction,
                test_fraction=self.config.test_fraction,
                seed=self.config.task_seed,
            )
        return self._datasets[task]

    # -- embeddings -------------------------------------------------------------

    def _make_algorithm(self, name: str, dim: int, seed: int):
        cls = EMBEDDING_ALGORITHMS.get(name)
        kwargs = {
            "dim": dim,
            "seed": seed,
            "window_size": self.config.embedding_window,
        }
        if name != "svd":
            kwargs["epochs"] = self.config.embedding_epochs
        return cls(**kwargs)

    def embedding_pair(self, algorithm: str, dim: int, seed: int) -> tuple[Embedding, Embedding]:
        """Full-precision (base, drifted) embedding pair, Procrustes-aligned."""
        key = (algorithm, int(dim), int(seed))
        if key not in self._embedding_cache:
            model_a = self._make_algorithm(algorithm, dim, seed)
            model_b = self._make_algorithm(algorithm, dim, seed)
            emb_a = model_a.fit(self.corpus_pair.base, vocab=self.vocab)
            emb_b = model_b.fit(self.corpus_pair.drifted, vocab=self.vocab)
            if self.config.align:
                emb_b = align_pair(emb_a, emb_b)
            self._embedding_cache[key] = (emb_a, emb_b)
            logger.debug("trained %s pair dim=%d seed=%d", algorithm, dim, seed)
        return self._embedding_cache[key]

    def compressed_pair(
        self, algorithm: str, dim: int, precision: int, seed: int
    ) -> tuple[Embedding, Embedding]:
        """Embedding pair quantized to ``precision`` bits (threshold shared)."""
        emb_a, emb_b = self.embedding_pair(algorithm, dim, seed)
        if precision >= FULL_PRECISION_BITS:
            return emb_a, emb_b
        return compress_pair(
            emb_a, emb_b, precision, share_threshold=self.config.share_clip_threshold
        )

    def anchors(self, algorithm: str, seed: int) -> tuple[Embedding, Embedding]:
        """Anchor embeddings for the EIS measure: highest-dim, full precision."""
        return self.embedding_pair(algorithm, self.config.resolved_anchor_dim, seed)

    # -- measures ----------------------------------------------------------------

    def measure_suite(self, algorithm: str, seed: int) -> dict[str, object]:
        """The five embedding distance measures, with anchors resolved."""
        anchor_a, anchor_b = self.anchors(algorithm, seed)
        return {
            "eis": EigenspaceInstability(anchor_a, anchor_b, alpha=self.config.eis_alpha),
            "1-knn": KNNDistance(
                k=self.config.knn_k, num_queries=self.config.knn_num_queries, seed=0
            ),
            "semantic-displacement": SemanticDisplacement(),
            "pip": PIPLoss(),
            "1-eigenspace-overlap": EigenspaceOverlapDistance(),
        }

    def compute_measures(
        self, algorithm: str, dim: int, precision: int, seed: int,
        *, measures: tuple[str, ...] | None = None,
    ) -> dict[str, float]:
        """Evaluate embedding distance measures on a compressed pair."""
        emb_a, emb_b = self.compressed_pair(algorithm, dim, precision, seed)
        suite = self.measure_suite(algorithm, seed)
        top_k = self.config.measure_top_k
        out: dict[str, float] = {}
        for name, measure in suite.items():
            if measures is not None and name not in measures:
                continue
            out[name] = measure.compute_embeddings(emb_a, emb_b, top_k=top_k).value
        return out

    # -- downstream models ----------------------------------------------------------

    def _sentiment_config(self, seed: int, *, learning_rate: float | None = None) -> TrainingConfig:
        return TrainingConfig(
            learning_rate=learning_rate or self.config.sentiment_learning_rate,
            epochs=self.config.downstream_epochs,
            optimizer="adam",
            patience=4,
            fine_tune_embeddings=self.config.fine_tune_embeddings,
        ).with_seed(seed)

    def _ner_config(self, seed: int, *, learning_rate: float | None = None) -> TrainingConfig:
        return TrainingConfig(
            learning_rate=learning_rate or self.config.ner_learning_rate,
            epochs=self.config.ner_epochs,
            optimizer=self.config.ner_optimizer,
            patience=None,
            anneal_factor=0.5,
            fine_tune_embeddings=self.config.fine_tune_embeddings,
        ).with_seed(seed)

    def _train_classifier(
        self, embedding: Embedding, task: str, seed: int,
        *, model_type: str = "bow", learning_rate: float | None = None,
        init_seed: int | None = None, sampling_seed: int | None = None,
    ):
        splits = self.dataset(task)
        cfg = self._sentiment_config(seed, learning_rate=learning_rate)
        if init_seed is not None or sampling_seed is not None:
            from dataclasses import replace

            cfg = replace(
                cfg,
                init_seed=init_seed if init_seed is not None else cfg.init_seed,
                sampling_seed=sampling_seed if sampling_seed is not None else cfg.sampling_seed,
            )
        if model_type == "bow":
            model = BowClassifier(embedding, num_classes=2, config=cfg)
        elif model_type == "cnn":
            model = CNNClassifier(embedding, num_classes=2, config=cfg)
        else:
            raise ValueError(f"unknown classifier type {model_type!r}")
        model.fit(splits.train, splits.val)
        return model

    def _train_tagger(
        self, embedding: Embedding, seed: int,
        *, use_crf: bool = False, learning_rate: float | None = None,
        init_seed: int | None = None, sampling_seed: int | None = None,
    ) -> BiLSTMTagger:
        splits = self.dataset(NER_TASK_NAME)
        cfg = self._ner_config(seed, learning_rate=learning_rate)
        if init_seed is not None or sampling_seed is not None:
            from dataclasses import replace

            cfg = replace(
                cfg,
                init_seed=init_seed if init_seed is not None else cfg.init_seed,
                sampling_seed=sampling_seed if sampling_seed is not None else cfg.sampling_seed,
            )
        tagger = BiLSTMTagger(
            embedding,
            num_tags=splits.train.num_tags,
            hidden_dim=self.config.ner_hidden_dim,
            use_crf=use_crf,
            config=cfg,
        )
        tagger.fit(splits.train, splits.val)
        return tagger

    def downstream_result(
        self,
        task: str,
        emb_a: Embedding,
        emb_b: Embedding,
        seed: int,
        *,
        model_type: str = "bow",
        use_crf: bool = False,
        learning_rate: float | None = None,
        init_seed_b: int | None = None,
        sampling_seed_b: int | None = None,
    ) -> DownstreamResult:
        """Train the downstream model pair and measure prediction disagreement.

        ``init_seed_b`` / ``sampling_seed_b`` override the seeds of the second
        model only, reproducing the "relaxed seed constraint" study of
        Appendix E.3 / Figure 14a.
        """
        splits = self.dataset(task)
        if task == NER_TASK_NAME:
            tagger_a = self._train_tagger(emb_a, seed, use_crf=use_crf, learning_rate=learning_rate)
            tagger_b = self._train_tagger(
                emb_b, seed, use_crf=use_crf, learning_rate=learning_rate,
                init_seed=init_seed_b, sampling_seed=sampling_seed_b,
            )
            disagreement = tagging_disagreement(tagger_a, tagger_b, splits.test, entity_only=True)
            return DownstreamResult(
                task=task,
                disagreement=disagreement,
                accuracy_a=tagger_a.entity_f1(splits.test),
                accuracy_b=tagger_b.entity_f1(splits.test),
            )
        model_a = self._train_classifier(
            emb_a, task, seed, model_type=model_type, learning_rate=learning_rate
        )
        model_b = self._train_classifier(
            emb_b, task, seed, model_type=model_type, learning_rate=learning_rate,
            init_seed=init_seed_b, sampling_seed=sampling_seed_b,
        )
        disagreement = classification_disagreement(model_a, model_b, splits.test)
        return DownstreamResult(
            task=task,
            disagreement=disagreement,
            accuracy_a=model_a.accuracy(splits.test),
            accuracy_b=model_b.accuracy(splits.test),
        )

    def evaluate(
        self,
        task: str,
        algorithm: str,
        dim: int,
        precision: int,
        seed: int,
        *,
        model_type: str = "bow",
        use_crf: bool = False,
    ) -> DownstreamResult:
        """Cached end-to-end evaluation of one grid point."""
        key = (task, algorithm, int(dim), int(precision), int(seed), model_type, use_crf)
        if key not in self._downstream_cache:
            emb_a, emb_b = self.compressed_pair(algorithm, dim, precision, seed)
            self._downstream_cache[key] = self.downstream_result(
                task, emb_a, emb_b, seed, model_type=model_type, use_crf=use_crf
            )
        return self._downstream_cache[key]

    # -- bookkeeping ------------------------------------------------------------------

    @staticmethod
    def memory(dim: int, precision: int) -> int:
        return bits_per_word(dim, precision)
