"""Tests for Spearman correlation, linear-log fits, and reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import measure_correlations, spearman_correlation
from repro.analysis.linear_log import fit_linear_log, relative_reduction_range
from repro.analysis.reporting import format_table, records_to_csv, rows_to_csv
from repro.instability.grid import GridRecord


def make_record(task, algo, dim, precision, disagreement, measures=None, seed=0):
    return GridRecord(
        algorithm=algo, task=task, dim=dim, precision=precision, seed=seed,
        disagreement=disagreement, accuracy_a=0.8, accuracy_b=0.82, measures=measures or {},
    )


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman_correlation([1, 2, 3, 4], [5, 4, 3, 2]) == pytest.approx(-1.0)

    def test_nonlinear_monotone_still_one(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_correlation(x, np.exp(x)) == pytest.approx(1.0)

    def test_constant_input_returns_zero(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            spearman_correlation([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            spearman_correlation([1], [1])

    def test_measure_correlations_grouping(self):
        records = []
        for i, dis in enumerate([10.0, 8.0, 6.0, 4.0]):
            records.append(make_record("sst2", "mc", 8 * (i + 1), 32, dis,
                                       measures={"m": dis / 100, "anti": -dis}))
        corr = measure_correlations(records)
        assert corr[("sst2", "mc", "m")] == pytest.approx(1.0)
        assert corr[("sst2", "mc", "anti")] == pytest.approx(-1.0)

    def test_records_without_measures_are_skipped(self):
        records = [make_record("sst2", "mc", 8, 32, 5.0)]
        assert measure_correlations(records) == {}


class TestLinearLogFit:
    def _synthetic_records(self, slope=1.3, intercept=20.0):
        records = []
        for task in ("sst2", "conll"):
            offset = 0.0 if task == "sst2" else 5.0
            for dim in (8, 16, 32, 64):
                for precision in (1, 2, 4):
                    memory = dim * precision
                    dis = intercept + offset - slope * np.log2(memory)
                    records.append(make_record(task, "mc", dim, precision, dis))
        return records

    def test_recovers_known_slope_and_intercepts(self):
        records = self._synthetic_records(slope=1.3)
        fit = fit_linear_log(records, regressor="memory")
        assert fit.slope == pytest.approx(1.3, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
        assert fit.predict("sst2/mc", 64) == pytest.approx(20.0 - 1.3 * 6, rel=1e-6)

    def test_max_memory_filter(self):
        records = self._synthetic_records()
        fit_all = fit_linear_log(records)
        fit_low = fit_linear_log(records, max_memory=64)
        assert fit_low.n_observations < fit_all.n_observations

    def test_dim_and_precision_regressors(self):
        records = self._synthetic_records()
        for regressor in ("dim", "precision"):
            fit = fit_linear_log(records, regressor=regressor)
            assert fit.regressor == regressor
            assert fit.slope == pytest.approx(1.3, rel=1e-6)

    def test_invalid_regressor(self):
        with pytest.raises(ValueError):
            fit_linear_log(self._synthetic_records(), regressor="epochs")

    def test_too_few_records(self):
        with pytest.raises(ValueError):
            fit_linear_log([make_record("sst2", "mc", 8, 1, 5.0)])

    def test_unknown_group_in_predict(self):
        fit = fit_linear_log(self._synthetic_records())
        with pytest.raises(KeyError):
            fit.predict("unknown", 32)

    def test_relative_reduction_range(self):
        records = self._synthetic_records()
        fit = fit_linear_log(records)
        low, high = relative_reduction_range(fit, records)
        assert 0.0 <= low <= high <= 1.0


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "2.346" in text
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_format_table_custom_headers(self):
        text = format_table([{"a": 1, "b": 2}], headers=["b"])
        assert "a" not in text.splitlines()[0]

    def test_rows_to_csv_union_of_keys(self, tmp_path):
        path = tmp_path / "out.csv"
        rows_to_csv([{"a": 1}, {"b": 2}], path)
        content = path.read_text().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

    def test_records_to_csv(self, tmp_path):
        record = make_record("sst2", "mc", 8, 4, 5.0, measures={"eis": 0.1})
        path = records_to_csv([record], tmp_path / "records.csv")
        text = path.read_text()
        assert "measure_eis" in text
        assert "sst2" in text


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=3, max_size=20, unique=True))
def test_property_spearman_invariant_to_monotone_transform(values):
    x = np.asarray(values, dtype=np.float64)
    y = 3.0 * x + 1.0
    assert spearman_correlation(x, y) == pytest.approx(1.0)
    assert spearman_correlation(x, -y) == pytest.approx(-1.0)
    assert -1.0 - 1e-9 <= spearman_correlation(x, np.roll(y, 1)) <= 1.0 + 1e-9
