"""End-to-end integration tests: the full paper pipeline on a tiny instance."""

import numpy as np

from repro.compression import compress_pair
from repro.corpus import SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.embeddings import CBOWModel, align_pair
from repro.instability.downstream import classification_disagreement
from repro.measures import EigenspaceInstability, KNNDistance
from repro.models import BowClassifier, TrainingConfig
from repro.tasks import build_task_lexicons, generate_sentiment_dataset, train_val_test_split


def test_full_paper_pipeline_end_to_end():
    """Corpus pair -> embeddings -> alignment -> quantization -> downstream DI -> measures."""
    generator = SyntheticCorpusGenerator(
        SyntheticCorpusConfig(vocab_size=250, n_documents=220, doc_length_mean=70, seed=11)
    )
    pair = generator.generate_pair(seed=11)
    vocab = pair.shared_vocabulary(min_count=2)

    emb_a = CBOWModel(dim=16, epochs=10, seed=0).fit(pair.base, vocab=vocab)
    emb_b = CBOWModel(dim=16, epochs=10, seed=0).fit(pair.drifted, vocab=vocab)
    emb_b = align_pair(emb_a, emb_b)
    assert emb_a.vocab.words == emb_b.vocab.words

    lexicons = build_task_lexicons(generator, vocab)
    dataset = generate_sentiment_dataset("sst2", lexicons, seed=0)
    splits = train_val_test_split(dataset, val_fraction=0.15, test_fraction=0.25, seed=0)
    config = TrainingConfig(learning_rate=0.05, epochs=8, patience=3).with_seed(0)

    disagreements = {}
    accuracies = {}
    for bits in (1, 32):
        qa, qb = compress_pair(emb_a, emb_b, bits)
        model_a = BowClassifier(qa, config=config)
        model_a.fit(splits.train, splits.val)
        model_b = BowClassifier(qb, config=config)
        model_b.fit(splits.train, splits.val)
        disagreements[bits] = classification_disagreement(model_a, model_b, splits.test)
        accuracies[bits] = 0.5 * (model_a.accuracy(splits.test) + model_b.accuracy(splits.test))

    # The task is learnable and the disagreement is a valid percentage.
    assert accuracies[32] > 0.6
    assert 0.0 <= disagreements[32] <= 100.0
    # The paper's headline shape: 1-bit compression is not *more* stable than
    # full precision.
    assert disagreements[1] >= disagreements[32] - 1e-9

    # The embedding distance measures are finite and ordered the same way.
    eis = EigenspaceInstability(emb_a, emb_b, alpha=3.0)
    knn = KNNDistance(k=5, num_queries=150, seed=0)
    qa1, qb1 = compress_pair(emb_a, emb_b, 1)
    assert eis.compute_embeddings(qa1, qb1).value >= eis.compute_embeddings(emb_a, emb_b).value - 1e-9
    assert knn.compute_embeddings(qa1, qb1).value >= knn.compute_embeddings(emb_a, emb_b).value - 1e-9


def test_same_corpus_same_seed_is_perfectly_stable():
    """Training twice on the *same* corpus with the same seed gives zero disagreement."""
    generator = SyntheticCorpusGenerator(
        SyntheticCorpusConfig(vocab_size=200, n_documents=100, doc_length_mean=50, seed=2)
    )
    corpus = generator.generate(seed=2)
    vocab = corpus.build_vocabulary(min_count=2)
    emb_a = CBOWModel(dim=8, epochs=2, seed=0).fit(corpus, vocab=vocab)
    emb_b = CBOWModel(dim=8, epochs=2, seed=0).fit(corpus, vocab=vocab)
    np.testing.assert_allclose(emb_a.vectors, emb_b.vectors)

    lexicons = build_task_lexicons(generator, vocab)
    dataset = generate_sentiment_dataset("mpqa", lexicons, seed=0)
    splits = train_val_test_split(dataset, seed=0)
    config = TrainingConfig(learning_rate=0.05, epochs=3, patience=None).with_seed(0)
    model_a = BowClassifier(emb_a, config=config)
    model_a.fit(splits.train)
    model_b = BowClassifier(emb_b, config=config)
    model_b.fit(splits.train)
    assert classification_disagreement(model_a, model_b, splits.test) == 0.0
