"""Word embedding algorithms, containers, and alignment.

Implements from scratch (NumPy) the three embedding algorithms the paper
studies -- word2vec CBOW, GloVe, and online matrix completion on the PPMI
matrix -- plus the PPMI-SVD baseline, a subword (fastText-style) variant
(Appendix E.1) and a small contextual transformer encoder (Section 6.2).
"""

from repro.embeddings.alignment import align_pair, orthogonal_procrustes
from repro.embeddings.base import Embedding, EmbeddingAlgorithm, EMBEDDING_ALGORITHMS
from repro.embeddings.contextual import MiniBertConfig, MiniBertEncoder
from repro.embeddings.fasttext import SubwordEmbeddingModel
from repro.embeddings.glove import GloVeModel
from repro.embeddings.matrix_completion import MatrixCompletionModel
from repro.embeddings.svd import PPMISVDModel
from repro.embeddings.word2vec import CBOWModel

__all__ = [
    "CBOWModel",
    "EMBEDDING_ALGORITHMS",
    "Embedding",
    "EmbeddingAlgorithm",
    "GloVeModel",
    "MatrixCompletionModel",
    "MiniBertConfig",
    "MiniBertEncoder",
    "PPMISVDModel",
    "SubwordEmbeddingModel",
    "align_pair",
    "orthogonal_procrustes",
]
