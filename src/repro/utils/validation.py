"""Argument validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_array",
    "check_embedding_pair",
    "check_positive",
    "check_probability",
    "check_in_choices",
    "float_dtype_of",
]


def float_dtype_of(*arrays) -> np.dtype:
    """The working float dtype for ``arrays``: float32 only when all are.

    The float32 kernel policy flows matrices through the measure stack in
    single precision; everything else (float64, integers, lists) keeps the
    historical float64 coercion.
    """
    dtypes = [np.asarray(a).dtype for a in arrays]
    if dtypes and all(dt == np.float32 for dt in dtypes):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def check_array(
    x,
    *,
    name: str = "array",
    ndim: int | None = None,
    dtype=np.float64,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``x`` to a contiguous ndarray and validate its shape.

    Parameters
    ----------
    x:
        Array-like input.
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions (``None`` = any).
    dtype:
        Target dtype (``None`` keeps the input dtype).
    allow_empty:
        Whether zero-size arrays are acceptable.
    """
    arr = np.asarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_embedding_pair(X, X_tilde, *, same_dim: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Validate a pair of embedding matrices with a shared vocabulary.

    Both matrices must be 2-D with the same number of rows (words).  When
    ``same_dim`` the embedding dimensions must also match (required by
    measures such as semantic displacement that compare rows directly).

    A pair that is already entirely float32 (the float32 kernel policy) stays
    float32; any other input is coerced to float64 as before.
    """
    dtype = float_dtype_of(X, X_tilde)
    A = check_array(X, name="X", ndim=2, dtype=dtype)
    B = check_array(X_tilde, name="X_tilde", ndim=2, dtype=dtype)
    if A.shape[0] != B.shape[0]:
        raise ValueError(
            f"embedding pair must share a vocabulary: {A.shape[0]} vs {B.shape[0]} rows"
        )
    if same_dim and A.shape[1] != B.shape[1]:
        raise ValueError(
            f"embedding pair must have equal dimensions for this measure: "
            f"{A.shape[1]} vs {B.shape[1]}"
        )
    return A, B


def check_positive(value, *, name: str = "value", strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) scalar."""
    v = float(value)
    if strict and v <= 0:
        raise ValueError(f"{name} must be > 0, got {v}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {v}")
    return v


def check_probability(value, *, name: str = "value") -> float:
    """Validate that ``value`` lies in [0, 1]."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {v}")
    return v


def check_in_choices(value, choices, *, name: str = "value"):
    """Validate that ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {sorted(choices)}, got {value!r}")
    return value
