"""Worker warm-up tests: shipped corpora are exact, and workers rebuild nothing."""

import pickle
import warnings

import numpy as np
import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.engine import ArtifactStore, CorpusShipment, GridEngine
from repro.engine.scheduler import _init_worker
from repro.engine import scheduler as scheduler_module
from repro.engine.warmup import pack_corpus, unpack_corpus
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

WARMUP_CONFIG = PipelineConfig(
    corpus=SyntheticCorpusConfig(vocab_size=120, n_documents=60, doc_length_mean=30, seed=7),
    algorithms=("svd",),
    dimensions=(4, 6),
    precisions=(1, 32),
    seeds=(0,),
    tasks=("sst2",),
    embedding_epochs=2,
    downstream_epochs=3,
    ner_epochs=2,
)


@pytest.fixture(scope="module")
def corpus_pair():
    generator = SyntheticCorpusGenerator(WARMUP_CONFIG.corpus)
    return generator.generate_pair(seed=WARMUP_CONFIG.corpus.seed)


def assert_corpora_equal(a, b):
    assert a.word_list == b.word_list
    assert a.name == b.name
    assert len(a.documents) == len(b.documents)
    for doc_a, doc_b in zip(a.documents, b.documents):
        assert np.array_equal(doc_a, doc_b)
    assert np.array_equal(a.document_topics, b.document_topics)


class TestPackUnpack:
    def test_roundtrip(self, corpus_pair):
        packed = pack_corpus(corpus_pair.base)
        assert_corpora_equal(corpus_pair.base, unpack_corpus(packed))

    def test_empty_corpus(self):
        from repro.corpus.synthetic import Corpus

        empty = Corpus(word_list=["a"], documents=[], document_topics=np.array([]))
        assert len(unpack_corpus(pack_corpus(empty)).documents) == 0


class TestCorpusShipment:
    def test_shared_memory_roundtrip_through_pickle(self, corpus_pair):
        shipment = CorpusShipment.create(corpus_pair)
        try:
            assert shipment.via_shared_memory
            assert shipment.nbytes > 0
            remote = pickle.loads(pickle.dumps(shipment))
            pair = remote.materialize()
            assert_corpora_equal(corpus_pair.base, pair.base)
            assert_corpora_equal(corpus_pair.drifted, pair.drifted)
            assert pair.config == corpus_pair.config
            del pair
            remote.close()
        finally:
            shipment.close()

    def test_inline_fallback(self, corpus_pair):
        shipment = CorpusShipment.create(corpus_pair, use_shared_memory=False)
        try:
            assert not shipment.via_shared_memory
            remote = pickle.loads(pickle.dumps(shipment))
            pair = remote.materialize()
            assert_corpora_equal(corpus_pair.base, pair.base)
        finally:
            shipment.close()

    def test_close_is_idempotent(self, corpus_pair):
        shipment = CorpusShipment.create(corpus_pair)
        shipment.close()
        shipment.close()


class TestWarmStartedPipeline:
    def test_warm_pipeline_builds_no_corpus(self, corpus_pair):
        pipeline = InstabilityPipeline(WARMUP_CONFIG, warm_corpus_pair=corpus_pair)
        assert pipeline.corpus_build_count == 0
        assert pipeline.reconstructible        # unlike corpus_pair=...
        cold = InstabilityPipeline(WARMUP_CONFIG)
        assert cold.corpus_build_count == 1
        # Identical vocabulary and artifact keys: warm pipelines share caches.
        assert pipeline.vocab.words == cold.vocab.words
        assert pipeline._embedding_fields("svd", 4, 0) == cold._embedding_fields("svd", 4, 0)

    def test_custom_corpus_still_salts_keys(self, corpus_pair):
        custom = InstabilityPipeline(WARMUP_CONFIG, corpus_pair=corpus_pair)
        warm = InstabilityPipeline(WARMUP_CONFIG, warm_corpus_pair=corpus_pair)
        assert not custom.reconstructible
        assert custom._key_salt is not None
        assert warm._key_salt is None

    def test_init_worker_materialises_shipment(self, corpus_pair, tmp_path):
        shipment = CorpusShipment.create(corpus_pair)
        try:
            handle = pickle.loads(pickle.dumps(shipment))
            _init_worker(WARMUP_CONFIG, tmp_path, handle, None)
            worker_pipeline = scheduler_module._WORKER_PIPELINE
            assert worker_pipeline is not None
            assert worker_pipeline.corpus_build_count == 0
            assert_corpora_equal(corpus_pair.base, worker_pipeline.corpus_pair.base)
        finally:
            scheduler_module._WORKER_PIPELINE = None
            scheduler_module._WORKER_SHIPMENT = None
            shipment.close()

    def test_init_worker_without_shipment_rebuilds(self, tmp_path):
        _init_worker(WARMUP_CONFIG, tmp_path, None, None)
        try:
            assert scheduler_module._WORKER_PIPELINE.corpus_build_count == 1
        finally:
            scheduler_module._WORKER_PIPELINE = None


class TestEngineWarmupIntegration:
    def test_parallel_run_ships_corpus_and_stays_bit_identical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            serial_engine = GridEngine(WARMUP_CONFIG, store=ArtifactStore())
            serial = serial_engine.run(with_measures=True)
            assert serial_engine.last_warmup is None     # no parallel run happened

            parallel_engine = GridEngine(WARMUP_CONFIG, store=ArtifactStore())
            parallel = parallel_engine.run(with_measures=True, n_workers=2)
        assert parallel == serial
        warmup = parallel_engine.last_warmup
        assert warmup is not None and warmup["enabled"]
        assert warmup["nbytes"] > 0
        # The parent built its corpus exactly once; the shipment means worker
        # pipelines report zero builds (asserted directly in
        # TestWarmStartedPipeline since workers live in other processes).
        assert parallel_engine.pipeline.corpus_build_count == 1
