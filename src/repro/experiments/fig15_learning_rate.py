"""Figure 15 (Appendix E.5): the effect of the downstream learning rate.

The paper sweeps the downstream model's learning rate (holding the embeddings
fixed) and finds that very small and very large learning rates are the most
unstable, which is why the main study holds the learning rate fixed across
dimensions and precisions.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_pipeline
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    task: str = "sst2",
    algorithm: str = "mc",
    dimensions: tuple[int, ...] | None = None,
    learning_rates: tuple[float, ...] = (1e-4, 1e-3, 1e-2, 5e-2, 2e-1),
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the downstream learning rate at two embedding dimensions."""
    pipe = resolve_pipeline(pipeline)
    if dimensions is None:
        dims = sorted(pipe.config.dimensions)
        dimensions = (dims[len(dims) // 2], dims[-1])

    rows = []
    for dim in dimensions:
        emb_a, emb_b = pipe.embedding_pair(algorithm, dim, seed)
        for lr in learning_rates:
            result = pipe.downstream_result(task, emb_a, emb_b, seed, learning_rate=lr)
            rows.append(
                {
                    "task": task,
                    "algorithm": algorithm,
                    "dimension": dim,
                    "learning_rate": lr,
                    "disagreement_pct": result.disagreement,
                    "quality": result.mean_accuracy,
                }
            )

    by_lr: dict[float, list[float]] = {}
    for row in rows:
        by_lr.setdefault(row["learning_rate"], []).append(row["disagreement_pct"])
    means = {lr: sum(v) / len(v) for lr, v in by_lr.items()}
    summary = {"mean_disagreement_by_learning_rate": means}
    return ExperimentResult(name="figure-15-learning-rate", rows=rows, summary=summary)
