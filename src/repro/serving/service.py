"""Long-lived stability-query service over the grid-execution engine.

A :class:`StabilityService` owns one warm
:class:`~repro.instability.pipeline.InstabilityPipeline` (and thus one
:class:`~repro.engine.store.ArtifactStore`), one bounded long-lived
:class:`~repro.measures.base.DecompositionCache`, and a bounded thread pool,
and answers the operational questions the paper's measures exist for:

* :meth:`measure` -- the pairwise stability measures of one (algorithm,
  dimension, precision, seed) cell;
* :meth:`select` -- the dimension-precision combination to ship under a
  memory budget, ranked by a selection criterion (EIS by default, the
  paper's rule of thumb);
* :meth:`grid_iter` -- a streaming grid execution yielding records as cells
  complete (the engine's :meth:`~repro.engine.scheduler.GridEngine.run_iter`);
* :meth:`metrics` / :meth:`healthz` -- observability.

Three serving-specific behaviours sit between the HTTP layer and the engine:

**Request coalescing (single-flight).**  Concurrent requests for the same
artifact key -- the same content hash the store caches under -- share one
computation: the first request submits it, the rest await the same future.
``coalesced_total`` counts the requests that piggybacked.

**Ancestry-aware batching.**  Distinct measure requests sharing an
(algorithm, seed) ancestry serialise on a per-ancestry lock, so the shared
anchor decomposition and measure suite are built exactly once and every
follower hits them in cache; requests of unrelated ancestries run
concurrently up to ``max_concurrency``.

**Bounded concurrency.**  All computation runs on a ``max_concurrency``-sized
thread pool; the asyncio HTTP layer stays responsive no matter how heavy the
numerical work gets.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro.cluster.coordinator import ClusterCoordinator, config_wire_payload
from repro.compression.memory import bits_per_word
from repro.engine import ArtifactStore, GridEngine, plan_grid
from repro.engine import stats as engine_stats
from repro.instability.grid import GridRecord
from repro.measures.base import DEFAULT_CACHE_ENTRIES, MEASURES, DecompositionCache
from repro.selection.budget import recommend_under_budget
from repro.selection.criteria import (
    HIGH_PRECISION,
    LOW_PRECISION,
    SelectionCriterion,
    measure_criterion,
)
from repro.telemetry.trace import TraceBuffer, annotate, bind, remote_context, span
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
    from repro.monitor.scheduler import InstabilityMonitor, MonitorConfig

logger = get_logger(__name__)

__all__ = ["ServiceConfig", "StabilityService"]

#: Criteria the /select endpoint resolves by name, besides the measure names
#: themselves ("eis", "1-knn", "pip", "1-eigenspace-overlap",
#: "semantic-displacement").
_NAIVE_CRITERIA = {c.name: c for c in (HIGH_PRECISION, LOW_PRECISION)}


@dataclass(frozen=True)
class ServiceConfig:
    """Serving-layer knobs (the pipeline keeps its own configuration)."""

    #: Threads computing requests concurrently (and the single-flight pool).
    max_concurrency: int = 4
    #: Process fan-out for /grid executions; 0 = in-process serial.
    grid_workers: int = 0
    #: Entry bound of the long-lived decomposition cache.
    decomposition_cache_entries: int | None = DEFAULT_CACHE_ENTRIES
    #: Seconds a cluster lease survives without a heartbeat (see
    #: :class:`~repro.cluster.coordinator.ClusterCoordinator`).
    lease_ttl: float = 60.0
    #: Seconds a finished cluster run (and its checkpoints) is retained
    #: before age GC; 0 disables age GC.
    run_gc_age: float = 3600.0
    #: Seconds of silence before an idle cluster worker is evicted from the
    #: status table; 0 disables eviction.
    worker_ttl: float = 300.0
    #: Straggler threshold multiplier for speculative re-leases; 0 disables
    #: speculation.
    speculation_factor: float = 2.0
    #: Escalation threshold of the quantized-first (``fast=true``) measure
    #: mode: a fast answer is served only while every per-measure error bound
    #: (normalised for unbounded measures, see ``StabilityService.measure``)
    #: stays at or below this tolerance; otherwise the request escalates to
    #: the exact float64 path.  Per-request override via ``tolerance=``.
    fast_tolerance: float = 0.05
    #: Probability a request is traced into the bounded trace ring
    #: (``repro-serve --trace-sample``).  With ``trace_sample=0`` and
    #: ``trace_slow_ms=0`` tracing is fully disabled: no spans are recorded.
    trace_sample: float = 1.0
    #: Latency threshold (ms) above which a trace is always collected and
    #: retained in the slow ring regardless of sampling
    #: (``repro-serve --slow-ms``); 0 disables the slow keep-policy.
    trace_slow_ms: float = 500.0
    #: Finished traces retained in the recent ring (the slow ring keeps a
    #: quarter of this, at least one).
    trace_capacity: int = 256

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {self.max_concurrency}")
        if not self.fast_tolerance > 0:
            raise ValueError(f"fast_tolerance must be positive, got {self.fast_tolerance}")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError(f"trace_sample must be in [0, 1], got {self.trace_sample}")
        if self.trace_slow_ms < 0:
            raise ValueError(f"trace_slow_ms must be >= 0, got {self.trace_slow_ms}")
        if self.trace_capacity < 1:
            raise ValueError(f"trace_capacity must be >= 1, got {self.trace_capacity}")
        if self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {self.lease_ttl}")
        if self.run_gc_age < 0:
            raise ValueError(f"run_gc_age must be >= 0, got {self.run_gc_age}")
        if self.worker_ttl < 0:
            raise ValueError(f"worker_ttl must be >= 0, got {self.worker_ttl}")


class StabilityService:
    """Warm, concurrent, coalescing front-end to the instability pipeline.

    Parameters
    ----------
    pipeline:
        An :class:`~repro.instability.pipeline.InstabilityPipeline`, a
        :class:`~repro.instability.pipeline.PipelineConfig`, or ``None``
        (default configuration).  The pipeline is built once at start-up --
        corpus generated, vocabulary fixed -- and everything else is computed
        lazily per request and cached in the store.
    store:
        Artifact store handed to a pipeline the service constructs itself;
        pass a disk-backed store to make the service warm across restarts.
    config:
        Serving-layer knobs (:class:`ServiceConfig`).
    """

    def __init__(
        self,
        pipeline: "InstabilityPipeline | PipelineConfig | None" = None,
        *,
        store: ArtifactStore | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.engine = GridEngine(
            pipeline, store=store, n_workers=self.config.grid_workers
        )
        self.pipeline = self.engine.pipeline
        self.decomposition_cache = DecompositionCache(
            policy=self.pipeline.config.resolved_kernel_policy(),
            max_entries=self.config.decomposition_cache_entries,
        )
        self.started_at = time.time()
        #: Every repro-serve instance is also a cluster coordinator: grids
        #: submitted with ``distributed=true`` are leased to the
        #: ``repro-worker`` fleet instead of executed in-process.  It shares
        #: the service's artifact store, so run checkpoints live next to the
        #: artifacts they describe -- a disk-backed store makes runs survive
        #: a coordinator restart (``repro-serve --resume-runs``).
        #: Bounded ring of finished request traces (serving /trace/*); also
        #: the stitch point for spans shipped back by cluster workers.
        self.traces = TraceBuffer(
            capacity=self.config.trace_capacity,
            slow_capacity=max(1, self.config.trace_capacity // 4),
            sample=self.config.trace_sample,
            slow_ms=self.config.trace_slow_ms,
        )
        self.coordinator = ClusterCoordinator(
            default_config=config_wire_payload(self.pipeline.config),
            lease_ttl=self.config.lease_ttl,
            store=self.pipeline.store,
            run_gc_age=self.config.run_gc_age,
            worker_ttl=self.config.worker_ttl,
            speculation_factor=self.config.speculation_factor,
            trace_sink=self.traces,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency, thread_name_prefix="stability"
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._ancestry_locks: dict[tuple[str, int], threading.Lock] = {}
        self._counters = {
            "requests_measure": 0,
            "requests_select": 0,
            "requests_grid": 0,
            "coalesced_total": 0,
            "records_streamed": 0,
            "grids_inflight": 0,
            "grids_cancelled": 0,
            "fast_hits": 0,
            "fast_escalations": 0,
        }
        self._closed = False
        #: Online instability monitor; ``None`` until :meth:`enable_monitor`.
        self.monitor: "InstabilityMonitor | None" = None
        logger.info(
            "stability service ready: %d-word vocabulary, %d-way concurrency",
            len(self.pipeline.vocab), self.config.max_concurrency,
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut the monitor and worker pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            if self.monitor is not None:
                self.monitor.close()
            self._executor.shutdown(wait=True, cancel_futures=True)

    def enable_monitor(
        self, config: "MonitorConfig | None" = None
    ) -> "InstabilityMonitor":
        """Attach (or return) the online instability monitor.

        The monitor rides this service's store, pipeline configuration and
        cluster coordinator; calling again returns the existing instance
        (``config`` must then be omitted or it is an error).
        """
        from repro.monitor.scheduler import InstabilityMonitor

        if self.monitor is not None:
            if config is not None and config != self.monitor.config:
                raise ValueError("monitor already enabled with a different config")
            return self.monitor
        self.monitor = InstabilityMonitor(self, config)
        return self.monitor

    def __enter__(self) -> "StabilityService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def store(self) -> ArtifactStore:
        """The artifact store backing this service (shared with the engine)."""
        return self.pipeline.store

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The bounded worker pool; all blocking service work belongs on it."""
        return self._executor

    # -- internals -------------------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] += delta

    def _ancestry_lock(self, algorithm: str, seed: int) -> threading.Lock:
        with self._lock:
            return self._ancestry_locks.setdefault(
                (algorithm, int(seed)), threading.Lock()
            )

    def _single_flight(self, key: str, fn: Callable[[], dict]) -> dict:
        """Run ``fn`` once per in-flight ``key``; identical requests share it."""
        coalesced = False
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self._counters["coalesced_total"] += 1
                coalesced = True
            else:
                # bind(): the leader's pipeline/store spans attach to the
                # trace of the request that submitted the computation.
                future = self._executor.submit(self._run_tracked, key, bind(fn))
                self._inflight[key] = future
        if coalesced:
            annotate(coalesced=True)
            with span("service.coalesce_wait", metric="phase", label="coalesce_wait",
                      key=key):
                return future.result()
        return future.result()

    def _run_tracked(self, key: str, fn: Callable[[], dict]) -> dict:
        try:
            return fn()
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    # -- queries ---------------------------------------------------------------

    def measure(
        self,
        algorithm: str,
        dim: int,
        precision: int,
        seed: int = 0,
        *,
        measures: tuple[str, ...] | None = None,
        fast: bool = False,
        fast_tolerance: float | None = None,
    ) -> dict:
        """Pairwise stability measures of one grid cell (coalesced, cached).

        A repeated query against a warm store is pure cache: zero trainings,
        zero decompositions (pinned in the serving tests).

        With ``fast=True`` the cell is first evaluated from its quantized
        fast-pair representation (:meth:`InstabilityPipeline.compute_measures_fast`),
        which returns approximate values *plus* sound per-measure error
        bounds.  The fast answer is served -- with the bounds attached --
        only while every normalised bound stays within the tolerance
        (``fast_tolerance`` argument, else ``ServiceConfig.fast_tolerance``);
        otherwise the request escalates to the exact path, whose result is
        bit-identical to a ``fast=False`` request.  Bounds of range-limited
        measures compare directly against the tolerance; the unbounded pip
        loss compares ``bound / (1 + |value|)``.
        """
        self._count("requests_measure")
        dim, precision, seed = int(dim), int(precision), int(seed)
        key = self.pipeline.measures_key(
            algorithm, dim, precision, seed, measures=measures
        )

        if fast:
            tolerance = float(
                self.config.fast_tolerance if fast_tolerance is None else fast_tolerance
            )
            fast_key = self.pipeline.fast_measures_key(
                algorithm, dim, precision, seed, measures=measures
            )

            def compute_fast() -> dict:
                lock = self._ancestry_lock(algorithm, seed)
                with span("service.ancestry_wait", metric="phase",
                          label="ancestry_wait", algorithm=algorithm, seed=seed):
                    lock.acquire()
                try:
                    return self.pipeline.compute_measures_fast(
                        algorithm, dim, precision, seed, measures=measures
                    )
                finally:
                    lock.release()

            result = self._single_flight(fast_key, compute_fast)
            values, error_bounds = result["values"], result["bounds"]
            if all(
                _normalized_bound(name, bound, values[name]) <= tolerance
                for name, bound in error_bounds.items()
            ):
                self._count("fast_hits")
                annotate(fast=True)
                return {
                    "algorithm": algorithm,
                    "dim": dim,
                    "precision": precision,
                    "seed": seed,
                    "memory_bits_per_word": bits_per_word(dim, precision),
                    "artifact_key": key,
                    "fast_artifact_key": fast_key,
                    "precision_mode": "fast",
                    "escalated": False,
                    "tolerance": tolerance,
                    "measures": values,
                    "error_bounds": error_bounds,
                }
            self._count("fast_escalations")
            annotate(escalated=True)

        def compute() -> dict:
            # Ancestry-aware batching: requests sharing the (algorithm, seed)
            # anchor pair serialise here, so the anchor decomposition and the
            # measure suite are built once and every follower hits the cache.
            lock = self._ancestry_lock(algorithm, seed)
            with span("service.ancestry_wait", metric="phase",
                      label="ancestry_wait", algorithm=algorithm, seed=seed):
                lock.acquire()
            try:
                values = self.pipeline.compute_measures(
                    algorithm, dim, precision, seed,
                    measures=measures, cache=self.decomposition_cache,
                )
            finally:
                lock.release()
            return values

        values = self._single_flight(key, compute)
        response = {
            "algorithm": algorithm,
            "dim": dim,
            "precision": precision,
            "seed": seed,
            "memory_bits_per_word": bits_per_word(dim, precision),
            "artifact_key": key,
            "measures": values,
        }
        if fast:
            # The fast attempt's bounds document *why* the request escalated.
            response.update(precision_mode="exact", escalated=True)
        return response

    def measure_etag(
        self,
        algorithm: str,
        dim: int,
        precision: int,
        seed: int = 0,
        *,
        measures: tuple[str, ...] | None = None,
        fast: bool = False,
        fast_tolerance: float | None = None,
    ) -> str:
        """Deterministic validator of a :meth:`measure` response, pre-compute.

        A measure response is a pure function of its content-addressed
        artifact key plus, in fast mode, the escalation tolerance (the same
        cached values/bounds either pass or fail a given tolerance
        deterministically).  The tag is therefore computable *without*
        computing the measures, which is what lets the HTTP layer answer
        ``If-None-Match`` revalidations with ``304`` before any numerical
        work happens.
        """
        if not fast:
            key = self.pipeline.measures_key(
                algorithm, int(dim), int(precision), int(seed), measures=measures
            )
            return f"{key}:exact"
        tolerance = float(
            self.config.fast_tolerance if fast_tolerance is None else fast_tolerance
        )
        fast_key = self.pipeline.fast_measures_key(
            algorithm, int(dim), int(precision), int(seed), measures=measures
        )
        return f"{fast_key}:fast:{tolerance!r}"

    def select(
        self,
        budget: int,
        *,
        criterion: str = "eis",
        algorithm: str | None = None,
        seed: int | None = None,
        dimensions: tuple[int, ...] | None = None,
        precisions: tuple[int, ...] | None = None,
    ) -> dict:
        """Dimension-precision recommendation under a memory budget.

        Implements the paper's selection rule operationally: evaluate every
        candidate (dimension, precision) combination's stability measures
        (cached, coalesced) and return the one the criterion ranks most
        stable among those fitting ``budget`` bits per word.  ``criterion``
        is a measure name (default ``"eis"``, the paper's rule of thumb) or a
        naive baseline (``"high-precision"``, ``"low-precision"``).
        """
        self._count("requests_select")
        cfg = self.pipeline.config
        algorithm = algorithm or cfg.algorithms[0]
        seed = int(cfg.seeds[0] if seed is None else seed)
        dimensions = tuple(int(d) for d in (dimensions or cfg.dimensions))
        precisions = tuple(int(p) for p in (precisions or cfg.precisions))
        budget = int(budget)
        chosen_criterion = self._resolve_criterion(criterion)

        candidates = []
        for dim in dimensions:
            for precision in precisions:
                needs_measures = criterion not in _NAIVE_CRITERIA
                measures = (
                    self.measure(algorithm, dim, precision, seed)["measures"]
                    if needs_measures
                    else {}
                )
                candidates.append(
                    GridRecord(
                        algorithm=algorithm,
                        task="-",          # selection is task-free: measures only
                        dim=dim,
                        precision=precision,
                        seed=seed,
                        disagreement=float("nan"),
                        accuracy_a=float("nan"),
                        accuracy_b=float("nan"),
                        measures=measures,
                    )
                )
        selected = recommend_under_budget(candidates, budget, chosen_criterion)
        return {
            "budget_bits_per_word": budget,
            "criterion": chosen_criterion.name,
            "algorithm": algorithm,
            "seed": seed,
            "selected": {
                "dim": selected.dim,
                "precision": selected.precision,
                "memory_bits_per_word": selected.memory,
                "score": _finite_or_none(chosen_criterion(selected)),
            },
            "n_candidates": len(candidates),
            "n_feasible": sum(1 for c in candidates if c.memory <= budget),
        }

    def _resolve_criterion(self, name: str) -> SelectionCriterion:
        if name in _NAIVE_CRITERIA:
            return _NAIVE_CRITERIA[name]
        if name == "oracle":
            raise ValueError(
                "the oracle criterion requires downstream training; stream the "
                "grid via /grid and rank records offline instead"
            )
        measure_names = set(MEASURES.names())
        if name not in measure_names:
            raise ValueError(
                f"unknown selection criterion {name!r}; known: "
                f"{sorted(measure_names | set(_NAIVE_CRITERIA))}"
            )
        return measure_criterion(name)

    def grid_iter(
        self,
        *,
        algorithms: tuple[str, ...] | None = None,
        tasks: tuple[str, ...] | None = None,
        dimensions: tuple[int, ...] | None = None,
        precisions: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        with_measures: bool = True,
        ordered: bool = True,
        n_workers: int | None = None,
        model_type: str = "bow",
        distributed: bool = False,
        config: dict | None = None,
        run_id: str | None = None,
    ) -> Iterator[GridRecord]:
        """Stream grid records as cells complete (see ``GridEngine.run_iter``).

        Axes are validated *eagerly* (unknown algorithm/task names, duplicate
        axis values) so callers -- the HTTP layer in particular -- can reject
        a bad request before committing to a streaming response; only the
        record production itself is lazy.

        With ``distributed=True`` the grid is not executed in-process: it is
        registered with this instance's cluster coordinator and leased to
        ``repro-worker`` processes, and the returned iterator blocks until
        workers deliver each record (in canonical order).  ``config``
        optionally carries a JSON pipeline configuration from a remote
        submitter (``GridEngine --coordinator``); axes left unset then
        default to *that* configuration.  The iterator's ``close()`` is
        thread-safe and cancels the underlying run, so an abandoned stream
        stops consuming the cluster.

        ``run_id`` *attaches* to an existing distributed run instead of
        submitting a new one -- the stream replays the run's records from
        the beginning (canonical order) and follows it to completion.  How
        a consumer picks a resumed run back up after a coordinator restart;
        detaching from an attached stream does **not** cancel the run.
        """
        if run_id is not None:
            if not distributed:
                raise ValueError("'run_id' requires distributed=true")
            if self.coordinator.run_status(run_id) is None:
                raise KeyError(f"unknown cluster run {run_id!r}")
            self._count("requests_grid")
            stop = threading.Event()
            return _CancellableStream(
                self._stream_cluster(run_id, stop=stop, cancel_on_exit=False),
                cancel=stop.set,
            )
        run_config = self.pipeline.config
        config_payload = None
        if config is not None:
            from repro.instability.pipeline import PipelineConfig

            if not isinstance(config, dict):
                raise ValueError("'config' must be a JSON object")
            if not distributed:
                raise ValueError("a custom 'config' requires distributed=true")
            run_config = PipelineConfig.from_jsonable(config)   # validates fields
            config_payload = config_wire_payload(run_config)

        cfg = run_config
        algorithms = tuple(algorithms or cfg.algorithms)
        tasks = tuple(tasks or cfg.tasks)
        dimensions = tuple(int(d) for d in (dimensions or cfg.dimensions))
        precisions = tuple(int(p) for p in (precisions or cfg.precisions))
        seeds = tuple(int(s) for s in (seeds or cfg.seeds))
        self._validate_axes(algorithms, tasks, dimensions, precisions, seeds)
        self._count("requests_grid")
        if distributed:
            plan = plan_grid(
                run_config,
                algorithms=algorithms, tasks=tasks, dimensions=dimensions,
                precisions=precisions, seeds=seeds,
                with_measures=with_measures, model_type=model_type,
            )
            run_id = self.coordinator.create_run(
                plan, config_payload, trace=remote_context()
            )
            return _CancellableStream(
                self._stream_cluster(run_id),
                cancel=lambda: self._cancel_cluster_run(run_id),
            )
        return self._stream_records(
            algorithms, tasks, dimensions, precisions, seeds,
            with_measures, ordered, n_workers, model_type,
        )

    @staticmethod
    def _validate_axes(algorithms, tasks, dimensions, precisions, seeds) -> None:
        from repro.embeddings.base import EMBEDDING_ALGORITHMS
        from repro.instability.pipeline import NER_TASK_NAME, SENTIMENT_TASK_NAMES

        for algorithm in algorithms:
            if algorithm not in EMBEDDING_ALGORITHMS:
                raise KeyError(
                    f"unknown embedding algorithm {algorithm!r}; "
                    f"known: {EMBEDDING_ALGORITHMS.names()}"
                )
        for task in tasks:
            if task not in SENTIMENT_TASK_NAMES and task != NER_TASK_NAME:
                raise KeyError(f"unknown task {task!r}")
        for axis_name, axis in (
            ("algorithms", algorithms), ("tasks", tasks), ("dimensions", dimensions),
            ("precisions", precisions), ("seeds", seeds),
        ):
            if len(set(axis)) != len(axis):
                raise ValueError(f"duplicate values in {axis_name}: {axis}")

    def _stream_records(
        self, algorithms, tasks, dimensions, precisions, seeds,
        with_measures, ordered, n_workers, model_type="bow",
    ) -> Iterator[GridRecord]:
        iterator = self.engine.run_iter(
            algorithms=algorithms,
            tasks=tasks,
            dimensions=dimensions,
            precisions=precisions,
            seeds=seeds,
            with_measures=with_measures,
            ordered=ordered,
            n_workers=n_workers,
            model_type=model_type,
        )
        self._count("grids_inflight")
        try:
            for record in iterator:
                self._count("records_streamed")
                yield record
        except GeneratorExit:
            # Abandoned stream (client disconnected): close the engine
            # iterator so it stops submitting cells -- under parallel
            # execution this tears the worker pool down mid-grid.
            self._count("grids_cancelled")
            iterator.close()
            raise
        finally:
            self._count("grids_inflight", -1)

    def _stream_cluster(
        self,
        run_id: str,
        *,
        stop: threading.Event | None = None,
        cancel_on_exit: bool = True,
    ) -> Iterator[GridRecord]:
        self._count("grids_inflight")
        try:
            for record in self.coordinator.records(run_id, stop=stop):
                self._count("records_streamed")
                yield record
        except GeneratorExit:
            # An attached stream (cancel_on_exit=False) only detaches: the
            # run belongs to its original submitter, not to this reader.
            if cancel_on_exit:
                self._cancel_cluster_run(run_id)
            elif stop is not None:
                stop.set()
            raise
        finally:
            self._count("grids_inflight", -1)

    def _cancel_cluster_run(self, run_id: str) -> None:
        if self.coordinator.cancel(run_id):
            self._count("grids_cancelled")

    # -- observability ---------------------------------------------------------

    def healthz(self) -> dict:
        """Liveness payload: cheap, touches no numerical state.

        ``store_peers`` lists every remote storage peer with its circuit
        breaker state; ``degraded`` is true while any breaker is open, so a
        load balancer can route around storage-degraded instances without
        parsing the full ``/metrics`` snapshot.
        """
        peers = self.pipeline.store.peer_health()
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "vocab_words": len(self.pipeline.vocab),
            "algorithms": list(self.pipeline.config.algorithms),
            "dimensions": list(self.pipeline.config.dimensions),
            "precisions": list(self.pipeline.config.precisions),
            "seeds": list(self.pipeline.config.seeds),
            "tasks": list(self.pipeline.config.tasks),
            "store_persistent": self.pipeline.store.persistent,
            "store_tiers": [tier.name for tier in self.pipeline.store.tiers],
            "store_peers": peers,
            "degraded": any(peer["breaker_open"] for peer in peers),
            "cluster_workers": len(self.coordinator.snapshot()["workers"]),
        }

    def metrics(self) -> dict:
        """Counter snapshot: engine stats plus the serving-layer counters."""
        snapshot = engine_stats(
            engine=self.engine,
            caches={"serving": self.decomposition_cache},
            coordinator=self.coordinator,
            monitor=self.monitor,
        )
        with self._lock:
            serving = dict(self._counters)
            serving["inflight_now"] = len(self._inflight)
        snapshot["serving"] = serving
        snapshot["telemetry"]["traces"] = self.traces.counters()
        return snapshot


class _CancellableStream:
    """A record iterator whose ``close()`` is safe from another thread.

    A plain generator refuses ``close()`` while its frame is executing --
    exactly the state a distributed stream is in when it blocks waiting for
    worker results and the HTTP layer notices the client is gone.  This
    wrapper routes ``close()`` through a thread-safe ``cancel`` callback
    first (the coordinator wakes and ends the underlying generator), then
    best-effort closes the generator itself.
    """

    def __init__(self, iterator: Iterator[GridRecord], cancel: Callable[[], None]) -> None:
        self._iterator = iterator
        self._cancel = cancel

    def __iter__(self) -> "_CancellableStream":
        return self

    def __next__(self) -> GridRecord:
        return next(self._iterator)

    def close(self) -> None:
        self._cancel()
        try:
            self._iterator.close()
        except ValueError:
            # The producer thread is inside __next__; the cancel above makes
            # it return, and the generator's finally blocks run there.
            pass


def _finite_or_none(value: float) -> float | None:
    return float(value) if np.isfinite(value) else None


#: Measures whose values live in a bounded range, so their error bounds are
#: absolute quantities directly comparable against the tolerance.
_RANGE_BOUNDED_MEASURES = frozenset(
    {"eis", "1-knn", "1-eigenspace-overlap", "semantic-displacement"}
)


def _normalized_bound(name: str, bound: float, value: float) -> float:
    """Error bound in tolerance units: absolute for range-bounded measures,
    relative (``bound / (1 + |value|)``) for the unbounded pip loss."""
    if name in _RANGE_BOUNDED_MEASURES:
        return float(bound)
    return float(bound) / (1.0 + abs(float(value)))
