"""repro: reproduction of "Understanding the Downstream Instability of Word Embeddings".

The public API re-exports the pieces a downstream user typically needs:
corpus generation, embedding training, compression, the embedding distance
measures (including the paper's eigenspace instability measure), the
end-to-end instability pipeline, and the selection/analysis utilities.
See ``README.md`` for a quickstart and ``DESIGN.md`` for the full system map.
"""

from repro.compression import compress_embedding, compress_pair, uniform_quantize
from repro.corpus import (
    Corpus,
    CorpusPair,
    SyntheticCorpusConfig,
    SyntheticCorpusGenerator,
    Vocabulary,
)
from repro.embeddings import (
    CBOWModel,
    Embedding,
    GloVeModel,
    MatrixCompletionModel,
    PPMISVDModel,
    align_pair,
)
from repro.instability import (
    GridRecord,
    GridRunner,
    InstabilityPipeline,
    PipelineConfig,
    prediction_disagreement,
)
from repro.measures import (
    EigenspaceInstability,
    EigenspaceOverlapDistance,
    KNNDistance,
    PIPLoss,
    SemanticDisplacement,
    eigenspace_instability,
)
from repro.analysis import fit_linear_log, measure_correlations, spearman_correlation

__version__ = "1.0.0"

__all__ = [
    "CBOWModel",
    "Corpus",
    "CorpusPair",
    "Embedding",
    "EigenspaceInstability",
    "EigenspaceOverlapDistance",
    "GloVeModel",
    "GridRecord",
    "GridRunner",
    "InstabilityPipeline",
    "KNNDistance",
    "MatrixCompletionModel",
    "PIPLoss",
    "PPMISVDModel",
    "PipelineConfig",
    "SemanticDisplacement",
    "SyntheticCorpusConfig",
    "SyntheticCorpusGenerator",
    "Vocabulary",
    "align_pair",
    "compress_embedding",
    "compress_pair",
    "eigenspace_instability",
    "fit_linear_log",
    "measure_correlations",
    "prediction_disagreement",
    "spearman_correlation",
    "uniform_quantize",
    "__version__",
]
