"""Figure 11 (Appendix D.7): contextual (BERT-style) embedding instability.

Section 6.2 of the paper pre-trains shallow BERT feature extractors on
sub-sampled Wiki'17 and Wiki'18 dumps, varies the transformer output dimension
and the precision of the extracted features, and measures the prediction
disagreement of linear sentiment classifiers trained on the frozen features.
Here the contextual extractor is :class:`~repro.embeddings.contextual.MiniBertEncoder`
(see DESIGN.md for the substitution).
"""

from __future__ import annotations

import numpy as np

from repro.compression.uniform_quantization import uniform_quantize
from repro.embeddings.contextual import MiniBertConfig, MiniBertEncoder
from repro.experiments.base import ExperimentResult, quick_pipeline_config, resolve_pipeline
from repro.instability.downstream import prediction_disagreement
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
from repro.models.bow_classifier import BowClassifier
from repro.models.trainer import TrainingConfig
from repro.nn.tensor import Tensor
from repro.tasks.datasets import TextClassificationDataset

__all__ = ["run"]


def _encode_dataset(encoder: MiniBertEncoder, dataset: TextClassificationDataset) -> np.ndarray:
    return encoder.encode_documents(dataset.documents)


class _FeatureClassifier(BowClassifier):
    """Linear classifier over precomputed contextual features.

    Reuses the BOW classifier's training loop by treating the feature matrix
    as a one-row-per-document 'embedding table' and each document as the
    single 'word' pointing at its own row.
    """

    def __init__(self, features: np.ndarray, num_classes: int = 2, *, config=None):
        super().__init__(features, num_classes, config=config)

    def _document_features(self, documents):  # documents are row-index arrays
        rows = np.asarray([int(d[0]) for d in documents], dtype=np.int64)
        return Tensor(self.embedding.weight.data[rows])


def _as_row_dataset(dataset: TextClassificationDataset, offset: int = 0) -> TextClassificationDataset:
    """Replace each document with a pointer to its feature row."""
    return TextClassificationDataset(
        documents=[np.asarray([i + offset]) for i in range(len(dataset))],
        labels=dataset.labels,
        vocab=dataset.vocab,
        name=dataset.name,
        num_classes=dataset.num_classes,
    )


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    output_dims: tuple[int, ...] = (16, 32, 64),
    precisions: tuple[int, ...] = (1, 4, 32),
    task: str = "sst2",
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the contextual encoder's output dimension and feature precision."""
    pipe = resolve_pipeline(pipeline if pipeline is not None else quick_pipeline_config())
    splits = pipe.dataset(task)

    rows = []
    for output_dim in output_dims:
        config = MiniBertConfig(hidden_dim=32, output_dim=output_dim, n_layers=3, n_heads=4,
                                ffn_dim=64, token_dim=16)
        enc_a = MiniBertEncoder(config, seed=seed).fit(pipe.corpus_pair.base, vocab=pipe.vocab)
        enc_b = MiniBertEncoder(config, seed=seed).fit(pipe.corpus_pair.drifted, vocab=pipe.vocab)

        features = {}
        for name, enc in (("a", enc_a), ("b", enc_b)):
            features[name] = {
                split: _encode_dataset(enc, getattr(splits, split))
                for split in ("train", "val", "test")
            }

        for precision in precisions:
            disagreement = _disagreement_for(features, splits, precision, seed)
            rows.append(
                {
                    "task": task,
                    "output_dim": output_dim,
                    "precision": precision,
                    "disagreement_pct": disagreement,
                }
            )

    # Shape check: the lowest-memory setting should be at least as unstable as
    # the highest-memory one.
    ordered = sorted(rows, key=lambda r: r["output_dim"] * r["precision"])
    summary = {
        "low_vs_high_memory_disagreement": (
            ordered[0]["disagreement_pct"],
            ordered[-1]["disagreement_pct"],
        )
        if ordered
        else None,
    }
    return ExperimentResult(name="figure-11-contextual", rows=rows, summary=summary)


def _disagreement_for(features, splits, precision: int, seed: int) -> float:
    cfg = TrainingConfig(learning_rate=0.05, epochs=12, optimizer="adam", patience=4).with_seed(seed)
    predictions = {}
    for name in ("a", "b"):
        train_feats = uniform_quantize(features[name]["train"], precision)
        val_feats = uniform_quantize(features[name]["val"], precision)
        test_feats = uniform_quantize(features[name]["test"], precision)
        stacked = np.vstack([train_feats, val_feats, test_feats])
        n_train, n_val = len(train_feats), len(val_feats)
        model = _FeatureClassifier(stacked, config=cfg)
        model.fit(
            _as_row_dataset(splits.train, 0),
            _as_row_dataset(splits.val, n_train),
        )
        predictions[name] = model.predict(_as_row_dataset(splits.test, n_train + n_val))
    return prediction_disagreement(predictions["a"], predictions["b"])
