"""One counter surface for the whole engine: ``repro.engine.stats()``.

The engine's observability used to be scattered attribute reads: store
counters via ``store.stat(kind)``, decomposition-cache counters via
``cache.stats``, pipeline build/train counters, and the scheduler's warm-up
telemetry via ``engine.last_warmup``.  :func:`stats` collects all of them
into one plain, JSON-able dict so the serving layer's ``/metrics`` endpoint,
the benchmarks, and the tests read the same snapshot the same way.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import TYPE_CHECKING, Mapping

from repro.engine.store import ArtifactStore
from repro.telemetry.metrics import telemetry_snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.engine.scheduler import GridEngine
    from repro.instability.pipeline import InstabilityPipeline
    from repro.measures.base import DecompositionCache
    from repro.monitor.scheduler import InstabilityMonitor

__all__ = ["stats"]


def stats(
    source: "GridEngine | InstabilityPipeline | ArtifactStore | None" = None,
    *,
    store: ArtifactStore | None = None,
    pipeline: "InstabilityPipeline | None" = None,
    engine: "GridEngine | None" = None,
    caches: "Mapping[str, DecompositionCache] | None" = None,
    coordinator: "ClusterCoordinator | None" = None,
    monitor: "InstabilityMonitor | None" = None,
) -> dict:
    """Aggregate engine counters into one JSON-able snapshot.

    ``source`` is a convenience positional: pass a :class:`GridEngine`, an
    :class:`~repro.instability.pipeline.InstabilityPipeline` or a bare
    :class:`~repro.engine.store.ArtifactStore` and the related components are
    resolved from it (an engine implies its pipeline and store; a pipeline
    implies its store).  Keyword arguments override or extend the resolution;
    ``caches`` maps display names to
    :class:`~repro.measures.base.DecompositionCache` instances (e.g. a
    serving process's long-lived cache); ``coordinator`` adds a cluster
    section (leases issued/expired/reassigned/speculative, checkpoint and
    resume counters, drain state, per-worker throughput plus the monotonic
    ``fleet`` aggregates that survive idle-worker eviction); ``monitor``
    adds the online instability monitor's snapshot (versions, ingest and
    retrain counters, last drift report).

    The snapshot always contains the keys ``store``, ``pipeline``,
    ``decomposition_caches``, ``warmup``, ``cluster``, ``monitor`` and
    ``telemetry`` (empty/None when the component is absent; ``telemetry``
    summarises the process-wide latency histograms), so consumers can
    index without existence checks.
    """
    if source is not None:
        if isinstance(source, ArtifactStore):
            store = store or source
        elif hasattr(source, "pipeline"):      # GridEngine
            engine = engine or source
        else:                                   # InstabilityPipeline
            pipeline = pipeline or source
    if engine is not None:
        pipeline = pipeline or engine.pipeline
    if pipeline is not None:
        store = store or pipeline.store

    snapshot: dict = {
        "store": {},
        "pipeline": {},
        "decomposition_caches": {},
        "warmup": None,
        "cluster": None,
        "monitor": None,
        "telemetry": telemetry_snapshot(),
    }
    if store is not None:
        snapshot["store"] = {
            kind: asdict(stat) for kind, stat in sorted(store.stats.items())
        }
        snapshot["store_persistent"] = store.persistent
        snapshot["store_io"] = store.io_counters()
        snapshot["store_tiers"] = store.tier_stats()
        snapshot["store_replication"] = store.replication_stats()
        snapshot["store_replicas"] = store.replica_counters()
        snapshot["store_peers"] = store.peer_health()
    if pipeline is not None:
        snapshot["pipeline"] = {
            "corpus_build_count": pipeline.corpus_build_count,
            "embedding_train_count": pipeline.embedding_train_count,
            "downstream_train_count": pipeline.downstream_train_count,
        }
    if caches:
        snapshot["decomposition_caches"] = {
            name: dict(cache.stats) for name, cache in caches.items()
        }
    if engine is not None:
        snapshot["warmup"] = engine.last_warmup
    if coordinator is not None:
        snapshot["cluster"] = coordinator.snapshot()
    if monitor is not None:
        snapshot["monitor"] = monitor.snapshot()
    return snapshot
