"""Tables 9a-9c: correlation and selection results on the remaining sentiment tasks."""

from repro.experiments import table1_correlation, table2_selection, table3_budget
from repro.instability.grid import GridRunner


def test_table9_extended(benchmark, pipeline):
    def build():
        records = GridRunner(pipeline).run(
            tasks=("mr", "mpqa"), algorithms=("mc",), with_measures=True
        )
        return (
            table1_correlation.summarize(records),
            table2_selection.summarize(records),
            table3_budget.summarize(records),
        )

    correlation, selection, budget = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(correlation.to_table())
    print()
    print(selection.to_table())
    print()
    print(budget.to_table())
    assert len(correlation.rows) > 0
    assert len(selection.rows) > 0
    assert len(budget.rows) > 0
