"""Logging configuration for the library.

Library modules call :func:`get_logger` and never configure the root logger;
scripts (examples / experiment runner) call :func:`configure_logging` once.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging"]

_LIBRARY_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root."""
    if name.startswith(_LIBRARY_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_ROOT}.{name}")


def configure_logging(level: int | str = logging.INFO, stream=None) -> logging.Logger:
    """Attach a stream handler with a concise format to the library root logger."""
    logger = logging.getLogger(_LIBRARY_ROOT)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        logger.addHandler(handler)
    return logger
