"""Benchmark the replicated artifact fabric: fan-out cost and fault drills.

Times raw ``put``/``get`` latency of a 2-way :class:`ReplicatedBackend` over
local disk replicas against a single ``disk`` backend (the price of N-way
durability), then drills the three fault paths the fabric exists for:

1. **degraded writes** -- one replica partitioned; every put must still land
   on the survivor without stalling, and queue exactly one hint per write;
2. **read-repair**     -- one replica starts empty; every read must hit the
   survivor and write the copy back, restoring full coverage;
3. **hint drain**      -- the partitioned replica heals; queued hints must
   drain into it until it holds every artifact.

Each drill asserts its counters exactly (``hints_queued``/``repairs``/
``hints_drained`` equal to the op count, recovered replica at full
coverage), so CI can smoke the invariants, and the script exits non-zero
if replication more than cripples write latency versus two sequential
single-backend puts.

Usage::

    PYTHONPATH=src python benchmarks/bench_replication.py --quick
    PYTHONPATH=src python benchmarks/bench_replication.py --ops 500
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.analysis.reporting import format_table  # noqa: E402
from repro.engine.backends import DiskBackend, ReplicatedBackend  # noqa: E402
from repro.engine.faults import FaultyBackend  # noqa: E402

from conftest import write_benchmark_results  # noqa: E402


def _time_ops(fn, names: list[str]) -> list[float]:
    latencies = []
    for name in names:
        start = time.perf_counter()
        fn(name)
        latencies.append(time.perf_counter() - start)
    return latencies


def _mean_us(latencies: list[float]) -> float:
    return 1e6 * statistics.mean(latencies)


def _names(tag: str, n_ops: int) -> list[str]:
    return [f"bench-{tag}-{i}.json" for i in range(n_ops)]


def run_benchmark(quick: bool, n_ops: int) -> list[dict]:
    n_ops = max(n_ops, 8)
    rng = np.random.default_rng(0)
    # Valid JSON, since the fabric integrity-validates payloads by suffix.
    payload = json.dumps(
        {"values": rng.standard_normal(128 if quick else 2048).tolist()}
    ).encode("utf-8")
    workdir = Path(tempfile.mkdtemp(prefix="bench-replication-"))
    rows = []

    # -- baseline: one plain disk backend ------------------------------------
    single = DiskBackend(workdir / "single")
    names = _names("single", n_ops)
    single_put = _mean_us(_time_ops(lambda n: single.put("bench", n, payload), names))
    single_get = _mean_us(_time_ops(lambda n: single.get("bench", n), names))
    rows.append({"phase": "single-disk", "put_us": round(single_put, 1),
                 "get_us": round(single_get, 1), "ops": n_ops, "counters": "-"})

    # -- 2-way replication: fan-out write overhead ---------------------------
    healthy = ReplicatedBackend(
        [DiskBackend(workdir / "healthy-a"), DiskBackend(workdir / "healthy-b")]
    )
    names = _names("healthy", n_ops)
    repl_put = _mean_us(_time_ops(lambda n: healthy.put("bench", n, payload), names))
    repl_get = _mean_us(_time_ops(lambda n: healthy.get("bench", n), names))
    rows.append({"phase": "replicated-2way", "put_us": round(repl_put, 1),
                 "get_us": round(repl_get, 1), "ops": n_ops, "counters": "-"})
    for name in names[:4]:
        assert healthy.get("bench", name) == payload

    # -- drill 1: degraded writes never stall --------------------------------
    dead = FaultyBackend(DiskBackend(workdir / "degraded-dead"))
    dead.partition()
    degraded = ReplicatedBackend([dead, DiskBackend(workdir / "degraded-live")])
    names = _names("degraded", n_ops)
    degr_put = _mean_us(_time_ops(lambda n: degraded.put("bench", n, payload), names))
    assert degraded.hints_queued == n_ops, (
        f"expected one hint per degraded write: {degraded.hints_queued} != {n_ops}"
    )
    degr_get = _mean_us(_time_ops(lambda n: degraded.get("bench", n), names))
    rows.append({"phase": "degraded-writes", "put_us": round(degr_put, 1),
                 "get_us": round(degr_get, 1), "ops": n_ops,
                 "counters": f"hints_queued={degraded.hints_queued}"})

    # -- drill 2: read-repair restores an empty replica ----------------------
    empty = DiskBackend(workdir / "repair-empty")
    full = DiskBackend(workdir / "repair-full")
    names = _names("repair", n_ops)
    for name in names:
        full.put("bench", name, payload)
    repairing = ReplicatedBackend([empty, full])
    repair_get = _mean_us(_time_ops(lambda n: repairing.get("bench", n), names))
    assert repairing.repairs == n_ops, (
        f"expected one repair per read: {repairing.repairs} != {n_ops}"
    )
    for name in names:  # coverage restored: the cold replica holds every copy
        assert empty.get("bench", name) == payload
    rows.append({"phase": "read-repair", "put_us": "-",
                 "get_us": round(repair_get, 1), "ops": n_ops,
                 "counters": f"repairs={repairing.repairs}"})

    # -- drill 3: hinted handoff drains into the healed replica --------------
    flappy = FaultyBackend(DiskBackend(workdir / "handoff-flappy"))
    flappy.partition()
    handoff = ReplicatedBackend(
        [flappy, DiskBackend(workdir / "handoff-live")], max_hints=2 * n_ops
    )
    names = _names("handoff", n_ops)
    for name in names:
        handoff.put("bench", name, payload)
    assert handoff.hints_queued == n_ops
    flappy.heal()
    start = time.perf_counter()
    handoff.drain_hints()
    drain_us = 1e6 * (time.perf_counter() - start) / n_ops
    assert handoff.hints_drained == n_ops, (
        f"expected every hint to drain: {handoff.hints_drained} != {n_ops}"
    )
    assert handoff.hints_pending == 0
    for name in names:  # the healed replica caught up from its hints alone
        assert flappy.get("bench", name) == payload
    rows.append({"phase": "hint-drain", "put_us": round(drain_us, 1),
                 "get_us": "-", "ops": n_ops,
                 "counters": f"hints_drained={handoff.hints_drained}"})

    # Fan-out to N replicas should cost about N sequential puts, not more:
    # a grossly super-linear factor means the fabric itself is the bottleneck.
    assert repl_put < 8 * max(single_put, 1.0), (
        f"2-way replicated put grossly super-linear: "
        f"{repl_put:.1f}us vs single {single_put:.1f}us"
    )
    # A partitioned replica must not stall writes (no timeouts, no retries in
    # the local path): degraded puts stay within a small factor of healthy.
    assert degr_put < 10 * max(repl_put, 1.0), (
        f"degraded writes stall: {degr_put:.1f}us vs healthy {repl_put:.1f}us"
    )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small payloads, few ops")
    parser.add_argument("--ops", type=int, default=None, help="operations per phase")
    parser.add_argument("--output", default=None, help="write results JSON here")
    args = parser.parse_args(argv)

    n_ops = args.ops if args.ops is not None else (32 if args.quick else 200)
    rows = run_benchmark(args.quick, n_ops)
    print(format_table(rows, title="replicated artifact fabric"))
    results = write_benchmark_results("replication", rows=rows, output=args.output)
    print(f"results -> {results}")
    print("replication invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
