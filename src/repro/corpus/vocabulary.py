"""Vocabulary: mapping between word strings and integer ids with counts.

The paper restricts embedding training to the top-400k most frequent words and
restricts the embedding-distance measures to the top-10k; :class:`Vocabulary`
supports both via :meth:`most_common` and :meth:`truncate`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Vocabulary"]

UNK_TOKEN = "<unk>"


class Vocabulary:
    """Word <-> id mapping ordered by descending frequency.

    Ids are assigned in frequency order (id 0 = most frequent word), which
    matches how the paper's measures take "the top 10k most frequent words":
    they simply slice the first 10k rows of the embedding matrix.
    """

    def __init__(self, counts: dict[str, int] | Counter | None = None, *, min_count: int = 1):
        self._counts: Counter = Counter()
        self._words: list[str] = []
        self._index: dict[str, int] = {}
        self.min_count = int(min_count)
        if counts:
            self._counts.update(counts)
            self._rebuild()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_documents(
        cls, documents: Iterable[Sequence[str]], *, min_count: int = 1, max_size: int | None = None
    ) -> "Vocabulary":
        """Build a vocabulary from an iterable of tokenised documents."""
        counts: Counter = Counter()
        for doc in documents:
            counts.update(doc)
        vocab = cls(counts, min_count=min_count)
        if max_size is not None:
            vocab = vocab.truncate(max_size)
        return vocab

    def _rebuild(self) -> None:
        items = [(w, c) for w, c in self._counts.items() if c >= self.min_count]
        # Sort by count descending, then lexicographically for determinism.
        items.sort(key=lambda wc: (-wc[1], wc[0]))
        self._words = [w for w, _ in items]
        self._index = {w: i for i, w in enumerate(self._words)}

    def update(self, tokens: Iterable[str]) -> None:
        """Add token counts and re-derive the id ordering."""
        self._counts.update(tokens)
        self._rebuild()

    def truncate(self, max_size: int) -> "Vocabulary":
        """Return a new vocabulary restricted to the ``max_size`` most frequent words."""
        if max_size <= 0:
            raise ValueError(f"max_size must be positive, got {max_size}")
        kept = self._words[:max_size]
        return Vocabulary({w: self._counts[w] for w in kept}, min_count=self.min_count)

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        return word in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._words)

    def __getitem__(self, word: str) -> int:
        return self._index[word]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._words == other._words

    def word_to_id(self, word: str, default: int | None = None) -> int | None:
        """Return the id of ``word`` (or ``default`` when unknown)."""
        return self._index.get(word, default)

    def id_to_word(self, idx: int) -> str:
        return self._words[idx]

    @property
    def words(self) -> list[str]:
        """Words in id order (most frequent first)."""
        return list(self._words)

    def count(self, word: str) -> int:
        return self._counts.get(word, 0)

    @property
    def counts(self) -> np.ndarray:
        """Counts aligned with ids, as an int64 array."""
        return np.array([self._counts[w] for w in self._words], dtype=np.int64)

    @property
    def total_count(self) -> int:
        return int(self.counts.sum()) if self._words else 0

    def most_common(self, n: int | None = None) -> list[tuple[str, int]]:
        words = self._words if n is None else self._words[:n]
        return [(w, self._counts[w]) for w in words]

    # -- encoding ------------------------------------------------------------

    def encode(self, tokens: Sequence[str], *, drop_unknown: bool = True) -> np.ndarray:
        """Map tokens to ids.

        Unknown words are dropped by default (the paper's pipelines ignore
        out-of-vocabulary words when the embedding is fixed); with
        ``drop_unknown=False`` they are mapped to ``-1`` so the caller can
        handle them (e.g. the subword model hashes them).
        """
        if drop_unknown:
            ids = [self._index[t] for t in tokens if t in self._index]
        else:
            ids = [self._index.get(t, -1) for t in tokens]
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Sequence[int]) -> list[str]:
        return [self._words[i] for i in ids]

    # -- intersection --------------------------------------------------------

    def intersect(self, other: "Vocabulary") -> list[str]:
        """Words present in both vocabularies, in this vocabulary's frequency order.

        The paper compares Wiki'17 and Wiki'18 embeddings row-by-row, which
        requires restricting both matrices to the common vocabulary.
        """
        return [w for w in self._words if w in other]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Vocabulary(size={len(self)}, total_count={self.total_count})"
