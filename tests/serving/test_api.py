"""End-to-end HTTP tests of the serving API: a real asyncio server on an
ephemeral port, exercised through ``http.client`` -- all five endpoints,
NDJSON streaming, and error mapping."""

import asyncio
import contextlib
import http.client
import json
import socket
import threading
import warnings

import pytest

from repro.serving import StabilityService
from repro.serving.api import StabilityAPIServer, quick_serve_config


@contextlib.contextmanager
def live_server(service, **kwargs):
    """A live server on an ephemeral port, with its own event-loop thread."""
    api = StabilityAPIServer(service, port=0, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    try:
        yield api
    finally:
        asyncio.run_coroutine_threadsafe(api.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


@pytest.fixture(scope="module")
def server():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(quick_serve_config())
    with live_server(service) as api:
        yield api
    service.close()


def request(server, path, *, method="GET", body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
    headers = dict(headers or {})
    payload = None
    if body is not None:
        payload = json.dumps(body)
        headers["Content-Type"] = "application/json"
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        data = response.read()
    conn.close()
    return response, data


def get_json(server, path, **kwargs):
    response, data = request(server, path, **kwargs)
    return response.status, json.loads(data)


class TestHealthz:
    def test_ok(self, server):
        status, payload = get_json(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["algorithms"] == ["svd"]


class TestMeasure:
    def test_get_query_params(self, server):
        status, payload = get_json(server, "/measure?algorithm=svd&dim=4&precision=1")
        assert status == 200
        assert payload["dim"] == 4 and payload["precision"] == 1
        assert set(payload["measures"]) == {
            "eis", "1-knn", "pip", "1-eigenspace-overlap", "semantic-displacement"
        }

    def test_post_json_body_equals_get(self, server):
        _, via_get = get_json(server, "/measure?algorithm=svd&dim=4&precision=1")
        status, via_post = get_json(
            server, "/measure", method="POST",
            body={"algorithm": "svd", "dim": 4, "precision": 1},
        )
        assert status == 200
        assert via_post == via_get         # bit-identical, served from cache

    def test_missing_parameter_is_400(self, server):
        status, payload = get_json(server, "/measure?algorithm=svd&dim=4")
        assert status == 400
        assert "precision" in payload["error"]

    def test_unknown_algorithm_is_400(self, server):
        status, payload = get_json(server, "/measure?algorithm=nope&dim=4&precision=1")
        assert status == 400
        assert "nope" in payload["error"]


class TestSelect:
    def test_recommendation(self, server):
        status, payload = get_json(server, "/select?budget=128")
        assert status == 200
        assert payload["criterion"] == "eis"
        assert payload["selected"]["memory_bits_per_word"] <= 128

    def test_explicit_axes(self, server):
        status, payload = get_json(
            server, "/select?budget=1000&criterion=high-precision&dims=4&precisions=1,32"
        )
        assert status == 200
        assert payload["selected"] == {
            "dim": 4, "precision": 32, "memory_bits_per_word": 128,
            "score": -32.0,
        }

    def test_infeasible_budget_is_400(self, server):
        status, payload = get_json(server, "/select?budget=1")
        assert status == 400
        assert "fits" in payload["error"]


class TestGridStreaming:
    def test_ndjson_stream_matches_engine_batch(self, server):
        response, data = request(server, "/grid?dims=4,6&precisions=1,32")
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        lines = data.decode("utf-8").strip().splitlines()
        rows = [json.loads(line) for line in lines]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            expected = server.service.engine.run(with_measures=True)
        assert rows == [record.to_row() for record in expected]

    def test_arrival_order_stream_same_cells(self, server):
        response, data = request(server, "/grid?dims=4,6&precisions=1,32&ordered=false")
        assert response.status == 200
        rows = [json.loads(line) for line in data.decode().strip().splitlines()]
        cell = lambda r: (r["algorithm"], r["dim"], r["precision"], r["seed"], r["task"])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            expected = server.service.engine.run(with_measures=True)
        assert sorted(map(cell, rows)) == sorted(
            cell(record.to_row()) for record in expected
        )

    def test_bad_axis_is_400(self, server):
        status, payload = get_json(server, "/grid?dims=four")
        assert status == 400
        assert "dims" in payload["error"]

    def test_unknown_algorithm_is_400_not_a_broken_stream(self, server):
        # Axis validation is eager: the 400 lands *before* the streaming 200
        # is committed, so scripts checking the status code see the failure.
        status, payload = get_json(server, "/grid?algorithms=nope")
        assert status == 400
        assert "nope" in payload["error"]

    def test_duplicate_axis_values_are_400(self, server):
        status, payload = get_json(server, "/grid?dims=4,4")
        assert status == 400
        assert "duplicate" in payload["error"]


class TestKeepAlive:
    def test_connection_reused_across_requests(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("GET", "/healthz")
        first = conn.getresponse()
        first.read()
        assert first.getheader("Connection") == "keep-alive"
        sock = conn.sock
        conn.request("GET", "/metrics")
        second = conn.getresponse()
        second.read()
        assert second.status == 200
        assert conn.sock is sock, "server closed a keep-alive connection"
        conn.close()

    def test_connection_close_is_honoured(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("GET", "/healthz", headers={"Connection": "close"})
        response = conn.getresponse()
        response.read()
        assert response.getheader("Connection") == "close"
        conn.close()


class TestArtifactsEndpoint:
    def test_put_head_get_delete_round_trip(self, server):
        payload = b'{"eis": 0.5}'
        # PUT carries raw bytes, not JSON: drive http.client directly.
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("PUT", "/artifacts/testkind/cafe0123.json", body=payload,
                     headers={"Content-Type": "application/octet-stream"})
        response = conn.getresponse()
        assert response.status == 200
        assert json.loads(response.read())["bytes"] == len(payload)

        conn.request("HEAD", "/artifacts/testkind/cafe0123.json")
        head = conn.getresponse()
        head.read()
        assert head.status == 200

        conn.request("GET", "/artifacts/testkind/cafe0123.json")
        got = conn.getresponse()
        data = got.read()
        assert got.status == 200
        assert got.getheader("Content-Type") == "application/octet-stream"
        # A memory-only node decodes peer payloads into its object tier and
        # re-encodes on the way out: equality is semantic, not byte-exact
        # (disk-backed nodes serve byte-exact copies; see test_peer_store).
        assert json.loads(data) == json.loads(payload)

        conn.request("DELETE", "/artifacts/testkind/cafe0123.json")
        deleted = conn.getresponse()
        deleted.read()
        assert deleted.status == 200

        conn.request("GET", "/artifacts/testkind/cafe0123.json")
        missing = conn.getresponse()
        missing.read()
        assert missing.status == 404
        conn.close()

    def test_serves_memory_only_artifacts(self, server):
        # The module server has no disk tier; /measure artifacts live only in
        # the object memory tier and are encoded on the fly for peers.
        get_json(server, "/measure?algorithm=svd&dim=4&precision=1")
        store = server.service.store
        key = next(iter(store.memory_entries("measures")))
        response, data = request(server, f"/artifacts/measures/{key}.json")
        assert response.status == 200
        assert json.loads(data).keys() == {
            "eis", "1-knn", "pip", "1-eigenspace-overlap", "semantic-displacement"
        }

    def test_traversal_and_junk_names_are_404(self, server):
        for path in (
            "/artifacts/..%2F..%2Fetc/passwd.json",
            "/artifacts/kind/key.tmp",
            "/artifacts/kind/.hidden.json",
            "/artifacts/kind/sub%2Fdir.json",
            "/artifacts/kind",
        ):
            status, payload = get_json(server, path)
            assert status == 404, path

    def test_put_without_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("PUT", "/artifacts/testkind/feed0123.json")
        response = conn.getresponse()
        response.read()
        assert response.status == 400
        conn.close()


class TestReadBounds:
    """Slow and excess clients are dropped instead of pinning the server."""

    def test_trickled_request_is_dropped_after_read_timeout(self, server):
        # A client that sends a request line plus a huge Content-Length and
        # then stalls must be disconnected once read_timeout expires --
        # without the bound it would pin the buffered bytes and the
        # connection task forever.
        with live_server(server.service, read_timeout=0.3) as api:
            sock = socket.create_connection(("127.0.0.1", api.port), timeout=30)
            sock.sendall(
                b"PUT /artifacts/kind/aaaa.npz HTTP/1.1\r\n"
                b"Content-Length: 1000000\r\n\r\npartial"
            )
            sock.settimeout(30)
            # EOF (or a reset) with no response bytes: the server dropped
            # the connection instead of waiting for the rest of the body.
            try:
                data = sock.recv(1024)
            except ConnectionResetError:
                data = b""
            assert data == b""
            sock.close()

    def test_connections_beyond_the_cap_get_503(self, server):
        with live_server(server.service, max_connections=1) as api:
            # One idle connection occupies the single slot...
            first = socket.create_connection(("127.0.0.1", api.port), timeout=30)
            try:
                deadline = 30.0
                # ...so the next connection must be turned away with a 503.
                # Poll briefly: the first handler task registers on accept.
                import time

                status = None
                start = time.monotonic()
                while time.monotonic() - start < deadline:
                    conn = http.client.HTTPConnection(
                        "127.0.0.1", api.port, timeout=30
                    )
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    response.read()
                    status = response.status
                    conn.close()
                    if status == 503:
                        break
                    time.sleep(0.05)
                assert status == 503
            finally:
                first.close()


class TestMetricsAndErrors:
    def test_metrics_counts_the_traffic(self, server):
        status, payload = get_json(server, "/metrics")
        assert status == 200
        serving = payload["serving"]
        assert serving["requests_measure"] >= 1
        assert serving["requests_select"] >= 1
        assert serving["requests_grid"] >= 1
        assert serving["records_streamed"] >= 4
        assert "store" in payload and "measures" in payload["store"]
        assert payload["pipeline"]["corpus_build_count"] == 1

    def test_unknown_path_is_404(self, server):
        status, payload = get_json(server, "/nope")
        assert status == 404
        assert "/measure" in payload["paths"]

    def test_unsupported_method_is_405(self, server):
        status, payload = get_json(server, "/healthz", method="PUT")
        assert status == 405

    def test_malformed_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("POST", "/measure", body="{not json", headers={})
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_malformed_content_length_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.putrequest("GET", "/healthz", skip_accept_encoding=True)
        conn.putheader("Content-Length", "abc")
        conn.endheaders()
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "Content-Length" in payload["error"]

    def test_oversized_headers_are_431(self, server):
        # A fast client streaming endless header lines must be cut off at
        # the header-size cap, not buffered until the read timeout.
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
        filler = b"x-filler: " + b"a" * 1000 + b"\r\n"
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n")
            for _ in range(20):                    # ~20 KB > 16 KB cap
                sock.sendall(filler)
        except (BrokenPipeError, ConnectionResetError):
            pass                                   # server already answered
        sock.settimeout(30)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = sock.recv(4096)
            if not chunk:
                break
            data += chunk
        assert b" 431 " in data.split(b"\r\n", 1)[0]
        sock.close()


class TestClusterEndpoints:
    """HTTP surface of the coordinator (full protocol in tests/cluster/)."""

    def test_lease_answers_idle_without_runs(self, server):
        status, payload = get_json(
            server, "/cluster/lease", method="POST", body={"worker": "w1"}
        )
        assert status == 200
        assert payload["status"] == "idle" and payload["retry_after"] > 0

    def test_lease_without_worker_is_400(self, server):
        status, payload = get_json(server, "/cluster/lease", method="POST", body={})
        assert status == 400
        assert "worker" in payload["error"]

    def test_heartbeat_for_unknown_lease_is_gone(self, server):
        status, payload = get_json(
            server, "/cluster/heartbeat", method="POST",
            body={"worker": "w1", "lease_id": "nope"},
        )
        assert status == 200 and payload["status"] == "gone"

    def test_complete_for_unknown_run_is_reported(self, server):
        status, payload = get_json(
            server, "/cluster/complete", method="POST",
            body={"worker": "w1", "lease_id": "x", "run_id": "run-9999",
                  "group_index": 0, "records": []},
        )
        assert status == 200 and payload["status"] == "unknown-run"

    def test_status_snapshot_and_unknown_run_404(self, server):
        status, payload = get_json(server, "/cluster/status")
        assert status == 200
        assert "counters" in payload and "workers" in payload
        status, _ = get_json(server, "/cluster/status?run_id=run-9999")
        assert status == 404

    def test_grid_config_requires_distributed(self, server):
        status, payload = get_json(
            server, "/grid", method="POST",
            body={"config": {"algorithms": ["svd"]}, "distributed": False},
        )
        assert status == 400
        assert "distributed" in payload["error"]

    def test_grid_config_must_be_an_object(self, server):
        status, payload = get_json(server, "/grid?distributed=true&config=notjson")
        assert status == 400
        assert "config" in payload["error"]

    def test_grid_bad_config_field_is_400(self, server):
        status, payload = get_json(
            server, "/grid", method="POST",
            body={"distributed": True, "config": {"not_a_field": 1}},
        )
        assert status == 400


class TestAbandonedGridCancellation:
    """A client hanging up mid-/grid stops the computation (ROADMAP item)."""

    def test_socket_close_cancels_the_stream_at_a_record_boundary(
        self, server, monkeypatch
    ):
        import time as time_module

        from repro.instability.grid import GridRecord

        total = 500
        produced: list[int] = []
        closed = threading.Event()

        def fake_run_iter(**kwargs):
            def gen():
                try:
                    for index in range(total):
                        produced.append(index)
                        yield GridRecord(
                            algorithm="svd", task="sst2", dim=4, precision=1,
                            seed=index, disagreement=0.1,
                            accuracy_a=0.9, accuracy_b=0.9, measures={},
                        )
                        time_module.sleep(0.02)
                finally:
                    closed.set()
            return gen()

        monkeypatch.setattr(server.service.engine, "run_iter", fake_run_iter)
        before = server.service.metrics()["serving"]["grids_cancelled"]

        sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
        sock.sendall(b"GET /grid?dims=4&precisions=1 HTTP/1.1\r\nHost: t\r\n\r\n")
        sock.settimeout(30)
        data = b""
        while b"\r\n\r\n" not in data or b"algorithm" not in data:
            data += sock.recv(4096)              # headers + at least one record
        sock.close()                             # abandon the stream

        # The EOF watchdog cancels the grid: the producer stops at the next
        # record boundary and the generator's cleanup runs -- long before all
        # 500 paced records (10s of compute) would have been produced.
        assert closed.wait(timeout=15), "record generator was never closed"
        assert len(produced) < total
        serving = server.service.metrics()["serving"]
        assert serving["grids_cancelled"] == before + 1
        assert serving["grids_inflight"] == 0

    def test_completed_stream_is_not_counted_cancelled(self, server):
        before = server.service.metrics()["serving"]["grids_cancelled"]
        response, data = request(server, "/grid?dims=4&precisions=1")
        assert response.status == 200
        assert data.decode().strip().splitlines()
        assert server.service.metrics()["serving"]["grids_cancelled"] == before


class TestMeasureFastAndETag:
    def test_fast_measure_served_with_bounds(self, server):
        response, data = request(
            server, "/measure?algorithm=svd&dim=4&precision=1&fast=true&tolerance=10"
        )
        payload = json.loads(data)
        assert response.status == 200
        assert payload["precision_mode"] == "fast"
        assert payload["escalated"] is False
        assert set(payload["error_bounds"]) == set(payload["measures"])
        assert response.getheader("ETag")

    def test_if_none_match_revalidates_304(self, server):
        path = "/measure?algorithm=svd&dim=4&precision=1&fast=true&tolerance=10"
        first, _ = request(server, path)
        etag = first.getheader("ETag")
        second, body = request(server, path, headers={"If-None-Match": etag})
        assert second.status == 304
        assert body == b""
        assert second.getheader("ETag") == etag

    def test_exact_mode_304_too(self, server):
        path = "/measure?algorithm=svd&dim=4&precision=1"
        first, _ = request(server, path)
        etag = first.getheader("ETag")
        second, body = request(server, path, headers={"If-None-Match": etag})
        assert second.status == 304 and body == b""

    def test_etag_distinguishes_precision_modes(self, server):
        exact, _ = request(server, "/measure?algorithm=svd&dim=4&precision=1")
        fast, _ = request(
            server, "/measure?algorithm=svd&dim=4&precision=1&fast=true&tolerance=10"
        )
        assert exact.getheader("ETag") != fast.getheader("ETag")

    def test_stale_etag_still_answers_200(self, server):
        path = "/measure?algorithm=svd&dim=4&precision=1"
        response, data = request(server, path, headers={"If-None-Match": '"stale"'})
        assert response.status == 200
        assert json.loads(data)["measures"]

    def test_escalation_is_bit_identical_to_exact(self, server):
        _, exact = get_json(server, "/measure?algorithm=svd&dim=4&precision=1")
        status, escalated = get_json(
            server, "/measure?algorithm=svd&dim=4&precision=1&fast=true&tolerance=1e-12"
        )
        assert status == 200
        assert escalated["precision_mode"] == "exact"
        assert escalated["escalated"] is True
        assert escalated["measures"] == exact["measures"]
        # The plain exact response is unchanged by the fast path's existence.
        assert "precision_mode" not in exact

    def test_fast_counters_in_metrics(self, server):
        status, metrics = get_json(server, "/metrics")
        assert status == 200
        assert metrics["serving"]["fast_hits"] >= 1
        assert metrics["serving"]["fast_escalations"] >= 1

    def test_bad_tolerance_is_400(self, server):
        status, payload = get_json(
            server, "/measure?algorithm=svd&dim=4&precision=1&fast=true&tolerance=nope"
        )
        assert status == 400
        assert "tolerance" in payload["error"]


def _parse_batch_frames(data):
    """Decode the /artifacts/batch framing into {(kind, name): bytes | None}."""
    frames = {}
    offset = 0
    while offset < len(data):
        newline = data.index(b"\n", offset)
        header = json.loads(data[offset:newline])
        offset = newline + 1
        payload = data[offset:offset + header["bytes"]]
        offset += header["bytes"]
        assert data[offset:offset + 1] == b"\n"
        offset += 1
        frames[(header["kind"], header["name"])] = (
            payload if header["found"] else None
        )
    return frames


class TestArtifactBatch:
    A = ("demo", "a" * 24 + ".json")
    B = ("demo", "b" * 24 + ".json")
    MISSING = ("demo", "f" * 24 + ".json")

    @pytest.fixture(autouse=True)
    def _seed_artifacts(self, server):
        server.service.store.put_bytes(*self.A, b'{"which": "a"}')
        server.service.store.put_bytes(*self.B, b'{"which": "b"}')

    def test_batch_multi_get_round_trip(self, server):
        manifest = {"items": [
            {"kind": k, "name": n} for k, n in (self.A, self.B, self.MISSING)
        ]}
        response, data = request(
            server, "/artifacts/batch", method="POST", body=manifest
        )
        assert response.status == 200
        frames = _parse_batch_frames(data)
        # The store may re-encode JSON payloads it memoised; compare to what
        # the single-artifact API would have served.
        assert frames[self.A] == server.service.store.get_bytes(*self.A)
        assert frames[self.B] == server.service.store.get_bytes(*self.B)
        assert json.loads(frames[self.A]) == {"which": "a"}
        assert frames[self.MISSING] is None

    def test_batch_rejects_malformed_manifests(self, server):
        for body in ({}, {"items": []}, {"items": "nope"}):
            status, payload = get_json(
                server, "/artifacts/batch", method="POST", body=body
            )
            assert status == 400, body
            assert "items" in payload["error"]

    def test_batch_rejects_traversal_names(self, server):
        status, payload = get_json(
            server, "/artifacts/batch", method="POST",
            body={"items": [{"kind": "demo", "name": "../../etc/passwd"}]},
        )
        assert status == 400
        assert "bad batch item" in payload["error"]

    def test_batch_get_is_post_only(self, server):
        status, payload = get_json(server, "/artifacts/batch")
        assert status == 405

    def test_remote_backend_get_many(self, server):
        from repro.engine.backends import RemoteBackend

        remote = RemoteBackend(f"http://127.0.0.1:{server.port}")
        try:
            got = remote.get_many([self.A, self.B, self.MISSING])
            assert got[self.A] == server.service.store.get_bytes(*self.A)
            assert got[self.B] == server.service.store.get_bytes(*self.B)
            assert got[self.MISSING] is None
            assert remote.stats.hits == 2 and remote.stats.misses == 1
            assert remote.stats.errors == 0
        finally:
            remote.close()

    def test_get_many_falls_back_per_item_on_batch_failure(self, server, monkeypatch):
        from repro.engine.backends import RemoteBackend

        remote = RemoteBackend(f"http://127.0.0.1:{server.port}")
        monkeypatch.setattr(remote, "_get_batch", lambda page: None)
        try:
            got = remote.get_many([self.A, self.MISSING])
            assert got[self.A] == server.service.store.get_bytes(*self.A)
            assert got[self.MISSING] is None
        finally:
            remote.close()
