"""Table 3: dimension-precision selection under fixed memory budgets."""

from repro.experiments import table3_budget


def test_table3_budget(benchmark, grid_records):
    result = benchmark.pedantic(
        lambda: table3_budget.summarize(grid_records), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) > 0
    distances = result.summary["mean_distance_by_criterion"]
    # Distances to the oracle are non-negative and the measure-based criteria
    # are no worse than the worst naive baseline on average.
    assert all(d >= 0 for d in distances.values())
    worst_naive = max(distances["high-precision"], distances["low-precision"])
    assert min(distances["eis"], distances["1-knn"]) <= worst_naive + 1e-9
