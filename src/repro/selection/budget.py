"""Dimension-precision selection under a memory budget (Tables 3 and 11).

Setting: for every memory budget (bits/word) that admits at least two distinct
dimension-precision combinations, a criterion picks one combination; the
reported metric is the absolute difference between the downstream
disagreement of the picked combination and that of the most stable ("oracle")
combination, averaged over budgets and seeds (Table 3) or maximised
(worst-case, Table 11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.instability.grid import GridRecord
from repro.selection.criteria import SelectionCriterion

__all__ = [
    "BudgetSelectionResult",
    "budget_selection_error",
    "group_by_budget",
    "recommend_under_budget",
]


@dataclass(frozen=True)
class BudgetSelectionResult:
    """Distance-to-oracle statistics of one criterion on the budget task."""

    criterion: str
    algorithm: str
    task: str
    mean_distance_to_oracle: float
    worst_case_distance: float
    n_budgets: int


def group_by_budget(records: list[GridRecord]) -> dict[int, list[GridRecord]]:
    """Group records by memory budget, keeping only budgets with >= 2 choices."""
    budgets: dict[int, list[GridRecord]] = {}
    for rec in records:
        budgets.setdefault(rec.memory, []).append(rec)
    return {
        m: group
        for m, group in sorted(budgets.items())
        if len({(r.dim, r.precision) for r in group}) >= 2
    }


def recommend_under_budget(
    candidates: list[GridRecord],
    budget_bits: int,
    criterion: SelectionCriterion,
) -> GridRecord:
    """Pick the candidate the criterion prefers among those fitting a budget.

    This is the *operational* face of the paper's selection study: given grid
    records whose measures are populated (one per dimension-precision
    combination, same algorithm and seed) and a memory budget in bits per
    word, return the record the criterion scores lowest among the feasible
    ones.  The evaluation machinery above quantifies how far such picks land
    from the oracle; this function is what a deployment (the serving layer's
    ``/select`` endpoint) actually calls.
    """
    feasible = [r for r in candidates if r.memory <= budget_bits]
    if not feasible:
        smallest = min((r.memory for r in candidates), default=None)
        raise ValueError(
            f"no dimension-precision combination fits {budget_bits} bits/word"
            + (f"; the smallest candidate needs {smallest}" if smallest else "")
        )
    return criterion.select(feasible)


def budget_selection_error(
    records: list[GridRecord],
    criterion: SelectionCriterion,
) -> list[BudgetSelectionResult]:
    """Evaluate a criterion on the fixed-memory-budget selection task."""
    # Split by (algorithm, task, seed) first -- selection happens within one
    # algorithm/seed, exactly as the paper compares pairs of the same seed.
    grouped: dict[tuple[str, str, int], list[GridRecord]] = {}
    for rec in records:
        grouped.setdefault((rec.algorithm, rec.task, rec.seed), []).append(rec)

    stats: dict[tuple[str, str], dict[str, list[float]]] = {}
    for (algorithm, task, _seed), group in grouped.items():
        budgets = group_by_budget(group)
        if not budgets:
            continue
        distances: list[float] = []
        for _memory, candidates in budgets.items():
            chosen = criterion.select(candidates)
            oracle_value = min(c.disagreement for c in candidates)
            distances.append(abs(chosen.disagreement - oracle_value))
        entry = stats.setdefault((algorithm, task), {"mean": [], "worst": [], "count": []})
        entry["mean"].append(float(np.mean(distances)))
        entry["worst"].append(float(np.max(distances)))
        entry["count"].append(len(distances))

    results = []
    for (algorithm, task), entry in sorted(stats.items()):
        results.append(
            BudgetSelectionResult(
                criterion=criterion.name,
                algorithm=algorithm,
                task=task,
                mean_distance_to_oracle=float(np.mean(entry["mean"])),
                worst_case_distance=float(np.max(entry["worst"])),
                n_budgets=int(np.sum(entry["count"])),
            )
        )
    return results
