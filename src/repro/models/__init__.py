"""Downstream models trained on top of (fixed) embeddings.

The paper's downstream models are a linear bag-of-words sentiment classifier,
a Kim-style CNN sentence classifier (Appendix E.2), and a single-layer BiLSTM
NER tagger with an optional CRF decoding layer.  All are reproduced here over
the :mod:`repro.nn` autograd substrate.
"""

from repro.models.bow_classifier import BowClassifier
from repro.models.cnn_classifier import CNNClassifier
from repro.models.bilstm_tagger import BiLSTMTagger
from repro.models.trainer import TrainingConfig

__all__ = ["BiLSTMTagger", "BowClassifier", "CNNClassifier", "TrainingConfig"]
