"""Table 1: Spearman correlation of each embedding distance measure with disagreement."""

from repro.experiments import table1_correlation


def test_table1_correlation(benchmark, grid_records):
    result = benchmark.pedantic(
        lambda: table1_correlation.summarize(grid_records), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) > 0
    mean_rho = result.summary["mean_rho_by_measure"]
    # Paper shape: EIS and 1-kNN correlate more strongly than PIP loss on average.
    assert mean_rho["eis"] >= mean_rho["pip"]
    assert mean_rho["1-knn"] >= mean_rho["pip"]
