"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes a ``run(...)`` function that takes an
:class:`~repro.instability.pipeline.InstabilityPipeline` (or builds one from a
:class:`~repro.instability.pipeline.PipelineConfig`) and returns an
:class:`ExperimentResult` whose rows mirror the rows/series of the paper's
table or figure.  The benchmark files under ``benchmarks/`` are thin wrappers
that time these functions and print the resulting tables.
"""

from repro.experiments.base import (
    ExperimentResult,
    quick_pipeline_config,
    resolve_engine,
    resolve_pipeline,
)
from repro.experiments import (
    fig1_dimension,
    fig1_precision,
    fig2_memory,
    fig3_kge,
    fig4_6_sentiment,
    fig7_8_quality,
    fig11_contextual,
    fig12_subword,
    fig13_complex_models,
    fig14_finetune,
    fig15_learning_rate,
    proposition1,
    table1_correlation,
    table2_selection,
    table3_budget,
    table8_hyperparams,
    table13_randomness,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "fig1_dimension",
    "fig1_precision",
    "fig2_memory",
    "fig3_kge",
    "fig4_6_sentiment",
    "fig7_8_quality",
    "fig11_contextual",
    "fig12_subword",
    "fig13_complex_models",
    "fig14_finetune",
    "fig15_learning_rate",
    "proposition1",
    "quick_pipeline_config",
    "resolve_engine",
    "resolve_pipeline",
    "run_experiment",
    "table1_correlation",
    "table2_selection",
    "table3_budget",
    "table8_hyperparams",
    "table13_randomness",
]
