"""Tests for the regex tokenizer."""

import pytest

from repro.corpus.tokenizer import SimpleTokenizer


class TestSimpleTokenizer:
    def test_basic_split(self):
        assert SimpleTokenizer()("Hello world") == ["Hello", "world"]

    def test_keeps_case_by_default(self):
        assert SimpleTokenizer().tokenize("Barack Obama") == ["Barack", "Obama"]

    def test_lowercase_option(self):
        assert SimpleTokenizer(lowercase=True)("Hello") == ["hello"]

    def test_punctuation_is_separate(self):
        assert SimpleTokenizer()("a,b.") == ["a", ",", "b", "."]

    def test_numbers_kept_by_default(self):
        assert SimpleTokenizer()("year 2018") == ["year", "2018"]

    def test_numbers_replaced_when_disabled(self):
        tok = SimpleTokenizer(keep_numbers=False)
        assert tok("year 2018") == ["year", SimpleTokenizer.NUM_TOKEN]

    def test_empty_string(self):
        assert SimpleTokenizer()("") == []

    def test_non_string_raises(self):
        with pytest.raises(TypeError):
            SimpleTokenizer()(123)

    def test_tokenize_documents(self):
        docs = SimpleTokenizer().tokenize_documents(["a b", "c"])
        assert docs == [["a", "b"], ["c"]]
