"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` uses PEP 660 editable wheels, which require ``wheel``;
fully offline environments that lack it can fall back to
``python setup.py develop`` (or add ``src/`` to ``PYTHONPATH``).
"""
from setuptools import setup

setup()
