"""Downstream NLP tasks: synthetic sentiment analysis and NER datasets.

The paper evaluates on four binary sentiment datasets (SST-2, MR, Subj, MPQA)
and the CoNLL-2003 NER dataset.  Offline substitutes are generated from the
same synthetic topic structure that drives the corpora, so the labels are
predictable from embedding geometry the same way real task labels are
predictable from distributional semantics.
"""

from repro.tasks.datasets import (
    DatasetSplits,
    SequenceTaggingDataset,
    TextClassificationDataset,
    train_val_test_split,
)
from repro.tasks.lexicons import TaskLexicons, build_task_lexicons
from repro.tasks.ner import NER_TAGS, NERTaskConfig, generate_ner_dataset
from repro.tasks.sentiment import (
    SENTIMENT_TASKS,
    SentimentTaskConfig,
    generate_sentiment_dataset,
)

__all__ = [
    "DatasetSplits",
    "NERTaskConfig",
    "NER_TAGS",
    "SENTIMENT_TASKS",
    "SentimentTaskConfig",
    "SequenceTaggingDataset",
    "TaskLexicons",
    "TextClassificationDataset",
    "build_task_lexicons",
    "generate_ner_dataset",
    "generate_sentiment_dataset",
    "train_val_test_split",
]
