"""Distributed grid execution: a coordinator + pull-based worker fleet.

The cluster subsystem scales the grid-execution engine past one host.  A
**coordinator** (:mod:`repro.cluster.coordinator`, mounted by ``repro-serve``
as the ``/cluster/*`` endpoints) decomposes grids into the scheduler's
ancestry-aware cell groups and hands them out as heartbeat-renewed leases;
**workers** (:mod:`repro.cluster.worker`, the ``repro-worker`` entrypoint)
pull leases over stdlib HTTP, execute them through warm local pipelines whose
artifact stores mount the coordinator as a remote tier, and push records
back.  Completed records flow through the engine's ordered committer, so a
distributed run is bit-identical to the serial path and streams over the
``/grid`` NDJSON endpoint; because every artifact is content-addressed, warm
reruns train nothing anywhere in the cluster.

Clients opt in per engine (``GridEngine(coordinator_url=...)``) or process
wide (:func:`configure_default_coordinator`, the ``--coordinator`` flag of
``experiments.runner``).
"""

from repro.cluster.client import (
    configure_default_coordinator,
    default_coordinator_url,
    stream_remote_grid,
)
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterRunFailed,
    config_wire_payload,
    group_from_wire,
    group_wire_payload,
    plan_from_wire,
    plan_wire_payload,
)
from repro.cluster.worker import ClusterWorker, CoordinatorClient

__all__ = [
    "ClusterCoordinator",
    "ClusterRunFailed",
    "ClusterWorker",
    "CoordinatorClient",
    "config_wire_payload",
    "configure_default_coordinator",
    "default_coordinator_url",
    "group_from_wire",
    "group_wire_payload",
    "plan_from_wire",
    "plan_wire_payload",
    "stream_remote_grid",
]
