"""Grid scheduler: ancestry-aware ordering and parallel fan-out of grid cells.

One instability-grid cell is an (algorithm, dimension, precision, seed, task)
combination, but cells are far from independent: every precision and every
task of the same (algorithm, dimension, seed) reuses one full-precision
embedding pair, and every dimension of the same (algorithm, seed) shares the
anchor pair that defines the EIS measure.  The scheduler therefore:

1. collapses the grid into :class:`CellGroup`\\ s -- one per (algorithm,
   dimension, seed) -- so all dependent work runs next to its shared ancestor;
2. topologically orders groups so ancestors come first (the anchor-dimension
   group of each (algorithm, seed) runs before the groups that consume its
   embeddings as EIS anchors);
3. fans independent groups out over ``multiprocessing`` workers, or runs them
   serially -- the two paths are bit-identical because every artifact is a
   deterministic function of its configuration;
4. reassembles records in the canonical axis-product order, so callers see
   the same ordering regardless of execution strategy.

Worker processes rebuild the pipeline from its configuration, so only
config-reconstructible pipelines can run in parallel; pipelines built around a
custom corpus fall back to serial execution with a warning.  Handing the
engine a disk-backed :class:`~repro.engine.store.ArtifactStore` lets workers
share trained artifacts across processes and across runs.

Workers are **warm-started**: the parent packs its already-generated corpus
pair into a shared-memory :class:`~repro.engine.warmup.CorpusShipment` and the
pool initializer materialises it, so the corpus is built once per run instead
of once per worker (pinned by ``pipeline.corpus_build_count``).  Trained
embedding pairs already in the parent store's memory tier ship the same way
(:class:`~repro.engine.warmup.EmbeddingShipment`), so warm reruns fan out
without retraining even without a disk tier.  The parent's kernel policy
(``repro.linalg``) ships along so spawned workers resolve decompositions
identically.

Results can be consumed two ways: the batch :meth:`GridEngine.run` (records
reassembled in canonical axis-product order) and the streaming
:meth:`GridEngine.run_iter`, which yields records as workers complete them;
``run`` is a thin wrapper over the ordered-commit streaming path (see
:mod:`repro.engine.streaming`).
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from typing import TYPE_CHECKING, Iterator

from repro.engine.store import ArtifactStore
from repro.engine.streaming import canonical_cell_keys, commit_in_order
from repro.engine.warmup import CorpusShipment, EmbeddingShipment
from repro.linalg import KernelPolicy, configure_default_policy, default_policy
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from repro.instability.grid import GridRecord
    from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

logger = get_logger(__name__)

__all__ = ["CellGroup", "GridEngine", "GridPlan", "evaluate_group", "plan_grid", "plan_groups"]


@dataclass(frozen=True)
class CellGroup:
    """All grid cells sharing one full-precision embedding pair.

    The (algorithm, dim, seed) triple identifies the trained pair; the group
    carries every dependent precision and task so a single worker evaluates
    them together, hitting the pair (and its quantizations) in cache.
    """

    algorithm: str
    dim: int
    seed: int
    precisions: tuple[int, ...]
    tasks: tuple[str, ...]
    with_measures: bool = False
    model_type: str = "bow"

    @property
    def n_cells(self) -> int:
        return len(self.precisions) * len(self.tasks)


def plan_groups(
    algorithms: tuple[str, ...],
    dimensions: tuple[int, ...],
    precisions: tuple[int, ...],
    seeds: tuple[int, ...],
    tasks: tuple[str, ...],
    *,
    anchor_dim: int | None = None,
    with_measures: bool = False,
    model_type: str = "bow",
) -> list["CellGroup"]:
    """Collapse grid axes into cell groups, topologically ordered by ancestry.

    When measures are requested, every group of an (algorithm, seed) depends
    on that pair's anchor-dimension embeddings; scheduling the anchor group
    first means a serial run (or a warm store) trains the shared ancestor
    exactly once before its dependants need it.
    """
    groups = [
        CellGroup(
            algorithm=a, dim=d, seed=s,
            precisions=tuple(precisions), tasks=tuple(tasks),
            with_measures=with_measures, model_type=model_type,
        )
        for a, d, s in itertools.product(algorithms, dimensions, seeds)
    ]
    if with_measures and anchor_dim is not None:
        groups.sort(key=lambda g: (g.algorithm, g.seed, g.dim != anchor_dim))
    return groups


@dataclass(frozen=True)
class GridPlan:
    """One grid execution, fully resolved: axes plus the ordered group plan.

    The plan is the part of an execution that is independent of *where* the
    cells run: the local scheduler fans ``groups`` out over processes, and
    the cluster coordinator (:mod:`repro.cluster.coordinator`) hands the very
    same groups out as leases to remote workers.  Both paths commit records
    against :meth:`cell_keys`, which is why they are bit-identical.
    """

    algorithms: tuple[str, ...]
    dimensions: tuple[int, ...]
    precisions: tuple[int, ...]
    seeds: tuple[int, ...]
    tasks: tuple[str, ...]
    with_measures: bool
    model_type: str
    anchor_dim: int | None
    groups: tuple[CellGroup, ...]

    @property
    def n_cells(self) -> int:
        return sum(group.n_cells for group in self.groups)

    def cell_keys(self) -> list:
        """Every cell key in the canonical axis-product order (commit order)."""
        return canonical_cell_keys(
            self.algorithms, self.dimensions, self.precisions, self.seeds, self.tasks
        )


def plan_grid(
    config: "PipelineConfig",
    *,
    algorithms: tuple[str, ...] | None = None,
    tasks: tuple[str, ...] | None = None,
    dimensions: tuple[int, ...] | None = None,
    precisions: tuple[int, ...] | None = None,
    seeds: tuple[int, ...] | None = None,
    with_measures: bool = False,
    model_type: str = "bow",
) -> GridPlan:
    """Resolve grid axes against a pipeline config and plan the cell groups.

    Any axis left as ``None`` defaults to the configuration; the group order
    is the ancestry-aware order of :func:`plan_groups` (anchor groups first).
    """
    algorithms = tuple(algorithms or config.algorithms)
    tasks = tuple(tasks or config.tasks)
    dimensions = tuple(int(d) for d in (dimensions or config.dimensions))
    precisions = tuple(int(p) for p in (precisions or config.precisions))
    seeds = tuple(int(s) for s in (seeds or config.seeds))
    anchor_dim = config.resolved_anchor_dim
    groups = plan_groups(
        algorithms, dimensions, precisions, seeds, tasks,
        anchor_dim=anchor_dim, with_measures=with_measures, model_type=model_type,
    )
    return GridPlan(
        algorithms=algorithms,
        dimensions=dimensions,
        precisions=precisions,
        seeds=seeds,
        tasks=tasks,
        with_measures=with_measures,
        model_type=model_type,
        anchor_dim=anchor_dim,
        groups=tuple(groups),
    )


def evaluate_group(pipeline: "InstabilityPipeline", group: CellGroup) -> list["GridRecord"]:
    """Evaluate every cell of one group against a pipeline."""
    from repro.instability.grid import GridRecord

    records: list[GridRecord] = []
    for precision in group.precisions:
        measures = (
            pipeline.compute_measures(group.algorithm, group.dim, precision, group.seed)
            if group.with_measures
            else {}
        )
        for task in group.tasks:
            result = pipeline.evaluate(
                task, group.algorithm, group.dim, precision, group.seed,
                model_type=group.model_type,
            )
            records.append(
                GridRecord(
                    algorithm=group.algorithm,
                    task=task,
                    dim=group.dim,
                    precision=precision,
                    seed=group.seed,
                    disagreement=result.disagreement,
                    accuracy_a=result.accuracy_a,
                    accuracy_b=result.accuracy_b,
                    measures=measures,
                )
            )
    return records


# -- multiprocessing workers ----------------------------------------------------

_WORKER_PIPELINE: "InstabilityPipeline | None" = None
_WORKER_SHIPMENT: CorpusShipment | None = None
_WORKER_PAIR_SHIPMENT: EmbeddingShipment | None = None


def _init_worker(
    config: "PipelineConfig",
    store_spec,
    shipment: CorpusShipment | None = None,
    parent_policy: KernelPolicy | None = None,
    pair_shipment: EmbeddingShipment | None = None,
) -> None:
    """Build the per-process pipeline once; groups then reuse its caches.

    ``store_spec`` is the parent store's :meth:`ArtifactStore.spec` (or a bare
    root path, or ``None``); each worker rebuilds the same tier stack -- disk,
    shards, remote peers -- so artifacts written by any process land where
    every other process looks for them.  ``shipment`` carries the parent's
    pre-built corpus pair (shared memory); the shipment object is kept alive
    for the worker's lifetime because the materialised corpora view its
    buffer.  ``pair_shipment`` carries whatever trained embedding pairs the
    parent store already held; they preload the worker store's memory tier so
    warm reruns skip retraining.  ``parent_policy`` replicates the parent's
    process-wide kernel policy so ``None`` config fields resolve the same way
    in every process.
    """
    global _WORKER_PIPELINE, _WORKER_SHIPMENT, _WORKER_PAIR_SHIPMENT
    from repro.instability.pipeline import InstabilityPipeline

    if parent_policy is not None:
        configure_default_policy(parent_policy)
    _WORKER_SHIPMENT = shipment
    _WORKER_PAIR_SHIPMENT = pair_shipment
    warm_pair = shipment.materialize() if shipment is not None else None
    _WORKER_PIPELINE = InstabilityPipeline(
        config, store=ArtifactStore.from_spec(store_spec), warm_corpus_pair=warm_pair
    )
    if pair_shipment is not None:
        pair_shipment.seed(_WORKER_PIPELINE.store)


def _evaluate_group_in_worker(group: CellGroup) -> list["GridRecord"]:
    assert _WORKER_PIPELINE is not None, "worker initializer did not run"
    return evaluate_group(_WORKER_PIPELINE, group)


class GridEngine:
    """Cached, optionally parallel executor of the instability grid.

    Parameters
    ----------
    pipeline:
        An :class:`~repro.instability.pipeline.InstabilityPipeline`, a
        :class:`~repro.instability.pipeline.PipelineConfig`, or ``None``
        (default configuration).
    store:
        Artifact store handed to a pipeline the engine constructs itself
        (ignored when a ready pipeline is passed -- it already owns one).
    n_workers:
        Default process fan-out for :meth:`run`; ``0`` or ``1`` means serial.
    coordinator_url:
        Base URL of a cluster coordinator (a ``repro-serve`` instance).  When
        set -- explicitly or process-wide via
        :func:`repro.cluster.configure_default_coordinator` -- grid runs are
        shipped to the coordinator and executed by its ``repro-worker`` fleet
        instead of locally; the record stream stays bit-identical.
    """

    def __init__(
        self,
        pipeline: "InstabilityPipeline | PipelineConfig | None" = None,
        *,
        store: ArtifactStore | None = None,
        n_workers: int = 0,
        coordinator_url: str | None = None,
    ) -> None:
        from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

        if pipeline is None:
            pipeline = InstabilityPipeline(store=store)
        elif isinstance(pipeline, PipelineConfig):
            pipeline = InstabilityPipeline(pipeline, store=store)
        self.pipeline: "InstabilityPipeline" = pipeline
        self.n_workers = int(n_workers)
        self.coordinator_url = coordinator_url
        #: Warm-up telemetry of the most recent parallel run: whether the
        #: corpus pair shipped to workers, how, and how many bytes travelled.
        self.last_warmup: dict | None = None

    @property
    def store(self) -> ArtifactStore:
        return self.pipeline.store

    def run(
        self,
        *,
        algorithms: tuple[str, ...] | None = None,
        tasks: tuple[str, ...] | None = None,
        dimensions: tuple[int, ...] | None = None,
        precisions: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        with_measures: bool = False,
        model_type: str = "bow",
        n_workers: int | None = None,
    ) -> list["GridRecord"]:
        """Evaluate every grid combination and return records in product order.

        Any axis left as ``None`` defaults to the pipeline configuration.
        ``n_workers`` overrides the engine default for this run only.  This is
        the batch view of :meth:`run_iter` with ordered commit: the list is
        bit-identical to what the pre-streaming serial path produced.
        """
        return list(
            self.run_iter(
                algorithms=algorithms,
                tasks=tasks,
                dimensions=dimensions,
                precisions=precisions,
                seeds=seeds,
                with_measures=with_measures,
                model_type=model_type,
                n_workers=n_workers,
                ordered=True,
            )
        )

    def run_iter(
        self,
        *,
        algorithms: tuple[str, ...] | None = None,
        tasks: tuple[str, ...] | None = None,
        dimensions: tuple[int, ...] | None = None,
        precisions: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        with_measures: bool = False,
        model_type: str = "bow",
        n_workers: int | None = None,
        ordered: bool = True,
    ) -> Iterator["GridRecord"]:
        """Stream grid records as their cells complete.

        With ``ordered=True`` (default) records are released in the canonical
        axis-product order through an ordered commit -- completions arriving
        early are buffered, so the stream is bit-identical to :meth:`run`
        regardless of worker scheduling.  With ``ordered=False`` records are
        yielded the moment their group finishes (nondeterministic order under
        parallel execution, lowest latency to first record).
        """
        plan = plan_grid(
            self.pipeline.config,
            algorithms=algorithms, tasks=tasks, dimensions=dimensions,
            precisions=precisions, seeds=seeds,
            with_measures=with_measures, model_type=model_type,
        )
        workers = self.n_workers if n_workers is None else int(n_workers)

        coordinator = self.coordinator_url
        if coordinator is None:
            from repro.cluster.client import default_coordinator_url

            coordinator = default_coordinator_url()
        if coordinator:
            if self.pipeline.reconstructible:
                yield from self._iter_distributed(coordinator, plan)
                return
            warnings.warn(
                "pipeline was built from a custom corpus source and cannot be "
                "reconstructed on cluster workers; running locally instead",
                UserWarning,
                stacklevel=2,
            )
            # Local parallel fan-out would hit the same reconstruction limit
            # (and warn again); go straight to serial.
            workers = 0

        groups = list(plan.groups)
        if workers > 1 and not self.pipeline.reconstructible:
            warnings.warn(
                "pipeline was built from a custom corpus source and cannot be "
                "reconstructed in worker processes; falling back to serial "
                "execution",
                UserWarning,
                stacklevel=2,
            )
            workers = 0

        if workers > 1 and len(groups) > 1:
            batches = self._iter_parallel(groups, min(workers, len(groups)))
        else:
            batches = (evaluate_group(self.pipeline, group) for group in groups)

        count = 0
        if ordered:
            for record in commit_in_order(batches, plan.cell_keys()):
                count += 1
                yield record
        else:
            for batch in batches:
                for record in batch:
                    count += 1
                    yield record
        logger.info(
            "grid done: %d records from %d groups (%s, %s)",
            count, len(groups), f"{workers} workers" if workers > 1 else "serial",
            "ordered" if ordered else "arrival order",
        )

    def _iter_distributed(self, coordinator: str, plan: GridPlan) -> Iterator["GridRecord"]:
        """Ship the plan to a cluster coordinator and stream its records back.

        The coordinator leases the plan's groups to ``repro-worker`` processes
        and commits their results through the same ordered-commit path as the
        local scheduler, so the yielded stream is bit-identical to a local
        ``run()``; the coordinator's artifact store makes warm reruns train
        nothing cluster-wide.
        """
        from repro.cluster.client import stream_remote_grid

        count = 0
        for record in stream_remote_grid(coordinator, self.pipeline.config, plan):
            count += 1
            yield record
        logger.info(
            "distributed grid done: %d records from %d groups via %s",
            count, len(plan.groups), coordinator,
        )

    def _iter_parallel(
        self, groups: list[CellGroup], workers: int
    ) -> Iterator[list["GridRecord"]]:
        """Fan groups out over processes, yielding each group's records as it
        completes; falls back to serial on pool start failure."""
        method = "fork" if "fork" in get_all_start_methods() else None
        ctx = get_context(method)
        store_spec = self.store.spec()
        # Warm-up: ship the already-built corpus pair to workers once, instead
        # of letting every worker regenerate it from the config -- and every
        # trained full-precision pair the parent store already holds, so warm
        # reruns skip retraining even without a shared disk tier.
        shipment = CorpusShipment.create(self.pipeline.corpus_pair)
        known_pairs = self.store.memory_entries("embedding_pair")
        pair_shipment = EmbeddingShipment.create(known_pairs) if known_pairs else None
        self.last_warmup = {
            "enabled": True,
            "via_shared_memory": shipment.via_shared_memory,
            "nbytes": shipment.nbytes,
            "pairs_shipped": pair_shipment.n_pairs if pair_shipment else 0,
            "pair_nbytes": pair_shipment.nbytes if pair_shipment else 0,
            "pairs_via_shared_memory": (
                pair_shipment.via_shared_memory if pair_shipment else False
            ),
        }
        try:
            try:
                pool = ctx.Pool(
                    processes=workers,
                    initializer=_init_worker,
                    initargs=(
                        self.pipeline.config, store_spec, shipment,
                        default_policy(), pair_shipment,
                    ),
                )
            except (OSError, RuntimeError) as error:  # pragma: no cover - env dependent
                # Only pool *start-up* failures trigger the serial fallback; an
                # exception raised by a worker task is a real error and propagates.
                warnings.warn(
                    f"parallel grid execution unavailable ({error}); running serially",
                    UserWarning,
                    stacklevel=3,
                )
                self.last_warmup = None
                for group in groups:
                    yield evaluate_group(self.pipeline, group)
                return
            with pool:
                # ``imap_unordered``: each group's records surface the moment
                # its worker finishes; the ordered committer (when requested)
                # restores the canonical sequence downstream.
                yield from pool.imap_unordered(
                    _evaluate_group_in_worker, groups, chunksize=1
                )
        finally:
            shipment.close()
            if pair_shipment is not None:
                pair_shipment.close()
