"""Exact and randomized truncated SVD kernels.

The randomized path is the standard Halko--Martinsson--Tropp range finder
(Halko et al., 2011, Algorithm 4.4/5.1): project onto a seeded Gaussian test
matrix, optionally sharpen the captured subspace with power iterations
(re-orthogonalised between applications for numerical stability), then take
the exact SVD of the small projected matrix.  The result is a deterministic
function of ``(matrix, rank, knobs, seed)``, so randomized runs stay
reproducible and the parallel scheduler stays bit-identical to the serial
path.

:func:`compute_svd` is the policy-aware entry point everything routes
through: the :class:`~repro.measures.base.DecompositionCache`, the anchor
factorization of the EIS measure, and the PPMI-SVD embedding algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.policy import KernelPolicy, default_policy

__all__ = ["exact_svd", "randomized_svd", "compute_svd", "svd_residual_estimate"]


def exact_svd(
    X: np.ndarray, rank: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin LAPACK SVD of ``X``, optionally truncated to the top ``rank``."""
    U, S, Vt = np.linalg.svd(np.asarray(X), full_matrices=False)
    if rank is not None and rank < S.size:
        U, S, Vt = U[:, :rank], S[:rank], Vt[:rank]
    return U, S, Vt


def randomized_svd(
    X,
    rank: int,
    *,
    n_oversamples: int = 10,
    n_power_iter: int = 2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD (Halko et al., 2011), seeded and deterministic.

    Parameters
    ----------
    X:
        ``(n, d)`` matrix; anything supporting ``@`` and ``.T`` works, so
        scipy sparse matrices can be factored without densifying.
    rank:
        Number of singular triplets to return; clamped to ``min(n, d)``.
    n_oversamples:
        Extra test vectors beyond ``rank`` (improves subspace capture).
    n_power_iter:
        Power iterations ``(X X^T)^q`` applied to the sample, with a QR
        re-orthogonalisation between applications; 1--2 suffice unless the
        spectrum is very flat.
    seed:
        Seed of the Gaussian test matrix.

    Returns
    -------
    ``(U, S, Vt)`` with ``U``: ``(n, rank)``, ``S``: ``(rank,)``,
    ``Vt``: ``(rank, d)``, singular values in descending order, in the dtype
    of ``X`` (float64 for non-floating inputs).
    """
    n, d = X.shape
    short_side = min(n, d)
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    rank = min(int(rank), short_side)
    n_samples = min(rank + int(n_oversamples), short_side)

    X_dtype = getattr(X, "dtype", None)
    dtype = X_dtype if X_dtype is not None and np.issubdtype(X_dtype, np.floating) \
        else np.dtype(np.float64)
    rng = np.random.default_rng(seed)
    omega = rng.standard_normal((d, n_samples)).astype(dtype, copy=False)

    Y = np.asarray(X @ omega)
    Q, _ = np.linalg.qr(Y)
    for _ in range(int(n_power_iter)):
        Z, _ = np.linalg.qr(np.asarray(X.T @ Q))
        Q, _ = np.linalg.qr(np.asarray(X @ Z))

    B = np.asarray(Q.T @ X)                 # (n_samples, d): small projected matrix
    Ub, S, Vt = np.linalg.svd(B, full_matrices=False)
    U = Q @ Ub
    return U[:, :rank], S[:rank], Vt[:rank]


def svd_residual_estimate(
    X: np.ndarray,
    U: np.ndarray,
    S: np.ndarray,
    Vt: np.ndarray,
    *,
    n_probes: int = 8,
    seed: int = 0,
) -> float:
    """Gaussian-probe estimate of the truncation residual ``||X - U S Vt||_F``.

    Applies both ``X`` and its factored approximation to ``n_probes`` seeded
    standard-normal probe vectors: ``E||(X - U S Vt) g||^2 = ||X - U S Vt||_F^2``
    for ``g ~ N(0, I)``, so the probe average is an unbiased estimate of the
    squared residual without ever materialising the residual matrix -- the
    cost is ``n_probes`` matvecs instead of an ``(n, d)`` subtraction.  The
    estimate is a deterministic function of ``(X, factors, n_probes, seed)``;
    callers treating it as an error *bound* should inflate it (the square
    root of an unbiased squared estimate is slightly biased low).
    """
    X = np.asarray(X)
    if n_probes < 1:
        raise ValueError(f"n_probes must be >= 1, got {n_probes}")
    dtype = X.dtype if np.issubdtype(X.dtype, np.floating) else np.dtype(np.float64)
    rng = np.random.default_rng(seed)
    G = rng.standard_normal((X.shape[1], int(n_probes))).astype(dtype, copy=False)
    residual = np.asarray(X @ G) - U @ (S[:, np.newaxis] * (Vt @ G))
    return float(np.sqrt(np.sum(residual.astype(np.float64) ** 2) / int(n_probes)))


def compute_svd(
    X: np.ndarray,
    rank: int | None = None,
    *,
    policy: KernelPolicy | None = None,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Policy-dispatched thin/truncated SVD.

    ``policy=None`` uses the process default (see
    :func:`repro.linalg.configure_default_policy`).  The computation runs in
    the dtype of ``X`` -- callers opting into float32 cast first via
    :meth:`KernelPolicy.cast` -- and ``seed`` overrides the policy's range-
    finder seed (used by the PPMI-SVD embedding so each training seed draws
    its own test matrix).
    """
    if policy is None:
        policy = default_policy()
    if policy.resolve_method(X.shape, rank) == "randomized":
        return randomized_svd(
            X,
            rank,
            n_oversamples=policy.n_oversamples,
            n_power_iter=policy.n_power_iter,
            seed=policy.seed if seed is None else seed,
        )
    return exact_svd(X, rank)
