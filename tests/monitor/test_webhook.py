"""Drift-alert webhook delivery: payload shape, retries, and counters."""

import json
import warnings

import pytest

from repro.monitor import InstabilityMonitor, MonitorConfig
from repro.serving import StabilityService
from repro.serving.api import quick_serve_config

HOOK = "http://alerts.invalid/drift"


@pytest.fixture(scope="module")
def service():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(quick_serve_config())
    yield service
    service.close()


@pytest.fixture(scope="module")
def token_documents(service):
    corpus = service.pipeline.corpus_pair.base
    return [[corpus.word_list[i] for i in doc] for doc in corpus.documents]


def make_monitor(service, posts, statuses, **config):
    """A sync monitor whose webhook POST is captured, not sent."""
    monitor = InstabilityMonitor(
        service,
        MonitorConfig(sync=True, thresholds={"eis": 0.0}, webhook_url=HOOK, **config),
    )

    def fake_post(url, body):
        posts.append((url, json.loads(body)))
        outcome = statuses[min(len(posts), len(statuses)) - 1]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    monitor._webhook_post = fake_post
    return monitor


class TestDelivery:
    def test_drift_alert_posts_payload_and_counts(self, service, token_documents):
        posts = []
        monitor = make_monitor(service, posts, statuses=[200])
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)
                monitor.ingest(token_documents[:40])
                monitor.ingest(token_documents[40:])
        finally:
            monitor.close()

        assert len(posts) == 1
        url, payload = posts[0]
        assert url == HOOK
        assert payload["event"] == "drift_alert"
        assert payload["base_version"] == 1
        assert payload["version"] == 2
        assert len(payload["snapshot_pair"]) == 2
        assert payload["alerts"]                  # eis > 0.0 threshold fired
        counters = monitor.counters()
        assert counters["webhook_delivered"] == 1
        assert counters["webhook_failed"] == 0
        # The webhook mirrors (never replaces) the in-process event stream.
        assert "drift_alert" in [e["kind"] for e in monitor.events.events()]

    def test_no_webhook_configured_posts_nothing(self, service, token_documents):
        monitor = InstabilityMonitor(
            service, MonitorConfig(sync=True, thresholds={"eis": 0.0})
        )
        posted = []
        monitor._webhook_post = lambda url, body: posted.append(url) or 200
        try:
            monitor._deliver_webhook({"event": "drift_alert"})
        finally:
            monitor.close()
        assert posted == []
        assert monitor.counters()["webhook_delivered"] == 0

    def test_snapshot_reports_the_url(self, service):
        monitor = make_monitor(service, [], statuses=[200])
        try:
            assert monitor.snapshot()["webhook"] == HOOK
        finally:
            monitor.close()


class TestRetries:
    def test_transient_failure_retries_then_delivers(self, service):
        posts = []
        monitor = make_monitor(
            service, posts, statuses=[ConnectionError("down"), 200],
            webhook_retries=2,
        )
        try:
            monitor._deliver_webhook({"event": "drift_alert"})
        finally:
            monitor.close()
        assert len(posts) == 2
        counters = monitor.counters()
        assert counters["webhook_delivered"] == 1
        assert counters["webhook_failed"] == 0

    def test_exhausted_retries_count_one_failure(self, service):
        posts = []
        monitor = make_monitor(
            service, posts, statuses=[503], webhook_retries=1,
        )
        try:
            monitor._deliver_webhook({"event": "drift_alert"})
        finally:
            monitor.close()
        assert len(posts) == 2                    # initial try + 1 retry
        counters = monitor.counters()
        assert counters["webhook_delivered"] == 0
        assert counters["webhook_failed"] == 1

    def test_zero_retries_means_single_attempt(self, service):
        posts = []
        monitor = make_monitor(
            service, posts, statuses=[RuntimeError("boom")], webhook_retries=0,
        )
        try:
            monitor._deliver_webhook({"event": "drift_alert"})
        finally:
            monitor.close()
        assert len(posts) == 1
        assert monitor.counters()["webhook_failed"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(webhook_retries=-1)
        with pytest.raises(ValueError):
            MonitorConfig(webhook_timeout=0.0)
