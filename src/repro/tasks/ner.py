"""Synthetic named entity recognition dataset (CoNLL-2003 analogue).

Each sentence interleaves entity mentions (words drawn from the per-type
entity lexicons) with background tokens.  Tags follow the CoNLL-2003 label
set (PER, ORG, LOC, MISC, O), and -- matching the paper -- downstream
instability on this task is measured only over tokens whose gold tag is an
entity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.vocabulary import Vocabulary
from repro.tasks.datasets import SequenceTaggingDataset
from repro.tasks.lexicons import ENTITY_TYPES, TaskLexicons
from repro.utils.rng import check_random_state
from repro.utils.validation import check_probability

__all__ = ["NERTaskConfig", "NER_TAGS", "generate_ner_dataset"]

#: Tag names in id order; "O" is last by convention.
NER_TAGS: list[str] = list(ENTITY_TYPES) + ["O"]


@dataclass(frozen=True)
class NERTaskConfig:
    """Generation parameters of the synthetic NER dataset.

    Attributes
    ----------
    n_sentences:
        Number of sentences.
    sentence_length:
        Tokens per sentence.
    entity_density:
        Expected fraction of tokens that belong to an entity mention.
    tag_noise:
        Probability of corrupting an entity token's surface form with a random
        background word (keeping the entity tag), which makes the task harder.
    """

    name: str = "conll"
    n_sentences: int = 400
    sentence_length: int = 16
    entity_density: float = 0.25
    tag_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.n_sentences <= 0 or self.sentence_length <= 0:
            raise ValueError("n_sentences and sentence_length must be positive")
        check_probability(self.entity_density, name="entity_density")
        check_probability(self.tag_noise, name="tag_noise")


def generate_ner_dataset(
    config: NERTaskConfig,
    lexicons: TaskLexicons,
    *,
    seed: int = 0,
    vocab: Vocabulary | None = None,
) -> SequenceTaggingDataset:
    """Generate a synthetic NER dataset from the entity lexicons."""
    vocab = vocab or lexicons.vocab
    rng = check_random_state(seed)

    entity_ids = {}
    for etype in ENTITY_TYPES:
        ids = np.asarray([vocab[w] for w in lexicons.entities.get(etype, []) if w in vocab],
                         dtype=np.int64)
        if len(ids) == 0:
            raise ValueError(f"entity lexicon for {etype} does not overlap the vocabulary")
        entity_ids[etype] = ids

    bg_ids = np.asarray([vocab[w] for w in lexicons.background if w in vocab], dtype=np.int64)
    if len(bg_ids) == 0:
        raise ValueError("background lexicon does not overlap the vocabulary")
    bg_counts = np.asarray(
        [vocab.count(vocab.id_to_word(int(i))) for i in bg_ids], dtype=np.float64
    )
    bg_probs = bg_counts / bg_counts.sum() if bg_counts.sum() > 0 else None

    outside_tag = NER_TAGS.index("O")
    sentences: list[np.ndarray] = []
    tags: list[np.ndarray] = []

    for _ in range(config.n_sentences):
        token_ids = np.empty(config.sentence_length, dtype=np.int64)
        tag_ids = np.full(config.sentence_length, outside_tag, dtype=np.int64)
        position = 0
        while position < config.sentence_length:
            if rng.random() < config.entity_density:
                etype_idx = int(rng.integers(len(ENTITY_TYPES)))
                etype = ENTITY_TYPES[etype_idx]
                span = int(min(rng.integers(1, 3), config.sentence_length - position))
                mention = rng.choice(entity_ids[etype], size=span, replace=True)
                if rng.random() < config.tag_noise:
                    # Corrupt the surface form but keep the tag.
                    mention = rng.choice(bg_ids, size=span, replace=True, p=bg_probs)
                token_ids[position : position + span] = mention
                tag_ids[position : position + span] = etype_idx
                position += span
            else:
                token_ids[position] = rng.choice(bg_ids, p=bg_probs)
                position += 1
        sentences.append(token_ids)
        tags.append(tag_ids)

    return SequenceTaggingDataset(
        sentences=sentences,
        tags=tags,
        tag_names=list(NER_TAGS),
        vocab=vocab,
        name=config.name,
    )
