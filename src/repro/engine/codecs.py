"""Typed artifact codecs: (de)serialization between objects and bytes.

The artifact store used to interleave *what* an artifact is (a JSON record, a
dict of arrays, an embedding pair) with *where* it lives (memory dict, disk
file).  The codecs extract the first concern: each codec turns one artifact
family into bytes and back, and every storage backend
(:mod:`repro.engine.backends`) only ever moves bytes.  That is what makes the
backends interchangeable -- a sharded directory tree and a remote HTTP peer
serve exactly the same payloads a local disk tier writes.

The byte formats match the pre-codec store's disk layout:

* :class:`JsonCodec` -- ``json.dumps(..., indent=2, sort_keys=True)`` UTF-8,
  ``.json`` files;
* :class:`ArraysCodec` -- ``np.savez_compressed``, ``.npz`` files;
* :class:`EmbeddingPairCodec` -- the store's aligned-pair ``.npz`` layout
  (vectors, vocab words/counts per side, metadata as an embedded JSON string).

Decoding never enables ``allow_pickle``: artifact payloads can arrive from
peers over the unauthenticated ``/artifacts`` HTTP API, and ``np.load`` with
pickling enabled would turn any reachable store port into arbitrary code
execution.  All payload fields are plain numeric / fixed-width-unicode
arrays, so pickle is never needed; an undecodable payload is a cache miss.
"""

from __future__ import annotations

import io
import json
from typing import Any, Mapping

import numpy as np

from repro.embeddings.base import Embedding
from repro.utils.io import to_jsonable

__all__ = [
    "ArtifactCodec",
    "JsonCodec",
    "ArraysCodec",
    "EmbeddingPairCodec",
    "JSON_CODEC",
    "ARRAYS_CODEC",
    "EMBEDDING_PAIR_CODEC",
    "codec_for_value",
]


class ArtifactCodec:
    """One artifact family's byte representation.

    ``suffix`` doubles as the on-disk file extension, keeping the disk
    backend's layout (``<kind>/<key><suffix>``) identical to the pre-codec
    store.
    """

    name: str = "abstract"
    suffix: str = ""

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes) -> Any:
        raise NotImplementedError


class JsonCodec(ArtifactCodec):
    """JSON-able artifacts (measure values, downstream results)."""

    name = "json"
    suffix = ".json"

    def encode(self, value: Any) -> bytes:
        return json.dumps(to_jsonable(value), indent=2, sort_keys=True).encode("utf-8")

    def decode(self, payload: bytes) -> Any:
        return json.loads(payload.decode("utf-8"))


class ArraysCodec(ArtifactCodec):
    """Dicts of named numpy arrays (matrix decompositions)."""

    name = "arrays"
    suffix = ".npz"

    def encode(self, value: Mapping[str, np.ndarray]) -> bytes:
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **{k: np.asarray(v) for k, v in value.items()})
        return buffer.getvalue()

    def decode(self, payload: bytes) -> dict[str, np.ndarray]:
        with np.load(io.BytesIO(payload)) as data:
            return {name: data[name] for name in data.files}


class EmbeddingPairCodec(ArtifactCodec):
    """Aligned (base, drifted) embedding pairs.

    The npz payload carries each side's vectors, vocabulary words and counts,
    plus both metadata dicts as one embedded JSON string; decoding restores
    row alignment after :class:`~repro.corpus.vocabulary.Vocabulary` re-sorts
    words by frequency.  Word arrays are fixed-width unicode (``dtype='U...'``)
    and decoding never enables ``allow_pickle``, so a hostile payload arriving
    over the ``/artifacts`` peer API cannot smuggle pickled objects -- the
    worst a bad payload can do is fail to decode (counted as corrupt, treated
    as a miss).  Payloads written by pre-2026 versions with dtype=object word
    arrays are rejected the same way and simply recomputed.
    """

    name = "embedding_pair"
    suffix = ".npz"

    def encode(self, value: tuple[Embedding, Embedding]) -> bytes:
        emb_a, emb_b = value
        payload = {
            "vectors_a": emb_a.vectors,
            "vectors_b": emb_b.vectors,
            "words_a": np.array(emb_a.vocab.words, dtype=np.str_),
            "counts_a": emb_a.vocab.counts,
            "words_b": np.array(emb_b.vocab.words, dtype=np.str_),
            "counts_b": emb_b.vocab.counts,
            "metadata": np.array(
                json.dumps([to_jsonable(emb_a.metadata), to_jsonable(emb_b.metadata)])
            ),
        }
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **payload)
        return buffer.getvalue()

    def decode(self, payload: bytes) -> tuple[Embedding, Embedding]:
        with np.load(io.BytesIO(payload)) as data:
            meta_a, meta_b = json.loads(str(data["metadata"]))
            embeddings = [
                Embedding.from_word_arrays(
                    data[f"words_{side}"], data[f"counts_{side}"],
                    data[f"vectors_{side}"], metadata=meta,
                )
                for side, meta in (("a", meta_a), ("b", meta_b))
            ]
        return embeddings[0], embeddings[1]


JSON_CODEC = JsonCodec()
ARRAYS_CODEC = ArraysCodec()
EMBEDDING_PAIR_CODEC = EmbeddingPairCodec()


def codec_for_value(value: Any) -> ArtifactCodec:
    """The codec that can serialise ``value`` (type-driven dispatch).

    Used when a store must produce bytes for an artifact it only holds
    decoded in its memory tier -- e.g. a serving node answering a peer's
    ``/artifacts`` fetch for a pair it trained itself.
    """
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and all(isinstance(item, Embedding) for item in value)
    ):
        return EMBEDDING_PAIR_CODEC
    if isinstance(value, Mapping) and value and all(
        isinstance(item, np.ndarray) for item in value.values()
    ):
        return ARRAYS_CODEC
    return JSON_CODEC
