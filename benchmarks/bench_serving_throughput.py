"""Benchmark the stability-query service: cold vs warm vs coalesced latency.

Exercises the serving layer the way production traffic would and reports:

1. ``cold``      -- first-ever /measure queries (train + decompose + measure);
2. ``warm``      -- the same queries repeated against the warm store (pure
   cache; asserts zero new trainings via ``repro.engine.stats``);
3. ``coalesced`` -- N identical concurrent queries for a fresh cell (asserts
   the single-flight path performed exactly one computation);
4. ``select``    -- a budget recommendation over the warm measure cache;
5. ``stream``    -- a full NDJSON-style grid stream (records consumed as the
   cells complete).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --requests 16

The script exits non-zero if any serving invariant fails, so CI can smoke it;
it is intentionally not a pytest-benchmark file (like the sibling
``bench_engine_grid.py``).
"""

from __future__ import annotations

import argparse
import statistics
import sys
import threading
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.reporting import format_table  # noqa: E402
from repro.corpus.synthetic import SyntheticCorpusConfig  # noqa: E402
from repro.engine import stats as engine_stats  # noqa: E402
from repro.instability.pipeline import PipelineConfig  # noqa: E402
from repro.serving import ServiceConfig, StabilityService  # noqa: E402

from conftest import write_benchmark_results  # noqa: E402


def bench_config(quick: bool) -> PipelineConfig:
    if quick:
        return PipelineConfig(
            corpus=SyntheticCorpusConfig(
                vocab_size=120, n_documents=60, doc_length_mean=30, seed=7
            ),
            algorithms=("svd",),
            dimensions=(4, 6),
            precisions=(1, 32),
            seeds=(0,),
            tasks=("sst2",),
            embedding_epochs=2,
            downstream_epochs=3,
            ner_epochs=2,
        )
    return PipelineConfig(
        corpus=SyntheticCorpusConfig(
            vocab_size=300, n_documents=250, doc_length_mean=70, seed=0
        ),
        algorithms=("cbow",),
        dimensions=(8, 16, 32),
        precisions=(1, 2, 4, 8, 32),
        seeds=(0,),
        tasks=("sst2",),
        embedding_epochs=8,
        downstream_epochs=10,
    )


def _measure_latencies(service: StabilityService, cells) -> list[float]:
    latencies = []
    for algorithm, dim, precision, seed in cells:
        start = time.perf_counter()
        service.measure(algorithm, dim, precision, seed)
        latencies.append(time.perf_counter() - start)
    return latencies


def run_benchmark(quick: bool, n_requests: int):
    config = bench_config(quick)
    service = StabilityService(config, config=ServiceConfig(max_concurrency=4))
    cells = [
        (algorithm, dim, precision, config.seeds[0])
        for algorithm in config.algorithms
        for dim in config.dimensions
        for precision in config.precisions
    ]
    rows = []

    # 1. Cold: every query trains/quantizes/decomposes on first touch.
    cold = _measure_latencies(service, cells)
    rows.append({"mode": "cold /measure", "queries": len(cold),
                 "mean_ms": round(1e3 * statistics.mean(cold), 2),
                 "total_s": round(sum(cold), 3)})

    # 2. Warm: identical queries, pure cache; zero new trainings.
    before = engine_stats(service.engine)["pipeline"]
    warm = _measure_latencies(service, cells)
    after = engine_stats(service.engine)["pipeline"]
    rows.append({"mode": "warm /measure", "queries": len(warm),
                 "mean_ms": round(1e3 * statistics.mean(warm), 2),
                 "total_s": round(sum(warm), 3)})
    assert after == before, f"warm queries trained something: {before} -> {after}"
    assert sum(warm) < sum(cold), "warm requests were not faster than cold"

    # 3. Coalesced: N identical concurrent queries for a cell nobody asked
    #    for yet.  Single-flight guarantees exactly one computation (one
    #    store write) no matter how the threads interleave.
    fresh_cell = (config.algorithms[0], config.dimensions[-1], config.precisions[0],
                  config.seeds[0] + 1)
    puts_before = service.pipeline.store.stat("measures").puts
    barrier = threading.Barrier(n_requests)
    latencies = [0.0] * n_requests

    def query(slot: int) -> None:
        barrier.wait()
        start = time.perf_counter()
        service.measure(*fresh_cell)
        latencies[slot] = time.perf_counter() - start

    threads = [threading.Thread(target=query, args=(i,)) for i in range(n_requests)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    puts_after = service.pipeline.store.stat("measures").puts
    coalesced = service.metrics()["serving"]["coalesced_total"]
    rows.append({"mode": f"coalesced x{n_requests} /measure", "queries": n_requests,
                 "mean_ms": round(1e3 * statistics.mean(latencies), 2),
                 "total_s": round(wall, 3)})
    assert puts_after == puts_before + 1, (
        f"{n_requests} identical concurrent queries performed "
        f"{puts_after - puts_before} computations; expected 1"
    )

    # 4. /select over the warm measure cache.
    start = time.perf_counter()
    selection = service.select(128)
    select_s = time.perf_counter() - start
    rows.append({"mode": "/select budget=128", "queries": 1,
                 "mean_ms": round(1e3 * select_s, 2), "total_s": round(select_s, 3)})

    # 5. Streaming grid: consume records as cells complete.
    start = time.perf_counter()
    n_records = sum(1 for _ in service.grid_iter(with_measures=True))
    stream_s = time.perf_counter() - start
    rows.append({"mode": "/grid stream", "queries": n_records,
                 "mean_ms": round(1e3 * stream_s / max(n_records, 1), 2),
                 "total_s": round(stream_s, 3)})

    summary = {
        "cells": len(cells),
        "cold_mean_ms": round(1e3 * statistics.mean(cold), 2),
        "warm_mean_ms": round(1e3 * statistics.mean(warm), 2),
        "warm_speedup": round(sum(cold) / max(sum(warm), 1e-9), 1),
        "coalesced_requests": n_requests,
        "coalesced_total": coalesced,
        "coalesced_computations": puts_after - puts_before,
        "selected": selection["selected"],
        "grid_records_streamed": n_records,
    }
    service.close()
    return rows, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny grid (CI smoke)")
    parser.add_argument("--requests", type=int, default=8,
                        help="concurrent identical requests in the coalescing stage")
    parser.add_argument("--output", default=None, help="write the summary JSON here")
    args = parser.parse_args(argv)

    with warnings.catch_warnings():
        # The small benchmark vocabularies always trip the top-k no-op warning.
        warnings.simplefilter("ignore", UserWarning)
        rows, summary = run_benchmark(args.quick, args.requests)

    print(format_table(rows, title="stability-service throughput"))
    print("summary:", summary)
    results = write_benchmark_results(
        "serving", summary=summary, rows=rows, output=args.output
    )
    print(f"results -> {results}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
