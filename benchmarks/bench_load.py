"""Open-loop load benchmark over the live HTTP serving layer: ``bench_load``.

Boots a real ``repro-serve`` (asyncio server, loopback TCP), warms the
grid, then drives it with an **open-loop** arrival process: requests are
scheduled at a fixed rate on the wall clock and picked up by a pool of
client connections, so server slowdowns surface as queueing delay instead
of silently throttling the offered load (closed-loop generators measure a
flattered latency the moment the server stalls).  Traffic is a mix of
warm ``GET /measure`` queries over the served cells and periodic
``GET /grid`` NDJSON streams.

Reported per endpoint, side by side:

* **client-side** p50/p99/mean from the generator's own measurements
  (scheduled arrival -> last response byte, queueing included);
* **server-side** p50/p99 from the serving layer's latency histograms
  (``/metrics`` -> ``telemetry.latency.request``), the same numbers a
  Prometheus scrape of ``/metrics?format=prometheus`` would ingest.

Two gates make this an SLO harness rather than a report:

1. the client-side warm ``/measure`` p99 must stay under ``--slo-p99-ms``;
2. tracing must be near-free: the median warm ``/measure`` with a live
   trace collecting spans may exceed the untraced median by at most 5%
   (or 0.25 ms, whichever is larger -- sub-millisecond medians are noise).

Usage::

    PYTHONPATH=src python benchmarks/bench_load.py --quick
    PYTHONPATH=src python benchmarks/bench_load.py --rate 80 --duration 10

Exits non-zero on any gate breach so CI can run it; results land in
``BENCH_load.json`` (compared against ``benchmarks/baselines/``).
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import statistics
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.reporting import format_table  # noqa: E402
from repro.serving.api import StabilityAPIServer, quick_serve_config  # noqa: E402
from repro.serving.service import ServiceConfig, StabilityService  # noqa: E402

from conftest import write_benchmark_results  # noqa: E402


def percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of ``samples`` by nearest-rank, in input units."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class _Server:
    """A live serving stack on an ephemeral loopback port."""

    def __init__(self, service: StabilityService) -> None:
        self.service = service
        self.api = StabilityAPIServer(service, port=0)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, name="bench-serve", daemon=True)
        self.ready = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.api.start())
        self.ready.set()
        self.loop.run_forever()

    def __enter__(self) -> "_Server":
        self.thread.start()
        if not self.ready.wait(10.0):
            raise RuntimeError("server failed to start")
        return self

    def __exit__(self, *exc) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.service.close()

    @property
    def port(self) -> int:
        return self.api.port


def _get(port: int, path: str, timeout: float = 120.0) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _drive_open_loop(
    port: int, cells, *, rate: float, duration: float, clients: int,
    grid_every: int,
) -> dict[str, list[float]]:
    """Schedule arrivals at ``rate``/s for ``duration``s; return latencies.

    Latency is measured from the request's *scheduled* arrival time, so a
    backed-up server accrues queueing delay in the numbers even while the
    client pool is saturated -- the defining property of an open loop.
    """
    n_arrivals = max(1, int(rate * duration))
    epoch = time.perf_counter() + 0.25   # let every client thread spin up
    arrivals = [
        (epoch + index / rate,
         "/grid" if grid_every and index % grid_every == grid_every - 1
         else "/measure",
         cells[index % len(cells)])
        for index in range(n_arrivals)
    ]
    cursor = threading.Lock()
    position = 0
    latencies: dict[str, list[float]] = {"/measure": [], "/grid": []}
    errors: list[str] = []

    def client() -> None:
        nonlocal position
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120.0)
        try:
            while True:
                with cursor:
                    index = position
                    position += 1
                if index >= len(arrivals):
                    return
                due, endpoint, cell = arrivals[index]
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                algorithm, dim, precision, seed = cell
                if endpoint == "/measure":
                    path = (f"/measure?algorithm={algorithm}&dim={dim}"
                            f"&precision={precision}&seed={seed}")
                else:
                    path = f"/grid?dims={dim}&precisions={precision}&seeds={seed}"
                try:
                    conn.request("GET", path)
                    response = conn.getresponse()
                    body = response.read()
                    if response.status != 200:
                        errors.append(f"{endpoint} -> HTTP {response.status}")
                        continue
                    if endpoint == "/grid" and not body.strip():
                        errors.append("/grid stream was empty")
                        continue
                except (OSError, http.client.HTTPException) as error:
                    errors.append(f"{endpoint} -> {type(error).__name__}: {error}")
                    conn.close()
                    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120.0)
                    continue
                # /grid answers Connection: close; reconnect for the next one.
                if endpoint == "/grid":
                    conn.close()
                    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120.0)
                with cursor:
                    latencies[endpoint].append((time.perf_counter() - due) * 1e3)
        finally:
            conn.close()

    threads = [threading.Thread(target=client, daemon=True) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise AssertionError(f"{len(errors)} load-generator failures: {errors[:5]}")
    return latencies


def _overhead_gate(service: StabilityService, cell) -> dict:
    """Median warm /measure latency with vs without an active trace."""
    algorithm, dim, precision, seed = cell
    iterations = 200

    def warm_once() -> float:
        start = time.perf_counter()
        service.measure(algorithm, dim, precision, seed)
        return (time.perf_counter() - start) * 1e3

    warm_once()                                   # ensure the cell is hot
    base = [warm_once() for _ in range(iterations)]
    traced = []
    for _ in range(iterations):
        with service.traces.request("bench.overhead"):
            traced.append(warm_once())
    base_ms = statistics.median(base)
    traced_ms = statistics.median(traced)
    overhead_ms = traced_ms - base_ms
    budget_ms = max(0.05 * base_ms, 0.25)
    return {
        "warm_base_ms": round(base_ms, 4),
        "warm_traced_ms": round(traced_ms, 4),
        "overhead_ms": round(overhead_ms, 4),
        "overhead_budget_ms": round(budget_ms, 4),
        "iterations": iterations,
        "ok": overhead_ms <= budget_ms,
    }


def run_benchmark(args) -> int:
    config = quick_serve_config()
    service = StabilityService(
        config,
        config=ServiceConfig(
            max_concurrency=4,
            trace_sample=args.trace_sample, trace_slow_ms=args.slow_ms,
        ),
    )
    cells = [
        (algorithm, dim, precision, config.seeds[0])
        for algorithm in config.algorithms
        for dim in config.dimensions
        for precision in config.precisions
    ]
    rows: list[dict] = []
    summary: dict = {}
    with _Server(service) as server:
        # Warm every served cell first: the load phase measures serving, not
        # first-touch training.
        for algorithm, dim, precision, seed in cells:
            status, _ = _get(
                server.port,
                f"/measure?algorithm={algorithm}&dim={dim}"
                f"&precision={precision}&seed={seed}",
            )
            assert status == 200, f"warmup failed: HTTP {status}"

        latencies = _drive_open_loop(
            server.port, cells,
            rate=args.rate, duration=args.duration, clients=args.clients,
            grid_every=args.grid_every,
        )
        for endpoint in ("/measure", "/grid"):
            samples = latencies[endpoint]
            if not samples:
                continue
            rows.append({
                "mode": f"client {endpoint}",
                "requests": len(samples),
                "p50_ms": round(percentile(samples, 0.50), 3),
                "p99_ms": round(percentile(samples, 0.99), 3),
                "mean_ms": round(statistics.mean(samples), 3),
            })

        # Server-side: the same latencies as the serving layer's histograms
        # saw them (and as Prometheus would scrape them).
        status, body = _get(server.port, "/metrics")
        assert status == 200
        request_latency = json.loads(body)["telemetry"]["latency"].get("request", {})
        for endpoint in ("/measure", "/grid"):
            hist = request_latency.get(endpoint)
            if hist:
                rows.append({
                    "mode": f"server {endpoint}",
                    "requests": hist["count"],
                    "p50_ms": round(hist["p50_ms"], 3),
                    "p99_ms": round(hist["p99_ms"], 3),
                })

        status, prom = _get(server.port, "/metrics?format=prometheus")
        assert status == 200 and b"repro_latency_ms_bucket" in prom, (
            "Prometheus exposition missing the latency histogram family"
        )
        summary["prometheus_lines"] = len(prom.decode("utf-8").splitlines())

        gate = _overhead_gate(service, cells[0])
        rows.append({"mode": "warm /measure untraced", "p50_ms": gate["warm_base_ms"]})
        rows.append({"mode": "warm /measure traced", "p50_ms": gate["warm_traced_ms"]})
        summary.update(gate)

    client_measure = next(r for r in rows if r["mode"] == "client /measure")
    summary["measure_p99_ms"] = client_measure["p99_ms"]
    summary["slo_p99_ms"] = args.slo_p99_ms
    summary["requests"] = sum(r.get("requests", 0) for r in rows if r["mode"].startswith("client"))

    print(format_table(rows, title="bench_load: open-loop serving latency"))
    failures = []
    if not summary["ok"]:
        failures.append(
            f"telemetry overhead {summary['overhead_ms']:.3f}ms exceeds "
            f"budget {summary['overhead_budget_ms']:.3f}ms "
            f"(untraced {summary['warm_base_ms']:.3f}ms, "
            f"traced {summary['warm_traced_ms']:.3f}ms)"
        )
    if args.slo_p99_ms and client_measure["p99_ms"] > args.slo_p99_ms:
        failures.append(
            f"/measure client p99 {client_measure['p99_ms']:.1f}ms breaches "
            f"the {args.slo_p99_ms:.0f}ms SLO"
        )
    summary["slo_ok"] = not failures

    path = write_benchmark_results("load", summary=summary, rows=rows,
                                   output=args.output)
    print(f"results -> {path}")
    if failures:
        for failure in failures:
            print(f"SLO GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all SLO gates passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short run for CI (lower rate, shorter duration)")
    parser.add_argument("--rate", type=float, default=60.0,
                        help="offered load in requests/second (open loop)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="seconds of offered load")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client connections draining arrivals")
    parser.add_argument("--grid-every", type=int, default=20,
                        help="every Nth arrival is a /grid stream (0 = none)")
    parser.add_argument("--slo-p99-ms", type=float, default=500.0,
                        help="client-side warm /measure p99 SLO gate (0 = off)")
    parser.add_argument("--trace-sample", type=float, default=1.0,
                        help="server trace sampling during the load phase")
    parser.add_argument("--slow-ms", type=float, default=500.0,
                        help="server slow-trace retention threshold")
    parser.add_argument("--output", default=None,
                        help="envelope path (default BENCH_load.json)")
    args = parser.parse_args(argv)
    if args.quick:
        args.rate = min(args.rate, 40.0)
        args.duration = min(args.duration, 3.0)
        args.clients = min(args.clients, 6)
    if args.rate <= 0 or args.duration <= 0 or args.clients < 1:
        parser.error("--rate/--duration must be > 0 and --clients >= 1")
    return run_benchmark(args)


if __name__ == "__main__":
    sys.exit(main())
