"""Stability-service tests: warm-cache behaviour, coalescing, selection.

Acceptance bar: a warm service answers a repeated /measure query with zero
new trainings and zero new decompositions (asserted via counters), and N
identical concurrent queries collapse into one computation.
"""

import threading
import warnings

import pytest

from repro.engine import stats
from repro.serving import ServiceConfig, StabilityService
from repro.serving.api import quick_serve_config


@pytest.fixture(scope="module")
def service():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        svc = StabilityService(quick_serve_config())
        yield svc
        svc.close()


@pytest.fixture()
def fresh_service():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        with StabilityService(quick_serve_config()) as svc:
            yield svc


def _quiet_measure(svc, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return svc.measure(*args, **kwargs)


class TestMeasure:
    def test_measure_payload_shape(self, service):
        out = _quiet_measure(service, "svd", 4, 1)
        assert out["algorithm"] == "svd"
        assert out["memory_bits_per_word"] == 4
        assert set(out["measures"]) == {
            "eis", "1-knn", "pip", "1-eigenspace-overlap", "semantic-displacement"
        }
        assert isinstance(out["artifact_key"], str)

    def test_warm_repeat_trains_and_decomposes_nothing(self, service):
        """The acceptance criterion: a repeated query is pure cache."""
        _quiet_measure(service, "svd", 4, 1)          # ensure warm
        before = stats(engine=service.engine, caches={"c": service.decomposition_cache})
        cache_before = dict(service.decomposition_cache.stats)

        repeat = _quiet_measure(service, "svd", 4, 1)

        after = stats(engine=service.engine, caches={"c": service.decomposition_cache})
        assert repeat["measures"] == _quiet_measure(service, "svd", 4, 1)["measures"]
        # Zero new trainings...
        assert after["pipeline"]["embedding_train_count"] == before["pipeline"]["embedding_train_count"]
        assert after["pipeline"]["downstream_train_count"] == before["pipeline"]["downstream_train_count"]
        # ... zero new decompositions (the store served the final values, so
        # the decomposition cache was not even consulted) ...
        assert service.decomposition_cache.stats["misses"] == cache_before["misses"]
        # ... and no store misses or writes for the repeated lookup.
        assert after["store"]["measures"]["misses"] == before["store"]["measures"]["misses"]
        assert after["store"]["measures"]["puts"] == before["store"]["measures"]["puts"]

    def test_identical_concurrent_requests_coalesce(self, fresh_service):
        """N identical in-flight queries -> exactly one computation."""
        service = fresh_service
        n_requests = 4
        release = threading.Event()
        entered = threading.Event()
        compute_calls = []
        original = service.pipeline.compute_measures

        def gated_compute(*args, **kwargs):
            compute_calls.append(args)
            entered.set()
            release.wait(timeout=30)
            return original(*args, **kwargs)

        service.pipeline.compute_measures = gated_compute
        try:
            results, errors = [], []

            def query():
                try:
                    results.append(_quiet_measure(service, "svd", 4, 1))
                except Exception as error:  # pragma: no cover - surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=query) for _ in range(n_requests)]
            threads[0].start()
            assert entered.wait(timeout=30)       # first request is computing
            for t in threads[1:]:
                t.start()
            # Followers are registered as coalesced before the gate opens.
            deadline = threading.Event()
            for _ in range(200):
                if service.metrics()["serving"]["coalesced_total"] >= n_requests - 1:
                    break
                deadline.wait(0.02)
            release.set()
            for t in threads:
                t.join(timeout=60)
        finally:
            service.pipeline.compute_measures = original
            release.set()

        assert not errors
        assert len(compute_calls) == 1            # exactly one computation
        assert len(results) == n_requests
        assert all(r == results[0] for r in results)
        metrics = service.metrics()["serving"]
        assert metrics["coalesced_total"] == n_requests - 1
        assert metrics["requests_measure"] == n_requests
        # One artifact was written: the single shared computation's.
        assert service.pipeline.store.stat("measures").puts == 1

    def test_distinct_requests_do_not_coalesce(self, service):
        before = service.metrics()["serving"]["coalesced_total"]
        _quiet_measure(service, "svd", 4, 1)
        _quiet_measure(service, "svd", 6, 1)
        assert service.metrics()["serving"]["coalesced_total"] == before


class TestSelect:
    def test_select_returns_feasible_best(self, service):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            out = service.select(128)
        assert out["criterion"] == "eis"
        assert out["selected"]["memory_bits_per_word"] <= 128
        assert out["n_feasible"] >= 2
        assert out["n_candidates"] == 4           # 2 dims x 2 precisions

    def test_select_respects_tight_budget(self, service):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            out = service.select(6)
        # Only dim=4/precision=1 (4 bits/word) and dim=6/precision=1 (6) fit.
        assert out["selected"]["memory_bits_per_word"] <= 6

    def test_select_infeasible_budget_raises(self, service):
        with pytest.raises(ValueError, match="fits"):
            service.select(1)

    def test_naive_criterion_needs_no_measures(self, fresh_service):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            out = fresh_service.select(1000, criterion="high-precision")
        assert out["selected"]["precision"] == 32
        # No measures were computed for a naive criterion.
        assert fresh_service.pipeline.store.stat("measures").lookups == 0

    def test_oracle_criterion_rejected(self, service):
        with pytest.raises(ValueError, match="oracle"):
            service.select(128, criterion="oracle")

    def test_unknown_criterion_rejected(self, service):
        with pytest.raises(ValueError, match="unknown selection criterion"):
            service.select(128, criterion="vibes")


class TestGridStream:
    def test_grid_iter_validates_axes_eagerly(self, service):
        # Errors surface at call time, before any record is produced -- the
        # HTTP layer relies on this to reject bad requests with a clean 400.
        with pytest.raises(KeyError, match="unknown embedding algorithm"):
            service.grid_iter(algorithms=("nope",))
        with pytest.raises(KeyError, match="unknown task"):
            service.grid_iter(tasks=("nope",))
        with pytest.raises(ValueError, match="duplicate"):
            service.grid_iter(dimensions=(4, 4))

    def test_grid_iter_matches_engine_run(self, service):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            streamed = list(service.grid_iter(with_measures=True))
            batch = service.engine.run(with_measures=True)
        assert streamed == batch
        assert service.metrics()["serving"]["records_streamed"] >= len(streamed)


class TestObservability:
    def test_healthz_shape(self, service):
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["vocab_words"] > 0
        assert health["algorithms"] == ["svd"]
        assert not health["store_persistent"]

    def test_metrics_has_all_surfaces(self, service):
        _quiet_measure(service, "svd", 4, 1)
        metrics = service.metrics()
        assert set(metrics) >= {"store", "pipeline", "decomposition_caches", "warmup", "serving"}
        assert metrics["pipeline"]["corpus_build_count"] == 1
        assert "measures" in metrics["store"]
        assert {"hits", "misses", "evictions", "entries"} <= set(
            metrics["decomposition_caches"]["serving"]
        )
        assert metrics["serving"]["inflight_now"] == 0

    def test_service_config_validation(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            ServiceConfig(max_concurrency=0)
