"""The grid-execution engine: artifact store, scheduler, and parallel fan-out.

The engine is the execution substrate of the reproduction: a
content-addressed :class:`~repro.engine.store.ArtifactStore` keyed by
configuration hashes (so repeated cells, experiments and runs reuse trained
artifacts), and a :class:`~repro.engine.scheduler.GridEngine` that orders
grid cells by shared ancestry and fans independent cell groups out over
processes with a bit-identical serial fallback.
"""

from repro.engine.backends import (
    AsyncReplicator,
    CircuitOpenError,
    DiskBackend,
    MemoryBackend,
    RemoteBackend,
    ReplicatedBackend,
    ShardedBackend,
    StoreBackend,
    TierStats,
    payload_intact,
)
from repro.engine.faults import FaultyBackend
from repro.engine.store import (
    ArtifactStore,
    CacheStats,
    config_hash,
    configure_default_store,
    default_store,
)
from repro.engine.scheduler import (
    CellGroup,
    GridEngine,
    GridPlan,
    evaluate_group,
    plan_grid,
    plan_groups,
)
from repro.engine.stats import stats
from repro.engine.streaming import OrderedCommitter, canonical_cell_keys, commit_in_order
from repro.engine.warmup import CorpusShipment, EmbeddingShipment

__all__ = [
    "ArtifactStore",
    "AsyncReplicator",
    "CacheStats",
    "CellGroup",
    "CircuitOpenError",
    "CorpusShipment",
    "DiskBackend",
    "EmbeddingShipment",
    "FaultyBackend",
    "GridEngine",
    "GridPlan",
    "MemoryBackend",
    "OrderedCommitter",
    "RemoteBackend",
    "ReplicatedBackend",
    "ShardedBackend",
    "StoreBackend",
    "TierStats",
    "canonical_cell_keys",
    "commit_in_order",
    "config_hash",
    "configure_default_store",
    "default_store",
    "evaluate_group",
    "payload_intact",
    "plan_grid",
    "plan_groups",
    "stats",
]
