"""HTTP surface of the online monitor: ingest, status, events, metrics."""

import http.client
import json
import warnings

import pytest

from repro.monitor import MonitorConfig
from repro.serving import StabilityService
from repro.serving.api import StabilityAPIServer, quick_serve_config

from tests.serving.test_api import get_json, live_server, request


@pytest.fixture(scope="module")
def monitored_server():
    """A live server whose service has a sync monitor with a hot threshold."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(quick_serve_config())
        service.enable_monitor(MonitorConfig(sync=True, thresholds={"eis": 0.0}))
    with live_server(service) as api:
        yield api, service
    service.close()


@pytest.fixture(scope="module")
def documents(monitored_server):
    _, service = monitored_server
    corpus = service.pipeline.corpus_pair.base
    return [[corpus.word_list[i] for i in doc] for doc in corpus.documents]


@pytest.fixture(scope="module")
def ingested(monitored_server, documents):
    """Two batches POSTed over HTTP: two snapshots, one sync retrain."""
    api, service = monitored_server
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        status1, first = get_json(
            api, "/monitor/ingest", method="POST", body={"documents": documents[:40]}
        )
        status2, second = get_json(
            api, "/monitor/ingest", method="POST", body={"documents": documents[40:]}
        )
    assert status1 == 200 and status2 == 200
    return first, second


def stream_events(api, query=""):
    conn = http.client.HTTPConnection("127.0.0.1", api.port, timeout=120)
    conn.request("GET", f"/monitor/events{query}")
    response = conn.getresponse()
    assert response.status == 200
    assert response.getheader("Content-Type") == "application/x-ndjson"
    lines = [json.loads(line) for line in response.read().decode().strip().splitlines()]
    conn.close()
    return lines


class TestIngest:
    def test_two_batches_two_versions(self, ingested):
        first, second = ingested
        assert first["version"] == 1
        assert second["version"] == 2
        assert second["ingested"]["documents"] == 60

    def test_string_documents_are_split(self, monitored_server, ingested):
        api, service = monitored_server
        # Strings split on whitespace; suppress the cut so this probe batch
        # doesn't advance the version history the other tests pin.
        words = service.pipeline.corpus_pair.base.word_list
        status, payload = get_json(
            api, "/monitor/ingest", method="POST",
            body={"documents": [" ".join(words[:5])], "cut": False},
        )
        assert status == 200
        assert payload["ingested"]["batch_tokens"] == 5
        assert payload["snapshot"] is None

    def test_get_is_405(self, monitored_server):
        api, _ = monitored_server
        status, payload = get_json(api, "/monitor/ingest")
        assert status == 405

    def test_bad_documents_400(self, monitored_server):
        api, _ = monitored_server
        for bad in ({}, {"documents": []}, {"documents": [[]]}, {"documents": [[1, 2]]}):
            status, payload = get_json(
                api, "/monitor/ingest", method="POST", body=bad
            )
            assert status == 400, payload


class TestStatusAndMetrics:
    def test_status_snapshot(self, monitored_server, ingested):
        api, _ = monitored_server
        status, payload = get_json(api, "/monitor/status")
        assert status == 200
        assert payload["version"] >= 2
        assert payload["counters"]["retrains_completed"] >= 1
        assert payload["last_report"]["drifted"] is True

    def test_metrics_monitor_section(self, monitored_server, ingested):
        api, _ = monitored_server
        status, payload = get_json(api, "/metrics")
        assert status == 200
        monitor = payload["monitor"]
        assert monitor is not None
        assert monitor["counters"]["snapshots_cut"] >= 2
        assert monitor["counters"]["drift_alerts"] >= 1


class TestEvents:
    def test_replay_buffered_events(self, monitored_server, ingested):
        api, _ = monitored_server
        events = stream_events(api)
        kinds = [e["kind"] for e in events]
        assert "snapshot_cut" in kinds
        assert "retrain_started" in kinds
        assert "measures_ready" in kinds
        assert "drift_alert" in kinds
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)

    def test_since_filters(self, monitored_server, ingested):
        api, _ = monitored_server
        events = stream_events(api)
        later = stream_events(api, f"?since={events[1]['seq']}")
        assert [e["seq"] for e in later] == [e["seq"] for e in events[2:]]

    def test_follow_streams_live_events(self, monitored_server, ingested, documents):
        api, service = monitored_server
        monitor = service.monitor
        last = monitor.events.last_seq
        conn = http.client.HTTPConnection("127.0.0.1", api.port, timeout=120)
        conn.request("GET", f"/monitor/events?follow=true&since={last}")
        response = conn.getresponse()
        assert response.status == 200
        # A forced no-op cut is skipped silently... so emit through the log
        # directly: the tail must deliver it while the connection is open.
        monitor.events.emit("snapshot_cut", version=99, probe=True)
        line = response.fp.readline()         # chunk size line
        payload = response.fp.readline()      # the NDJSON event
        event = json.loads(payload)
        assert event["kind"] == "snapshot_cut" and event.get("probe") is True
        conn.close()


class TestDisabled:
    def test_503_when_monitor_not_enabled(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service = StabilityService(quick_serve_config())
        try:
            with live_server(service) as api:
                for path, method, body in (
                    ("/monitor/status", "GET", None),
                    ("/monitor/ingest", "POST", {"documents": [["a", "b"]]}),
                    ("/monitor/events", "GET", None),
                ):
                    status, payload = get_json(api, path, method=method, body=body)
                    assert status == 503, (path, payload)
                    assert "monitor" in payload["error"]
        finally:
            service.close()
