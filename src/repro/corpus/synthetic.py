"""Synthetic Wikipedia-like corpora with controllable temporal drift.

The paper trains embedding pairs on Wiki'17 and Wiki'18 -- two snapshots of
the same underlying text distribution collected a year apart -- and studies
how that small change in training data propagates to downstream predictions.
Offline we cannot ship multi-billion-token Wikipedia dumps, so this module
provides the closest synthetic equivalent:

* a **topic-mixture language**: every document mixes a handful of latent
  topics, each topic boosting a subset of a shared Zipfian vocabulary.  This
  gives the co-occurrence structure embedding algorithms rely on (words from
  the same topic co-occur, yielding embedding clusters that downstream tasks
  can exploit);
* **temporal drift** between the two corpora in a pair: the second corpus
  keeps most documents from the first, replaces a small fraction, appends new
  documents, and slightly shifts the topic prior.  The drift magnitude is a
  single knob mirroring "accumulating 1% more data" / "one year of edits".

Downstream tasks (:mod:`repro.tasks`) derive their label structure from the
same topics, so the connection "embedding geometry -> downstream predictions"
the paper exploits is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Iterator, Sequence

import numpy as np

from repro.corpus.vocabulary import Vocabulary
from repro.utils.rng import check_random_state
from repro.utils.validation import check_probability

__all__ = ["SyntheticCorpusConfig", "SyntheticCorpusGenerator", "Corpus", "CorpusPair"]


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Configuration of the synthetic corpus generator.

    Attributes
    ----------
    vocab_size:
        Number of distinct word types in the generation lexicon.
    n_topics:
        Number of latent topics.  Topic identities are reused by the
        downstream tasks to define sentiment / entity structure.
    n_documents:
        Number of documents in the base ("year 17") corpus.
    doc_length_mean, doc_length_min:
        Documents lengths are drawn from a geometric-ish distribution with this
        mean, floored at ``doc_length_min``.
    zipf_exponent:
        Exponent of the global Zipf law over word ranks.
    topic_word_fraction:
        Fraction of the vocabulary boosted by each topic.
    topic_boost:
        Multiplicative boost applied to a topic's preferred words.
    topic_concentration:
        Dirichlet concentration of per-document topic mixtures (small values
        give "peaky", nearly single-topic documents).
    drift_doc_replace_fraction:
        Fraction of base documents replaced with fresh ones in the drifted
        corpus.
    drift_new_doc_fraction:
        Fraction of additional documents appended to the drifted corpus
        (models corpus growth between snapshots).
    drift_topic_shift:
        Magnitude of the perturbation applied to the topic prior in the
        drifted corpus.
    """

    vocab_size: int = 2000
    n_topics: int = 8
    n_documents: int = 600
    doc_length_mean: int = 120
    doc_length_min: int = 20
    zipf_exponent: float = 1.05
    topic_word_fraction: float = 0.15
    topic_boost: float = 80.0
    topic_concentration: float = 0.08
    drift_doc_replace_fraction: float = 0.5
    drift_new_doc_fraction: float = 0.1
    drift_topic_shift: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < self.n_topics:
            raise ValueError("vocab_size must be at least n_topics")
        if self.n_documents <= 0:
            raise ValueError("n_documents must be positive")
        if self.doc_length_min <= 1:
            raise ValueError("doc_length_min must be > 1")
        check_probability(self.topic_word_fraction, name="topic_word_fraction")
        check_probability(self.drift_doc_replace_fraction, name="drift_doc_replace_fraction")
        check_probability(self.drift_topic_shift, name="drift_topic_shift")
        if self.drift_new_doc_fraction < 0:
            raise ValueError("drift_new_doc_fraction must be >= 0")


@dataclass
class Corpus:
    """A tokenised corpus: documents of ids into a fixed generation lexicon.

    Attributes
    ----------
    word_list:
        The generation lexicon; index ``i`` is the surface form of word id
        ``i``.  (This is the *generator's* lexicon, not the training
        vocabulary -- build the latter with :meth:`build_vocabulary`.)
    documents:
        List of ``int64`` arrays of word ids.
    document_topics:
        Per-document dominant topic (used by the downstream task generators).
    name:
        Human-readable tag, e.g. ``"wiki17"``.
    """

    word_list: list[str]
    documents: list[np.ndarray]
    document_topics: np.ndarray
    name: str = "corpus"

    def __post_init__(self) -> None:
        if len(self.documents) != len(self.document_topics):
            raise ValueError("documents and document_topics must have equal length")

    def __len__(self) -> int:
        return len(self.documents)

    @property
    def num_tokens(self) -> int:
        return int(sum(len(d) for d in self.documents))

    def iter_token_documents(self) -> Iterator[list[str]]:
        """Yield each document as a list of word strings."""
        words = self.word_list
        for doc in self.documents:
            yield [words[i] for i in doc]

    def build_vocabulary(self, *, min_count: int = 1, max_size: int | None = None) -> Vocabulary:
        """Build a frequency-ordered training vocabulary from this corpus."""
        counts = np.bincount(
            np.concatenate(self.documents) if self.documents else np.array([], dtype=np.int64),
            minlength=len(self.word_list),
        )
        mapping = {
            self.word_list[i]: int(c) for i, c in enumerate(counts) if c >= max(min_count, 1)
        }
        vocab = Vocabulary(mapping, min_count=min_count)
        if max_size is not None:
            vocab = vocab.truncate(max_size)
        return vocab

    def encode_documents(self, vocab: Vocabulary) -> list[np.ndarray]:
        """Re-encode documents as ids in ``vocab`` (dropping out-of-vocab words)."""
        lookup = np.full(len(self.word_list), -1, dtype=np.int64)
        for gen_id, word in enumerate(self.word_list):
            vid = vocab.word_to_id(word)
            if vid is not None:
                lookup[gen_id] = vid
        encoded = []
        for doc in self.documents:
            ids = lookup[doc]
            encoded.append(ids[ids >= 0])
        return encoded


@dataclass
class CorpusPair:
    """A (base, drifted) pair of corpora, e.g. Wiki'17 and Wiki'18."""

    base: Corpus
    drifted: Corpus
    config: SyntheticCorpusConfig = field(default_factory=SyntheticCorpusConfig)

    def shared_vocabulary(
        self, *, min_count: int = 1, max_size: int | None = None
    ) -> Vocabulary:
        """Vocabulary over the *intersection* of the two corpora.

        The paper compares embedding rows word-by-word, so both embeddings in a
        pair must be trained (or at least compared) over a common vocabulary.
        """
        vocab_a = self.base.build_vocabulary(min_count=min_count)
        vocab_b = self.drifted.build_vocabulary(min_count=min_count)
        common = vocab_a.intersect(vocab_b)
        counts = {w: vocab_a.count(w) + vocab_b.count(w) for w in common}
        vocab = Vocabulary(counts, min_count=1)
        if max_size is not None:
            vocab = vocab.truncate(max_size)
        return vocab


class SyntheticCorpusGenerator:
    """Generates :class:`Corpus` and :class:`CorpusPair` objects.

    Parameters
    ----------
    config:
        Generation configuration; see :class:`SyntheticCorpusConfig`.
    """

    def __init__(self, config: SyntheticCorpusConfig | None = None) -> None:
        self.config = config or SyntheticCorpusConfig()
        self._word_list = [f"w{idx:05d}" for idx in range(self.config.vocab_size)]
        self._topic_word_dists = self._build_topic_distributions()

    # -- internals -----------------------------------------------------------

    def _build_topic_distributions(self) -> np.ndarray:
        """Per-topic word distributions: Zipf base boosted on topic words.

        Topic word sets are assigned deterministically from the config seed so
        that the base and drifted corpora (and the downstream task lexicons)
        all agree on what each topic "means".
        """
        cfg = self.config
        rng = check_random_state(cfg.seed)
        ranks = np.arange(1, cfg.vocab_size + 1, dtype=np.float64)
        zipf = ranks ** (-cfg.zipf_exponent)
        zipf /= zipf.sum()

        n_topic_words = max(1, int(round(cfg.topic_word_fraction * cfg.vocab_size)))
        dists = np.empty((cfg.n_topics, cfg.vocab_size), dtype=np.float64)
        self._topic_word_ids: list[np.ndarray] = []
        for k in range(cfg.n_topics):
            topic_words = rng.choice(cfg.vocab_size, size=n_topic_words, replace=False)
            self._topic_word_ids.append(np.sort(topic_words))
            boosted = zipf.copy()
            boosted[topic_words] *= cfg.topic_boost
            dists[k] = boosted / boosted.sum()
        return dists

    @property
    def word_list(self) -> list[str]:
        return list(self._word_list)

    def topic_words(self, topic: int) -> list[str]:
        """Surface forms of the words boosted by ``topic`` (used by task lexicons)."""
        ids = self._topic_word_ids[topic]
        return [self._word_list[i] for i in ids]

    def _sample_documents(
        self,
        n_documents: int,
        topic_prior: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[list[np.ndarray], np.ndarray]:
        cfg = self.config
        docs: list[np.ndarray] = []
        dominant_topics = np.empty(n_documents, dtype=np.int64)
        lengths = np.maximum(
            cfg.doc_length_min,
            rng.poisson(cfg.doc_length_mean, size=n_documents),
        )
        alpha = cfg.topic_concentration * cfg.n_topics * topic_prior
        alpha = np.maximum(alpha, 1e-3)
        for i in range(n_documents):
            theta = rng.dirichlet(alpha)
            dominant_topics[i] = int(np.argmax(theta))
            topic_counts = rng.multinomial(lengths[i], theta)
            pieces = []
            for k, count in enumerate(topic_counts):
                if count == 0:
                    continue
                pieces.append(
                    rng.choice(cfg.vocab_size, size=count, p=self._topic_word_dists[k])
                )
            tokens = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
            rng.shuffle(tokens)
            docs.append(tokens.astype(np.int64))
        return docs, dominant_topics

    # -- public API ----------------------------------------------------------

    def generate(
        self,
        *,
        name: str = "corpus",
        seed: int | None = None,
        n_documents: int | None = None,
        topic_prior: Sequence[float] | None = None,
    ) -> Corpus:
        """Generate a single corpus.

        Parameters
        ----------
        name:
            Tag stored on the returned :class:`Corpus`.
        seed:
            Sampling seed (defaults to the config seed).
        n_documents:
            Number of documents (defaults to the config value).
        topic_prior:
            Topic prior; uniform when omitted.
        """
        cfg = self.config
        rng = check_random_state(cfg.seed if seed is None else seed)
        n_docs = cfg.n_documents if n_documents is None else int(n_documents)
        prior = (
            np.full(cfg.n_topics, 1.0 / cfg.n_topics)
            if topic_prior is None
            else np.asarray(topic_prior, dtype=np.float64)
        )
        if prior.shape != (cfg.n_topics,):
            raise ValueError(f"topic_prior must have shape ({cfg.n_topics},)")
        prior = prior / prior.sum()
        docs, topics = self._sample_documents(n_docs, prior, rng)
        return Corpus(
            word_list=self.word_list, documents=docs, document_topics=topics, name=name
        )

    def generate_pair(
        self,
        *,
        seed: int | None = None,
        base_name: str = "wiki17",
        drifted_name: str = "wiki18",
    ) -> CorpusPair:
        """Generate a (base, drifted) corpus pair.

        The drifted corpus reuses most of the base documents, replaces a small
        fraction, appends freshly-sampled documents, and samples the new
        documents from a slightly perturbed topic prior -- mirroring a year of
        Wikipedia edits plus growth.
        """
        cfg = self.config
        seed = cfg.seed if seed is None else seed
        rng = check_random_state(seed)

        base = self.generate(name=base_name, seed=int(rng.integers(2**31 - 1)))

        uniform = np.full(cfg.n_topics, 1.0 / cfg.n_topics)
        shift = rng.dirichlet(np.ones(cfg.n_topics))
        drift_prior = (1.0 - cfg.drift_topic_shift) * uniform + cfg.drift_topic_shift * shift

        n_replace = int(round(cfg.drift_doc_replace_fraction * len(base)))
        n_new = int(round(cfg.drift_new_doc_fraction * len(base)))

        keep_mask = np.ones(len(base), dtype=bool)
        if n_replace > 0:
            replace_ids = rng.choice(len(base), size=n_replace, replace=False)
            keep_mask[replace_ids] = False

        kept_docs = [base.documents[i] for i in range(len(base)) if keep_mask[i]]
        kept_topics = base.document_topics[keep_mask]

        fresh_docs, fresh_topics = self._sample_documents(
            n_replace + n_new, drift_prior, rng
        )

        drifted = Corpus(
            word_list=self.word_list,
            documents=kept_docs + fresh_docs,
            document_topics=np.concatenate([kept_topics, fresh_topics]),
            name=drifted_name,
        )
        return CorpusPair(base=base, drifted=drifted, config=cfg)

    def with_config(self, **overrides) -> "SyntheticCorpusGenerator":
        """Return a new generator with some config fields overridden."""
        return SyntheticCorpusGenerator(replace(self.config, **overrides))
