"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_embedding_pair,
    check_in_choices,
    check_positive,
    check_probability,
)


class TestCheckArray:
    def test_coerces_lists(self):
        arr = check_array([[1, 2], [3, 4]], ndim=2)
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array([1, 2, 3], ndim=2)

    def test_empty_raises_by_default(self):
        with pytest.raises(ValueError, match="empty"):
            check_array(np.empty((0, 3)))

    def test_empty_allowed_when_requested(self):
        arr = check_array(np.empty((0, 3)), allow_empty=True)
        assert arr.shape == (0, 3)

    def test_nan_raises(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([np.nan, 1.0])

    def test_inf_raises(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([np.inf, 1.0])


class TestCheckEmbeddingPair:
    def test_accepts_different_dims(self):
        a, b = check_embedding_pair(np.ones((4, 2)), np.ones((4, 3)))
        assert a.shape == (4, 2) and b.shape == (4, 3)

    def test_row_mismatch_raises(self):
        with pytest.raises(ValueError, match="share a vocabulary"):
            check_embedding_pair(np.ones((4, 2)), np.ones((5, 2)))

    def test_same_dim_enforced(self):
        with pytest.raises(ValueError, match="equal dimensions"):
            check_embedding_pair(np.ones((4, 2)), np.ones((4, 3)), same_dim=True)


class TestScalarChecks:
    def test_check_positive(self):
        assert check_positive(2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive(0)
        assert check_positive(0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1, strict=False)

    def test_check_probability(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_check_in_choices(self):
        assert check_in_choices("a", {"a", "b"}) == "a"
        with pytest.raises(ValueError, match="must be one of"):
            check_in_choices("c", {"a", "b"})
