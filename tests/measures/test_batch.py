"""Tests for the shared-decomposition measure batch API."""

import numpy as np
import pytest

from repro.measures.base import DecompositionCache
from repro.measures.batch import compute_measure_batch
from repro.measures.eigenspace_instability import EigenspaceInstability
from repro.measures.eigenspace_overlap import EigenspaceOverlapDistance, eigenspace_overlap
from repro.measures.knn import KNNDistance
from repro.measures.pip_loss import PIPLoss, pip_loss
from repro.measures.semantic_displacement import SemanticDisplacement


@pytest.fixture()
def suite(embedding_pair):
    emb_a, emb_b = embedding_pair
    return {
        "eis": EigenspaceInstability(emb_a, emb_b, alpha=3.0),
        "1-knn": KNNDistance(k=3, num_queries=50, seed=0),
        "semantic-displacement": SemanticDisplacement(),
        "pip": PIPLoss(),
        "1-eigenspace-overlap": EigenspaceOverlapDistance(),
    }


class TestDecompositionCache:
    def test_svd_computed_once_per_matrix(self, rng):
        cache = DecompositionCache()
        X = rng.standard_normal((30, 5))
        first = cache.svd(X)
        second = cache.svd(X)
        assert first[0] is second[0]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_identity_keying_distinguishes_equal_content(self, rng):
        cache = DecompositionCache()
        X = rng.standard_normal((10, 3))
        cache.svd(X)
        cache.svd(X.copy())  # equal values, different object -> recomputed
        assert cache.misses == 2

    def test_cross_product_cached(self, rng):
        cache = DecompositionCache()
        X = rng.standard_normal((20, 4))
        Y = rng.standard_normal((20, 6))
        first = cache.cross(X, Y)
        second = cache.cross(X, Y)
        assert first is second

    def test_cached_measures_match_direct(self, rng):
        X = rng.standard_normal((40, 6))
        Y = rng.standard_normal((40, 8))
        cache = DecompositionCache()
        assert pip_loss(X, Y, cache=cache) == pytest.approx(pip_loss(X, Y), rel=1e-9)
        assert eigenspace_overlap(X, Y, cache=cache) == pytest.approx(
            eigenspace_overlap(X, Y), rel=1e-9
        )


class TestMeasureBatch:
    def test_batch_matches_individual_measures(self, embedding_pair, suite):
        emb_a, emb_b = embedding_pair
        batch = compute_measure_batch(suite, emb_a, emb_b, top_k=None)
        for name, measure in suite.items():
            individual = measure.compute_embeddings(emb_a, emb_b, top_k=None)
            assert batch[name].value == pytest.approx(individual.value, rel=1e-8, abs=1e-10), name
            assert batch[name].n_words == individual.n_words

    def test_one_svd_serves_all_decomposition_measures(self, embedding_pair, suite):
        emb_a, emb_b = embedding_pair
        batch = compute_measure_batch(suite, emb_a, emb_b, top_k=None)
        # EIS, overlap and PIP each need both matrices decomposed; without
        # sharing that is six SVDs, with the cache it is exactly two.
        svd_misses = batch.cache.misses - 1  # one miss is the shared cross product
        assert svd_misses == 2
        assert batch.cache.hits >= 4

    def test_values_dict(self, embedding_pair, suite):
        emb_a, emb_b = embedding_pair
        batch = compute_measure_batch(suite, emb_a, emb_b, top_k=None)
        assert set(batch.values) == set(suite)
        assert all(np.isfinite(v) for v in batch.values.values())
        assert len(batch) == len(suite)

    def test_batch_zero_on_identical_pair(self, embedding_pair, suite):
        emb_a, _ = embedding_pair
        batch = compute_measure_batch(suite, emb_a, emb_a, top_k=None)
        for name, result in batch.results.items():
            # The shared-SVD PIP path carries ~1e-6 of cancellation noise on
            # identical pairs (the exact-zero identity is pinned on the direct
            # path in test_invariance.py); everything else cancels exactly.
            tol = 1e-5 if name == "pip" else 1e-7
            assert result.value == pytest.approx(0.0, abs=tol), name
