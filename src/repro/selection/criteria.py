"""Selection criteria for choosing dimension-precision parameters.

Section 4.2 / 5.2 of the paper: given two or more candidate dimension-precision
settings (each evaluated as an embedding pair), pick the one expected to have
the lowest downstream instability *without training downstream models*.  A
criterion maps a grid record to a score; the candidate with the lowest score
is selected.  Besides the five embedding distance measures, the paper uses
three reference criteria: the oracle (true downstream disagreement, a lower
bound), and the naive high-precision / low-precision rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.instability.grid import GridRecord

__all__ = ["SelectionCriterion", "measure_criterion", "ORACLE", "HIGH_PRECISION", "LOW_PRECISION"]


@dataclass(frozen=True)
class SelectionCriterion:
    """A named scoring rule over grid records (lower score = preferred)."""

    name: str
    score: Callable[[GridRecord], float]
    #: Whether the criterion peeks at the true downstream disagreement
    #: (only the oracle does).
    uses_downstream: bool = False

    def select(self, candidates: list[GridRecord]) -> GridRecord:
        """Return the candidate with the lowest score (ties break to the first)."""
        if not candidates:
            raise ValueError("cannot select from an empty candidate list")
        return min(candidates, key=self.score)

    def __call__(self, record: GridRecord) -> float:
        return self.score(record)


def measure_criterion(measure_name: str) -> SelectionCriterion:
    """Criterion that ranks candidates by an embedding distance measure."""

    def score(record: GridRecord) -> float:
        if measure_name not in record.measures:
            raise KeyError(
                f"record for {record.algorithm} d={record.dim} b={record.precision} has no "
                f"measure {measure_name!r}; run the grid with with_measures=True"
            )
        return float(record.measures[measure_name])

    return SelectionCriterion(name=measure_name, score=score)


#: Oracle: picks the candidate with the lowest *true* downstream disagreement.
ORACLE = SelectionCriterion(
    name="oracle", score=lambda r: float(r.disagreement), uses_downstream=True
)

#: Naive baseline: prefer the highest precision available (negated so that the
#: lowest score corresponds to the highest precision).
HIGH_PRECISION = SelectionCriterion(name="high-precision", score=lambda r: -float(r.precision))

#: Naive baseline: prefer the lowest precision available.
LOW_PRECISION = SelectionCriterion(name="low-precision", score=lambda r: float(r.precision))
