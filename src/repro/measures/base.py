"""Common interface of the embedding distance measures.

Besides the abstract measure class this module hosts the shared-decomposition
machinery of the grid engine: a :class:`DecompositionCache` memoises the SVD
of each embedding matrix (and the cross products between left singular
bases) so that one decomposition per aligned pair serves the EIS, eigenspace
overlap and PIP loss measures instead of one each.
"""

from __future__ import annotations

import abc
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.embeddings.base import Embedding
from repro.linalg import KernelPolicy, compute_svd
from repro.utils.registry import Registry
from repro.utils.validation import check_embedding_pair

__all__ = [
    "MEASURES",
    "DEFAULT_CACHE_ENTRIES",
    "EmbeddingDistanceMeasure",
    "MeasureResult",
    "DecompositionCache",
    "left_singular_vectors",
    "rank_restricted",
    "aligned_top_k_pair",
]

#: Registry of distance measures keyed by the names used in the paper's tables.
MEASURES: Registry = Registry("embedding distance measure")

#: The paper computes every measure over the top-10k most frequent words only
#: (Section 2.4); our vocabularies are smaller so the slice is usually a no-op,
#: but the mechanism is preserved (and warned about, see ``aligned_top_k_pair``).
DEFAULT_TOP_K = 10_000


def rank_restricted(U: np.ndarray, S: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Restrict left singular vectors to the numerical rank of the matrix.

    Uses the standard tolerance ``S.max() * max(shape) * eps`` and keeps at
    least one column, matching both the EIS and eigenspace-overlap papers.
    """
    if S.size == 0:
        return U
    # The tolerance scales with the working precision: float32 decompositions
    # have a correspondingly higher singular-value noise floor.
    tol = S.max() * max(shape) * np.finfo(S.dtype if S.dtype.kind == "f" else np.float64).eps
    rank = max(int(np.sum(S > tol)), 1)
    return U[:, :rank]


#: Default entry bound of a :class:`DecompositionCache`; generous for one
#: measure batch (which needs two SVDs and one cross product) while keeping
#: long-lived caches, e.g. one shared across a whole grid run, bounded.
DEFAULT_CACHE_ENTRIES = 128


class DecompositionCache:
    """Memoises matrix decompositions shared between measures on one pair.

    Keys are object identities: within a measure batch the *same* ndarray
    objects are handed to every measure, so ``id``-based lookup is exact (a
    strong reference to the keyed array is kept, which also guards against id
    reuse).

    The cache is LRU-bounded (``max_entries`` per table, ``None`` = unbounded)
    so a cache shared across a long grid run cannot grow memory without limit;
    ``hits``/``misses``/``evictions`` counters expose its behaviour the same
    way :class:`~repro.engine.store.ArtifactStore` counters do.  Decompositions
    are dispatched through the kernel ``policy`` (exact/randomized, dtype),
    defaulting to the process-wide policy.

    The cache is safe to share across threads (the serving layer keeps one
    long-lived instance under concurrent requests): table bookkeeping happens
    under a lock, while the decompositions themselves compute outside it so
    unrelated requests don't serialise.  Two threads missing the same array
    simultaneously may both compute it (the duplicate work is benign and the
    first insert wins); the tables can never be observed mid-mutation.
    """

    def __init__(
        self,
        *,
        policy: KernelPolicy | None = None,
        max_entries: int | None = DEFAULT_CACHE_ENTRIES,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.policy = policy
        self.max_entries = max_entries
        self._svd: OrderedDict[
            int, tuple[np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]
        ] = OrderedDict()
        self._cross: OrderedDict[
            tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = OrderedDict()
        self._table_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def stats(self) -> dict[str, int]:
        """Counter snapshot (mirrors the artifact store's per-kind stats).

        ``bytes_in_memory`` gauges the private memory the cache itself holds
        onto: the factor arrays of cached SVDs and the cross products.  The
        keyed source arrays are excluded -- they are referenced for identity
        pinning only and are owned (and accounted for) by their producers.
        """
        with self._table_lock:
            bytes_held = sum(
                arr.nbytes
                for _, decomposition in self._svd.values()
                for arr in decomposition
            ) + sum(entry[2].nbytes for entry in self._cross.values())
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._svd) + len(self._cross),
                "bytes_in_memory": int(bytes_held),
            }

    def _evict(self, table: OrderedDict) -> None:
        # Caller holds ``_table_lock``.
        if self.max_entries is not None:
            while len(table) > self.max_entries:
                table.popitem(last=False)
                self.evictions += 1

    def svd(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Thin SVD ``(U, S, Vt)`` of ``X``, computed at most once per array."""
        with self._table_lock:
            entry = self._svd.get(id(X))
            if entry is not None and entry[0] is X:
                self.hits += 1
                self._svd.move_to_end(id(X))
                return entry[1]
            self.misses += 1
        decomposition = compute_svd(X, policy=self.policy)
        with self._table_lock:
            self._svd[id(X)] = (X, decomposition)
            self._evict(self._svd)
        return decomposition

    def left_singular(self, X: np.ndarray) -> np.ndarray:
        """Rank-restricted left singular vectors of ``X``."""
        U, S, _ = self.svd(X)
        return rank_restricted(U, S, X.shape)

    def cross(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """``U_X^T @ U_Y`` for the full (thin, unrestricted) singular bases."""
        key = (id(X), id(Y))
        with self._table_lock:
            entry = self._cross.get(key)
            if entry is not None and entry[0] is X and entry[1] is Y:
                self.hits += 1
                self._cross.move_to_end(key)
                return entry[2]
        U_x = self.svd(X)[0]
        U_y = self.svd(Y)[0]
        product = U_x.T @ U_y
        with self._table_lock:
            self.misses += 1
            self._cross[key] = (X, Y, product)
            self._evict(self._cross)
        return product


def left_singular_vectors(
    X: np.ndarray, cache: DecompositionCache | None = None
) -> np.ndarray:
    """Rank-restricted left singular vectors of ``X``, via ``cache`` when given."""
    if cache is not None:
        return cache.left_singular(X)
    U, S, _ = compute_svd(X)
    return rank_restricted(U, S, X.shape)


@dataclass(frozen=True)
class MeasureResult:
    """A measure evaluation: the value plus identifying metadata."""

    measure: str
    value: float
    n_words: int
    details: dict | None = None


def aligned_top_k_pair(
    a: Embedding, b: Embedding, *, top_k: int | None = DEFAULT_TOP_K
) -> tuple[Embedding, Embedding]:
    """Row-aligned restriction of ``a`` and ``b`` to their common top-``k`` words.

    When ``top_k`` exceeds the common vocabulary the slice is a no-op; that
    used to happen silently on small vocabularies, so it now emits a warning
    (the value is still computed, over every common word).
    """
    ra, rb = Embedding.aligned_pair(a, b, top_k=top_k)
    if top_k is not None and ra.n_words < top_k:
        warnings.warn(
            f"top_k={top_k} exceeds the common vocabulary of {ra.n_words} words; "
            "the top-k restriction is a no-op and the measure is computed over "
            "all common words",
            UserWarning,
            stacklevel=3,
        )
    return ra, rb


class EmbeddingDistanceMeasure(abc.ABC):
    """A dissimilarity between two embeddings of the same vocabulary.

    Subclasses implement :meth:`compute` on row-aligned matrices; the
    :meth:`compute_embeddings` wrapper handles restricting a pair of
    :class:`~repro.embeddings.base.Embedding` objects to their common
    (top-``k``) vocabulary first.  Measures built from matrix decompositions
    additionally override :meth:`compute_cached` to pull their SVDs from a
    shared :class:`DecompositionCache` (see :mod:`repro.measures.batch`).
    """

    #: Name used in the paper's tables (e.g. ``"eis"``, ``"1-knn"``).
    name: str = "measure"
    #: Whether the same embedding dimension is required for both inputs.
    requires_same_dim: bool = False

    @abc.abstractmethod
    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        """Dissimilarity between row-aligned embedding matrices."""

    def compute_cached(
        self, X: np.ndarray, X_tilde: np.ndarray, cache: DecompositionCache | None = None
    ) -> float:
        """Like :meth:`compute`, reusing decompositions from ``cache`` if able.

        The default implementation ignores the cache; decomposition-based
        measures override it.
        """
        return self.compute(X, X_tilde)

    def _validate(self, X: np.ndarray, X_tilde: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return check_embedding_pair(X, X_tilde, same_dim=self.requires_same_dim)

    def compute_aligned(
        self,
        ra: Embedding,
        rb: Embedding,
        *,
        cache: DecompositionCache | None = None,
        policy: KernelPolicy | None = None,
    ) -> MeasureResult:
        """Evaluate on an already row-aligned embedding pair.

        ``policy`` is the batch's kernel policy; most measures need nothing
        from it (the batch already cast the pair and the cache dispatches
        decompositions through it), but measures owning extra decompositions
        (EIS anchor factors) override this method and honour it.
        """
        value = self.compute_cached(ra.vectors, rb.vectors, cache)
        return MeasureResult(measure=self.name, value=float(value), n_words=ra.n_words)

    def compute_embeddings(
        self,
        a: Embedding,
        b: Embedding,
        *,
        top_k: int | None = DEFAULT_TOP_K,
        cache: DecompositionCache | None = None,
    ) -> MeasureResult:
        """Evaluate the measure on the common (top-``k``) vocabulary of ``a`` and ``b``."""
        ra, rb = aligned_top_k_pair(a, b, top_k=top_k)
        return self.compute_aligned(ra, rb, cache=cache)

    def __call__(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        return self.compute(X, X_tilde)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"
