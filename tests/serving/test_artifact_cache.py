"""HTTP caching of /artifacts: ETag, immutable Cache-Control, 304 validation.

Artifact names are content hashes, so the serving layer advertises every
payload as immutable and honours ``If-None-Match`` -- a CDN or browser cache
in front of a repro-serve node never needs to re-download a byte it has.
"""

import json
import warnings

import pytest

from repro.serving import StabilityService
from repro.serving.api import quick_serve_config

from tests.serving.test_api import live_server, request

IMMUTABLE = "public, max-age=31536000, immutable"


@pytest.fixture(scope="module")
def server():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(quick_serve_config())
    # One known artifact to probe against.
    service.store.put_json("cache-probe", "a" * 24, {"x": 1})
    with live_server(service) as api:
        yield api
    service.close()


NAME = "a" * 24 + ".json"
PATH = f"/artifacts/cache-probe/{NAME}"


def fetch(server, path, method="GET", headers=None):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
    conn.request(method, path, headers=headers or {})
    response = conn.getresponse()
    data = response.read()
    conn.close()
    return response, data


class TestCacheHeaders:
    def test_get_carries_etag_and_immutable_cache_control(self, server):
        response, data = fetch(server, PATH)
        assert response.status == 200
        assert response.getheader("ETag") == f'"{NAME}"'
        assert response.getheader("Cache-Control") == IMMUTABLE
        assert json.loads(data) == {"x": 1}

    def test_head_carries_cache_headers(self, server):
        response, data = fetch(server, PATH, method="HEAD")
        assert response.status == 200
        assert response.getheader("ETag") == f'"{NAME}"'
        assert response.getheader("Cache-Control") == IMMUTABLE
        assert data == b""

    def test_missing_artifact_has_no_cache_headers(self, server):
        response, _ = fetch(server, "/artifacts/cache-probe/" + "f" * 24 + ".json")
        assert response.status == 404
        assert response.getheader("ETag") is None


class TestIfNoneMatch:
    def test_matching_etag_is_304_with_empty_body(self, server):
        response, data = fetch(
            server, PATH, headers={"If-None-Match": f'"{NAME}"'}
        )
        assert response.status == 304
        assert data == b""
        assert response.getheader("ETag") == f'"{NAME}"'
        assert response.getheader("Content-Length") == "0"

    def test_unquoted_and_weak_validators_match(self, server):
        for header in (NAME, f'W/"{NAME}"', f'w/"{NAME}"'):
            response, data = fetch(server, PATH, headers={"If-None-Match": header})
            assert response.status == 304, header

    def test_candidate_list_matches(self, server):
        header = f'"zzz.json", "{NAME}"'
        response, _ = fetch(server, PATH, headers={"If-None-Match": header})
        assert response.status == 304

    def test_wildcard_matches(self, server):
        response, _ = fetch(server, PATH, headers={"If-None-Match": "*"})
        assert response.status == 304

    def test_stale_etag_serves_full_payload(self, server):
        response, data = fetch(
            server, PATH, headers={"If-None-Match": '"other.json"'}
        )
        assert response.status == 200
        assert json.loads(data) == {"x": 1}

    def test_head_honours_if_none_match(self, server):
        response, data = fetch(
            server, PATH, method="HEAD", headers={"If-None-Match": f'"{NAME}"'}
        )
        assert response.status == 304
        assert data == b""

    def test_if_none_match_on_missing_artifact_is_404(self, server):
        response, _ = fetch(
            server, "/artifacts/cache-probe/" + "e" * 24 + ".json",
            headers={"If-None-Match": "*"},
        )
        assert response.status == 404

    def test_conditional_fetch_keeps_connection_reusable(self, server):
        # A 304 must frame correctly on a keep-alive connection: a second
        # request on the same socket still answers.
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        conn.request("GET", PATH, headers={"If-None-Match": f'"{NAME}"'})
        first = conn.getresponse()
        assert first.status == 304
        first.read()
        conn.request("GET", PATH)
        second = conn.getresponse()
        assert second.status == 200
        assert json.loads(second.read()) == {"x": 1}
        conn.close()
