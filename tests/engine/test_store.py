"""Tests for the content-addressed artifact store."""

import numpy as np
import pytest

from repro.engine.store import (
    ArtifactStore,
    config_hash,
    configure_default_store,
    default_store,
)


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == config_hash({"b": [2, 3], "a": 1})

    def test_different_payloads_differ(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})
        assert config_hash({"a": 1}) != config_hash({"b": 1})

    def test_handles_numpy_and_dataclasses(self):
        from repro.corpus.synthetic import SyntheticCorpusConfig

        cfg = SyntheticCorpusConfig(vocab_size=10)
        key = config_hash({"cfg": cfg, "x": np.float64(1.5), "n": np.int64(3)})
        assert isinstance(key, str) and len(key) == 24
        assert key == config_hash({"cfg": cfg, "x": 1.5, "n": 3})

    def test_store_key_helper(self):
        store = ArtifactStore()
        assert store.key(a=1, b=2) == config_hash({"a": 1, "b": 2})


class TestMemoryTier:
    def test_json_round_trip_preserves_identity(self):
        store = ArtifactStore()
        store.put_json("downstream", "k", {"x": 1.25})
        assert store.get_json("downstream", "k") == {"x": 1.25}
        # The memory tier returns the stored object itself.
        assert store.get_json("downstream", "k") is store.get_json("downstream", "k")

    def test_miss_returns_none_and_counts(self):
        store = ArtifactStore()
        assert store.get_json("downstream", "absent") is None
        assert store.stat("downstream").misses == 1
        assert store.stat("downstream").hits == 0

    def test_hit_and_put_counters(self):
        store = ArtifactStore()
        store.put_json("measures", "k", {"eis": 0.5})
        store.get_json("measures", "k")
        store.get_json("measures", "k")
        stat = store.stat("measures")
        assert (stat.hits, stat.misses, stat.puts) == (2, 0, 1)
        assert stat.lookups == 2

    def test_kinds_are_isolated(self):
        store = ArtifactStore()
        store.put_json("a", "k", 1)
        assert store.get_json("b", "k") is None


class TestDiskTier:
    def test_json_survives_new_store(self, tmp_path):
        ArtifactStore(tmp_path).put_json("downstream", "k", {"acc": 0.75})
        fresh = ArtifactStore(tmp_path)
        assert fresh.get_json("downstream", "k") == {"acc": 0.75}
        assert fresh.stat("downstream").hits == 1

    def test_arrays_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        P = np.arange(12, dtype=np.float64).reshape(4, 3)
        store.put_arrays("decomposition", "k", {"P": P, "S": np.ones(3)})
        loaded = ArtifactStore(tmp_path).get_arrays("decomposition", "k")
        np.testing.assert_array_equal(loaded["P"], P)
        np.testing.assert_array_equal(loaded["S"], np.ones(3))

    def test_embedding_pair_round_trip(self, tmp_path, embedding_pair):
        emb_a, emb_b = embedding_pair
        ArtifactStore(tmp_path).put_embedding_pair("embedding_pair", "k", (emb_a, emb_b))
        loaded_a, loaded_b = ArtifactStore(tmp_path).get_embedding_pair(
            "embedding_pair", "k"
        )
        assert loaded_a.vocab.words == emb_a.vocab.words
        assert loaded_b.vocab.words == emb_b.vocab.words
        np.testing.assert_array_equal(loaded_a.vectors, emb_a.vectors)
        np.testing.assert_array_equal(loaded_b.vectors, emb_b.vectors)
        assert loaded_a.metadata == emb_a.metadata

    def test_float_values_round_trip_exactly(self, tmp_path):
        # Bit-identical warm reruns require exact float round-trips via JSON.
        value = {"disagreement": 1.0 / 3.0, "accuracy_a": 0.1 + 0.2}
        ArtifactStore(tmp_path).put_json("downstream", "k", value)
        assert ArtifactStore(tmp_path).get_json("downstream", "k") == value

    def test_files_live_under_kind_directories(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json("downstream", "deadbeef", {})
        store.put_arrays("decomposition", "cafe", {"x": np.zeros(2)})
        assert (tmp_path / "downstream" / "deadbeef.json").exists()
        assert (tmp_path / "decomposition" / "cafe.npz").exists()
        # No stray temp files left behind by the atomic writes.
        assert not list(tmp_path.rglob("*.tmp"))


class TestDefaultStore:
    def test_unconfigured_default_is_memory_only(self):
        store = default_store()
        assert not store.persistent

    def test_configured_default_persists(self, tmp_path):
        configure_default_store(tmp_path)
        try:
            store = default_store()
            assert store.persistent and store.root == tmp_path
        finally:
            configure_default_store(None)
        assert not default_store().persistent
