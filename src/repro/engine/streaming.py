"""Streaming result path of the grid engine: per-cell records as they finish.

The batch scheduler evaluates :class:`~repro.engine.scheduler.CellGroup`\\ s,
collects every group's records, and reassembles them at the end.  Streaming
callers -- the serving layer's ``/grid`` endpoint, progress displays, anything
that wants to act on a cell before the whole grid is done -- instead consume
:meth:`GridEngine.run_iter`, which yields :class:`~repro.instability.grid.GridRecord`\\ s
as workers complete them.

Two commit disciplines are offered:

* **arrival order** (``ordered=False``): records are yielded the moment their
  group finishes; under parallel execution the order is nondeterministic.
* **ordered commit** (``ordered=True``, the default): an
  :class:`OrderedCommitter` buffers out-of-order completions and releases
  records in the canonical axis-product order, so the stream is *bit-identical*
  to the serial batch result regardless of worker scheduling.  The batch
  :meth:`GridEngine.run` is a thin ``list(run_iter(ordered=True))`` wrapper.

The committer is deliberately tiny and synchronous -- it is shared by the
multiprocessing path (which feeds it group results from
``imap_unordered``) and by the serving layer's tests, which drive it with
synthetic arrival orders.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instability.grid import GridRecord

__all__ = ["CellKey", "OrderedCommitter", "canonical_cell_keys", "cell_key", "commit_in_order"]

#: Identity of one grid cell: (algorithm, dim, precision, seed, task).
CellKey = tuple[str, int, int, int, str]


def cell_key(record: "GridRecord") -> CellKey:
    """The (algorithm, dim, precision, seed, task) identity of a record."""
    return (record.algorithm, record.dim, record.precision, record.seed, record.task)


def canonical_cell_keys(
    algorithms: tuple[str, ...],
    dimensions: tuple[int, ...],
    precisions: tuple[int, ...],
    seeds: tuple[int, ...],
    tasks: tuple[str, ...],
) -> list[CellKey]:
    """Every cell key of a grid in the canonical axis-product order.

    This is the order the batch path has always returned (and tests pin):
    algorithms x dimensions x precisions x seeds, with tasks innermost.
    """
    return [
        (algorithm, dim, precision, seed, task)
        for algorithm, dim, precision, seed in itertools.product(
            algorithms, dimensions, precisions, seeds
        )
        for task in tasks
    ]


class OrderedCommitter:
    """Re-sequences out-of-order cell completions into canonical order.

    Feed it records in *any* arrival order via :meth:`push`; it yields every
    record exactly once, in the order of the ``keys`` it was built with.  A
    record whose turn has not come yet is buffered; pushing a key outside the
    expected grid raises immediately (it would otherwise be silently dropped),
    and :meth:`finish` raises if the stream ended with cells still missing.
    """

    def __init__(self, keys: Iterable[CellKey]) -> None:
        self._keys = list(keys)
        self._index = {key: i for i, key in enumerate(self._keys)}
        if len(self._index) != len(self._keys):
            raise ValueError("duplicate cell keys in the canonical order")
        self._pending: dict[CellKey, "GridRecord"] = {}
        self._cursor = 0

    @property
    def committed(self) -> int:
        """How many records have been released so far."""
        return self._cursor

    @property
    def buffered(self) -> int:
        """How many records arrived early and are waiting for their turn."""
        return len(self._pending)

    @property
    def remaining(self) -> int:
        """How many expected cells have not been released yet (buffered or absent)."""
        return len(self._keys) - self._cursor

    def push(self, record: "GridRecord") -> Iterator["GridRecord"]:
        """Accept one record; yield it plus any buffered successors now due."""
        key = cell_key(record)
        position = self._index.get(key)
        if position is None:
            raise KeyError(f"unexpected grid cell {key!r} pushed to the committer")
        if key in self._pending or position < self._cursor:
            raise ValueError(f"grid cell {key!r} was pushed twice")
        self._pending[key] = record
        while self._cursor < len(self._keys):
            due = self._pending.pop(self._keys[self._cursor], None)
            if due is None:
                break
            self._cursor += 1
            yield due

    def finish(self) -> None:
        """Assert every expected cell was committed (call after the stream ends)."""
        if self._cursor != len(self._keys):
            missing = [k for k in self._keys[self._cursor:] if k not in self._pending]
            raise RuntimeError(
                f"grid stream ended with {len(self._keys) - self._cursor} cells "
                f"uncommitted; missing {missing[:5]}{'...' if len(missing) > 5 else ''}"
            )


def commit_in_order(
    batches: Iterable[list["GridRecord"]], keys: Iterable[CellKey]
) -> Iterator["GridRecord"]:
    """Stream record batches through an :class:`OrderedCommitter`.

    ``batches`` is an iterable of per-group record lists in arrival order
    (e.g. ``imap_unordered`` output); the yielded stream is in canonical
    order and complete, or the committer raises.
    """
    committer = OrderedCommitter(keys)
    for batch in batches:
        for record in batch:
            yield from committer.push(record)
    committer.finish()
