"""Figure 1 (top): downstream instability vs embedding dimension.

For each embedding algorithm and downstream task, train full-precision
embedding pairs across a sweep of dimensions and report the % prediction
disagreement.  The paper's finding: disagreement generally *decreases* as the
dimension increases, plateauing at large dimensions.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.instability.grid import average_over_seeds
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    precision: int = 32,
    dimensions: tuple[int, ...] | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 1 (top) at a fixed precision (default: full precision)."""
    pipe = resolve_pipeline(pipeline)
    records = resolve_engine(pipe, n_workers=n_workers).run(
        precisions=(precision,), dimensions=dimensions, with_measures=False
    )
    averaged = average_over_seeds(records)
    rows = [
        {
            "task": r.task,
            "algorithm": r.algorithm,
            "dimension": r.dim,
            "precision": r.precision,
            "disagreement_pct": r.disagreement,
        }
        for r in sorted(averaged, key=lambda r: (r.task, r.algorithm, r.dim))
    ]

    # Shape check the paper reports: the smallest dimension should be at least
    # as unstable as the largest one for most (task, algorithm) series.
    increases = 0
    total = 0
    by_series: dict[tuple[str, str], list] = {}
    for r in averaged:
        by_series.setdefault((r.task, r.algorithm), []).append(r)
    for series in by_series.values():
        series = sorted(series, key=lambda r: r.dim)
        if len(series) >= 2:
            total += 1
            if series[0].disagreement >= series[-1].disagreement:
                increases += 1
    summary = {
        "series_where_smallest_dim_is_least_stable": increases,
        "series_total": total,
    }
    return ExperimentResult(name="figure-1-dimension", rows=rows, summary=summary)
