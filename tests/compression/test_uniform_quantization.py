"""Tests for uniform quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.uniform_quantization import (
    UniformQuantizer,
    compress_embedding,
    compress_pair,
    optimal_clip_threshold,
    uniform_quantize,
)


class TestUniformQuantize:
    def test_number_of_levels_bounded(self, rng):
        X = rng.standard_normal((50, 10))
        for bits in (1, 2, 4):
            q = uniform_quantize(X, bits)
            assert len(np.unique(q)) <= 2**bits

    def test_full_precision_is_identity(self, rng):
        X = rng.standard_normal((10, 4))
        np.testing.assert_allclose(uniform_quantize(X, 32), X)

    def test_values_within_clip(self, rng):
        X = rng.standard_normal((30, 5)) * 10
        q = uniform_quantize(X, 4, clip=1.0)
        assert np.abs(q).max() <= 1.0 + 1e-12

    def test_deterministic_by_default(self, rng):
        X = rng.standard_normal((20, 3))
        np.testing.assert_allclose(uniform_quantize(X, 2), uniform_quantize(X, 2))

    def test_stochastic_rounding_differs_but_bounded(self, rng):
        X = rng.standard_normal((40, 8))
        a = uniform_quantize(X, 2, stochastic=True, seed=1)
        b = uniform_quantize(X, 2, stochastic=True, seed=2)
        assert not np.allclose(a, b)
        assert len(np.unique(a)) <= 4

    def test_idempotent(self, rng):
        """Quantizing an already-quantized matrix with the same grid is a no-op."""
        X = rng.standard_normal((20, 4))
        clip = optimal_clip_threshold(X, 3)
        once = uniform_quantize(X, 3, clip=clip)
        twice = uniform_quantize(once, 3, clip=clip)
        np.testing.assert_allclose(once, twice)

    def test_error_decreases_with_precision(self, rng):
        X = rng.standard_normal((100, 10))
        errors = [np.linalg.norm(X - uniform_quantize(X, b)) for b in (1, 2, 4, 8)]
        assert errors == sorted(errors, reverse=True)

    def test_invalid_bits(self, rng):
        with pytest.raises(ValueError):
            uniform_quantize(rng.standard_normal((2, 2)), 0)

    def test_invalid_clip(self, rng):
        with pytest.raises(ValueError):
            uniform_quantize(rng.standard_normal((2, 2)), 2, clip=-1.0)


class TestOptimalClipThreshold:
    def test_within_data_range(self, rng):
        X = rng.standard_normal((200, 5))
        thr = optimal_clip_threshold(X, 4)
        assert 0 < thr <= np.abs(X).max() + 1e-12

    def test_zero_matrix(self):
        assert optimal_clip_threshold(np.zeros((3, 3)), 4) == 1.0

    def test_high_precision_uses_max(self, rng):
        X = rng.standard_normal((50, 4))
        assert optimal_clip_threshold(X, 32) == pytest.approx(np.abs(X).max())

    def test_lower_bits_clip_more(self, rng):
        X = rng.standard_normal((500, 8))
        assert optimal_clip_threshold(X, 1) <= optimal_clip_threshold(X, 8) + 1e-9


class TestQuantizerAndPairs:
    def test_quantizer_requires_fit(self, rng):
        q = UniformQuantizer(bits=2)
        with pytest.raises(RuntimeError):
            q.transform(rng.standard_normal((2, 2)))

    def test_shared_threshold_pair(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        qa, qb = compress_pair(emb_a, emb_b, 2, share_threshold=True)
        assert qa.metadata["precision"] == 2
        assert qb.metadata["precision"] == 2
        # Shared grid: the union of values has at most 2**2 distinct levels.
        assert len(np.unique(np.concatenate([qa.vectors.ravel(), qb.vectors.ravel()]))) <= 4

    def test_independent_threshold_pair(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        qa, qb = compress_pair(emb_a, emb_b, 2, share_threshold=False)
        assert len(np.unique(qa.vectors)) <= 4
        assert len(np.unique(qb.vectors)) <= 4

    def test_compress_embedding_preserves_vocab(self, embedding):
        q = compress_embedding(embedding, 4)
        assert q.vocab.words == embedding.vocab.words
        assert q.metadata["precision"] == 4


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.float64, (12, 4), elements=st.floats(-100, 100)),
    st.sampled_from([1, 2, 4, 8]),
)
def test_property_quantization_levels_and_range(X, bits):
    q = uniform_quantize(X, bits)
    assert q.shape == X.shape
    assert len(np.unique(q)) <= 2**bits
    # Quantized values never exceed the data's max magnitude (clip <= max|X|).
    assert np.abs(q).max() <= np.abs(X).max() + 1e-9 or np.abs(X).max() == 0
