"""Unit tests of the replicated artifact fabric.

Covers :class:`~repro.engine.backends.ReplicatedBackend` (fan-out writes,
first-success reads, read-repair, hinted handoff), payload integrity
validation, the :class:`~repro.engine.faults.FaultyBackend` injection
harness, the ``RemoteBackend`` put retry, and the ``ArtifactStore``
threading (``replicas=`` construction, spec round trip, peer health).
"""

import io
import random
import threading

import numpy as np
import pytest

from repro.engine.backends import (
    CircuitOpenError,
    DiskBackend,
    MemoryBackend,
    RemoteBackend,
    ReplicatedBackend,
    StoreBackend,
    backend_from_spec,
    payload_intact,
)
from repro.engine.faults import FaultyBackend
from repro.engine.store import ArtifactStore


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def npz_payload() -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, values=np.arange(6.0))
    return buffer.getvalue()


class TestPayloadIntact:
    def test_valid_json(self):
        assert payload_intact("a.json", b'{"x": [1, 2]}')

    def test_garbled_json(self):
        assert not payload_intact("a.json", b"\x84\x9b not json")

    def test_truncated_json(self):
        assert not payload_intact("a.json", b'{"x": [1,')

    def test_valid_npz(self):
        assert payload_intact("a.npz", npz_payload())

    def test_bitflipped_npz(self):
        payload = bytearray(npz_payload())
        payload[0] ^= 0xFF  # destroy the zip magic
        assert not payload_intact("a.npz", bytes(payload))

    def test_unknown_suffix_is_trusted(self):
        assert payload_intact("a.bin", b"\x00\x01\x02")


class TestReplicatedFanout:
    def test_requires_at_least_one_replica(self):
        with pytest.raises(ValueError):
            ReplicatedBackend([])

    def test_put_lands_on_every_replica(self):
        a, b, c = MemoryBackend(), MemoryBackend(), MemoryBackend()
        replicated = ReplicatedBackend([a, b, c])
        replicated.put("measures", "k.json", b"{}")
        assert all(r.contains("measures", "k.json") for r in (a, b, c))

    def test_get_is_first_success(self):
        a, b = MemoryBackend(), MemoryBackend()
        replicated = ReplicatedBackend([a, b])
        replicated.put("measures", "k.json", b"{}")
        assert replicated.get("measures", "k.json") == b"{}"
        # The hit came from the first replica; the second was never probed.
        assert b.stats.hits == 0 and b.stats.misses == 0

    def test_contains_any(self):
        a, b = MemoryBackend(), MemoryBackend()
        b.put("measures", "k.json", b"{}")
        replicated = ReplicatedBackend([a, b])
        assert replicated.contains("measures", "k.json")
        assert not replicated.contains("measures", "missing.json")

    def test_delete_everywhere(self):
        a, b = MemoryBackend(), MemoryBackend()
        replicated = ReplicatedBackend([a, b])
        replicated.put("measures", "k.json", b"{}")
        replicated.delete("measures", "k.json")
        assert not a.contains("measures", "k.json")
        assert not b.contains("measures", "k.json")

    def test_flags_derive_from_children(self, tmp_path):
        local = ReplicatedBackend([MemoryBackend(), DiskBackend(tmp_path)])
        assert local.persistent and not local.remote_capable
        remote = ReplicatedBackend([RemoteBackend("http://127.0.0.1:9")])
        assert remote.persistent and remote.remote_capable


class TestReadRepair:
    def test_lagging_replica_is_repaired_from_a_healthy_one(self):
        lagging, healthy = MemoryBackend(), MemoryBackend()
        healthy.put("measures", "k.json", b'{"v": 1}')
        replicated = ReplicatedBackend([lagging, healthy])
        assert replicated.get("measures", "k.json") == b'{"v": 1}'
        assert replicated.repairs == 1
        assert lagging.get("measures", "k.json") == b'{"v": 1}'
        # The next read hits the repaired first replica and repairs nothing.
        assert replicated.get("measures", "k.json") == b'{"v": 1}'
        assert replicated.repairs == 1

    def test_corrupt_copy_is_repaired_and_counted(self):
        # Satellite: a replica holding a corrupt copy is repaired from a
        # healthy one, and the corrupt counter still increments.
        corrupt, healthy = MemoryBackend(), MemoryBackend()
        corrupt.put("measures", "k.json", b"\x84\x9b torn bytes")
        healthy.put("measures", "k.json", b'{"v": 1}')
        replicated = ReplicatedBackend([corrupt, healthy])
        assert replicated.get("measures", "k.json") == b'{"v": 1}'
        assert replicated.stats.corrupt == 1
        assert corrupt.stats.corrupt == 1
        assert replicated.repairs == 1
        assert corrupt.get("measures", "k.json") == b'{"v": 1}'

    def test_corrupt_npz_copy_is_repaired(self):
        payload = npz_payload()
        torn = bytearray(payload)
        torn[:4] = b"\x00\x00\x00\x00"
        corrupt, healthy = MemoryBackend(), MemoryBackend()
        corrupt.put("pairs", "k.npz", bytes(torn))
        healthy.put("pairs", "k.npz", payload)
        replicated = ReplicatedBackend([corrupt, healthy])
        assert replicated.get("pairs", "k.npz") == payload
        assert corrupt.get("pairs", "k.npz") == payload

    def test_every_copy_corrupt_is_a_miss(self):
        a, b = MemoryBackend(), MemoryBackend()
        a.put("measures", "k.json", b"\x84garbage")
        b.put("measures", "k.json", b"\x84garbage")
        replicated = ReplicatedBackend([a, b])
        assert replicated.get("measures", "k.json") is None
        assert replicated.stats.corrupt == 2
        assert replicated.stats.misses == 1

    def test_validation_can_be_disabled(self):
        a = MemoryBackend()
        a.put("measures", "k.json", b"not json")
        replicated = ReplicatedBackend([a], validate=False)
        assert replicated.get("measures", "k.json") == b"not json"
        assert replicated.stats.corrupt == 0

    def test_repair_of_unavailable_replica_queues_a_hint(self):
        dead = FaultyBackend(MemoryBackend())
        healthy = MemoryBackend()
        healthy.put("measures", "k.json", b"{}")
        replicated = ReplicatedBackend([dead, healthy])
        dead.partition()
        assert replicated.get("measures", "k.json") == b"{}"
        assert replicated.repairs == 0
        assert replicated.hints_queued == 1
        dead.heal()
        assert replicated.drain_hints() == 1
        assert dead.inner.contains("measures", "k.json")

    def test_erroring_replica_is_repaired(self):
        flaky = FaultyBackend(MemoryBackend())
        healthy = MemoryBackend()
        healthy.put("measures", "k.json", b"{}")
        replicated = ReplicatedBackend([flaky, healthy])
        flaky.fail_next("get")
        assert replicated.get("measures", "k.json") == b"{}"
        assert replicated.repairs == 1
        assert flaky.inner.contains("measures", "k.json")


class TestHintedHandoff:
    def test_partitioned_replica_write_becomes_a_hint(self):
        dead = FaultyBackend(MemoryBackend())
        healthy = MemoryBackend()
        replicated = ReplicatedBackend([dead, healthy])
        dead.partition()
        replicated.put("measures", "k.json", b"{}")
        assert healthy.contains("measures", "k.json")
        assert not dead.inner.contains("measures", "k.json")
        assert replicated.hints_queued == 1
        assert replicated.hints_pending == 1

    def test_hints_drain_when_replica_heals(self):
        dead = FaultyBackend(MemoryBackend())
        healthy = MemoryBackend()
        replicated = ReplicatedBackend([dead, healthy])
        dead.partition()
        replicated.put("measures", "a.json", b"{}")
        replicated.put("measures", "b.json", b"{}")
        dead.heal()
        # Any subsequent operation drains opportunistically.
        replicated.put("measures", "c.json", b"{}")
        assert replicated.hints_drained == 2
        assert replicated.hints_pending == 0
        assert dead.inner.contains("measures", "a.json")
        assert dead.inner.contains("measures", "b.json")

    def test_failed_drain_requeues_and_skips_the_replica(self):
        dead = FaultyBackend(MemoryBackend())
        healthy = MemoryBackend()
        replicated = ReplicatedBackend([dead, healthy])
        dead.partition()
        replicated.put("measures", "a.json", b"{}")
        replicated.put("measures", "b.json", b"{}")
        dead.heal()
        dead.fail_next("put")  # first delivery attempt fails, replica skipped
        assert replicated.drain_hints() == 0
        assert replicated.hints_pending == 2
        assert replicated.drain_hints() == 2

    def test_scripted_put_failure_queues_a_hint(self):
        # An *available* replica whose put fails (detected via the errors
        # delta) must also fall back to a hint, not lose the write.
        flaky = FaultyBackend(MemoryBackend())
        healthy = MemoryBackend()
        replicated = ReplicatedBackend([flaky, healthy])
        flaky.fail_next("put")
        replicated.put("measures", "k.json", b"{}")
        assert replicated.hints_queued == 1
        assert replicated.drain_hints() == 1
        assert flaky.inner.contains("measures", "k.json")

    def test_hint_dedupe_keeps_latest_payload(self):
        dead = FaultyBackend(MemoryBackend())
        replicated = ReplicatedBackend([dead, MemoryBackend()])
        dead.partition()
        replicated.put("measures", "k.json", b'{"v": 1}')
        replicated.put("measures", "k.json", b'{"v": 2}')
        assert replicated.hints_queued == 1
        assert replicated.hints_pending == 1
        dead.heal()
        assert replicated.drain_hints() == 1
        assert dead.inner.get("measures", "k.json") == b'{"v": 2}'

    def test_hint_queue_overflow_drops_oldest_and_counts(self):
        dead = FaultyBackend(MemoryBackend())
        replicated = ReplicatedBackend([dead, MemoryBackend()], max_hints=2)
        dead.partition()
        replicated.put("measures", "a.json", b"{}")
        replicated.put("measures", "b.json", b"{}")
        replicated.put("measures", "c.json", b"{}")
        assert replicated.hints_queued == 3
        assert replicated.hints_dropped == 1
        assert replicated.hints_pending == 2
        assert dead.stats.dropped == 1
        dead.heal()
        assert replicated.drain_hints() == 2
        assert not dead.inner.contains("measures", "a.json")  # the dropped one
        assert dead.inner.contains("measures", "b.json")
        assert dead.inner.contains("measures", "c.json")

    def test_delete_purges_matching_hints(self):
        dead = FaultyBackend(MemoryBackend())
        replicated = ReplicatedBackend([dead, MemoryBackend()])
        dead.partition()
        replicated.put("measures", "k.json", b"{}")
        replicated.delete("measures", "k.json")
        assert replicated.hints_pending == 0
        dead.heal()
        assert replicated.drain_hints() == 0
        assert not dead.inner.contains("measures", "k.json")

    def test_describe_reports_replication_health(self):
        dead = FaultyBackend(MemoryBackend())
        replicated = ReplicatedBackend([dead, MemoryBackend()])
        dead.partition()
        replicated.put("measures", "k.json", b"{}")
        described = replicated.describe()
        assert described["name"] == "replicated"
        assert described["n_replicas"] == 2
        assert described["hints_queued"] == 1
        assert described["hints_pending"] == 1
        assert described["replicas"][0]["partitioned"] is True


class TestReplicatedSpec:
    def test_spec_round_trip(self, tmp_path):
        replicated = ReplicatedBackend(
            [
                DiskBackend(tmp_path / "a"),
                RemoteBackend("http://127.0.0.1:9", timeout=0.2),
            ],
            max_hints=16,
            validate=False,
        )
        spec = replicated.spec()
        rebuilt = backend_from_spec(spec)
        assert isinstance(rebuilt, ReplicatedBackend)
        assert rebuilt.spec() == spec
        assert rebuilt.max_hints == 16 and rebuilt.validate is False

    def test_spec_none_when_a_child_cannot_describe_itself(self):
        replicated = ReplicatedBackend([FaultyBackend(MemoryBackend())])
        assert replicated.spec() is None


class ScriptedConnection:
    """Connection whose per-request outcome comes from a shared script.

    Script entries: ``"fail"`` raises on request; an integer becomes the
    response status.  An exhausted script answers 200.
    """

    def __init__(self, script: list) -> None:
        self.script = script
        self._status = 200

    def request(self, *args, **kwargs) -> None:
        action = self.script.pop(0) if self.script else 200
        if action == "fail":
            raise ConnectionError("synthetic failure")
        self._status = action

    def getresponse(self):
        status = self._status

        class Response:
            def read(self):
                return b""

        Response.status = status
        return Response()

    def close(self) -> None:
        pass


class TestRemotePutRetry:
    """Satellite: RemoteBackend.put retries once with jitter on transient
    failures/5xx before counting a drop."""

    def make_backend(self, script, sleeps, clock=None):
        backend = RemoteBackend(
            "http://127.0.0.1:9",
            timeout=0.1,
            put_retry_delay=0.1,
            clock=clock or FakeClock(),
            rng=random.Random(0),
            sleep=sleeps.append,
        )
        backend._connection = lambda: ScriptedConnection(script)  # type: ignore[method-assign]
        return backend

    def test_connection_failure_retries_once_and_succeeds(self):
        sleeps: list = []
        # Both inner attempts of the first request fail (request + stale-
        # connection reconnect), then the deliberate retry succeeds.
        backend = self.make_backend(["fail", "fail", 200], sleeps)
        backend.put("measures", "k.json", b"{}")
        assert backend.stats.errors == 0
        assert len(sleeps) == 1
        assert 0.05 <= sleeps[0] <= 0.15  # jittered 50-150% of put_retry_delay

    def test_5xx_retries_once_and_succeeds(self):
        sleeps: list = []
        backend = self.make_backend([500, 200], sleeps)
        backend.put("measures", "k.json", b"{}")
        assert backend.stats.errors == 0
        assert len(sleeps) == 1

    def test_persistent_5xx_counts_one_error(self):
        sleeps: list = []
        backend = self.make_backend([500, 503], sleeps)
        backend.put("measures", "k.json", b"{}")
        assert backend.stats.errors == 1
        assert len(sleeps) == 1

    def test_4xx_is_not_retried(self):
        sleeps: list = []
        backend = self.make_backend([403], sleeps)
        backend.put("measures", "k.json", b"{}")
        assert backend.stats.errors == 1
        assert sleeps == []

    def test_open_breaker_fails_fast_without_retry(self):
        sleeps: list = []
        clock = FakeClock()
        # Four failures: initial request + reconnect, then the forced retry's
        # request + reconnect -- the put stays failed and opens the breaker.
        backend = self.make_backend(["fail", "fail", "fail", "fail"], sleeps, clock=clock)
        backend.put("measures", "a.json", b"{}")  # opens the breaker
        assert backend.stats.errors == 1 and backend.breaker_open
        sleeps.clear()
        backend.put("measures", "b.json", b"{}")  # CircuitOpenError path
        assert backend.stats.errors == 2
        assert sleeps == []  # fail-fast: no retry against an open breaker

    def test_breaker_open_property_tracks_cooldown(self):
        sleeps: list = []
        clock = FakeClock()
        backend = self.make_backend(["fail", "fail", "fail", "fail"], sleeps, clock=clock)
        assert backend.available
        backend.put("measures", "k.json", b"{}")
        assert backend.breaker_open and not backend.available
        clock.advance(31.0)
        assert not backend.breaker_open and backend.available


class TestFaultyBackend:
    def test_transparent_when_no_faults(self):
        backend = FaultyBackend(MemoryBackend())
        backend.put("measures", "k.json", b"{}")
        assert backend.get("measures", "k.json") == b"{}"
        assert backend.contains("measures", "k.json")
        backend.delete("measures", "k.json")
        assert not backend.contains("measures", "k.json")
        assert backend.stats.errors == 0

    def test_scripted_failures_target_one_op(self):
        backend = FaultyBackend(MemoryBackend())
        backend.put("measures", "k.json", b"{}")
        backend.fail_next("get", times=2)
        assert backend.get("measures", "k.json") is None
        assert backend.get("measures", "k.json") is None
        assert backend.get("measures", "k.json") == b"{}"
        assert backend.stats.errors == 2
        # A scripted get failure must not eat a put.
        backend.fail_next("get")
        backend.put("measures", "other.json", b"{}")
        assert backend.inner.contains("measures", "other.json")

    def test_wildcard_failure_hits_any_op(self):
        backend = FaultyBackend(MemoryBackend())
        backend.fail_next("*")
        backend.put("measures", "k.json", b"{}")
        assert not backend.inner.contains("measures", "k.json")

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            FaultyBackend(MemoryBackend()).fail_next("fetch")

    def test_probabilistic_errors_with_seeded_rng(self):
        backend = FaultyBackend(
            MemoryBackend(), error_rate=0.5, rng=random.Random(7)
        )
        outcomes = [backend.get("measures", f"{i}.json") for i in range(50)]
        # A seeded coin must fail some and pass some -- deterministic per seed.
        assert 0 < backend.stats.errors < 50
        assert all(value is None for value in outcomes)

    def test_partition_blocks_everything_and_flips_available(self):
        backend = FaultyBackend(MemoryBackend())
        backend.put("measures", "k.json", b"{}")
        backend.partition()
        assert not backend.available
        assert backend.get("measures", "k.json") is None
        assert not backend.contains("measures", "k.json")
        backend.heal()
        assert backend.available
        assert backend.get("measures", "k.json") == b"{}"

    def test_scripted_corruption_flips_payload(self):
        backend = FaultyBackend(MemoryBackend())
        backend.put("measures", "k.json", b'{"v": 1}')
        backend.corrupt_next()
        corrupted = backend.get("measures", "k.json")
        assert corrupted is not None and corrupted != b'{"v": 1}'
        assert not payload_intact("k.json", corrupted)
        assert backend.get("measures", "k.json") == b'{"v": 1}'  # one-shot

    def test_latency_uses_injected_sleep(self):
        naps: list = []
        backend = FaultyBackend(MemoryBackend(), latency=0.25, sleep=naps.append)
        backend.put("measures", "k.json", b"{}")
        backend.get("measures", "k.json")
        assert naps == [0.25, 0.25]

    def test_log_records_outcomes_with_injected_clock(self):
        clock = FakeClock(now=10.0)
        backend = FaultyBackend(MemoryBackend(), clock=clock)
        backend.put("measures", "k.json", b"{}")
        clock.advance(5.0)
        backend.partition()
        backend.get("measures", "k.json")
        assert backend.log[0] == (10.0, "put", "measures", "k.json", "ok")
        assert backend.log[1] == (15.0, "get", "measures", "k.json", "partitioned")

    def test_describe_nests_inner(self):
        backend = FaultyBackend(MemoryBackend())
        described = backend.describe()
        assert described["name"] == "faulty(memory)"
        assert described["inner"]["name"] == "memory"
        assert described["partitioned"] is False


class TestReplicatedStore:
    def test_replicas_construction_writes_everywhere(self, tmp_path):
        first, second = tmp_path / "r1", tmp_path / "r2"
        store = ArtifactStore(replicas=[first, second])
        store.put_json("results", "abc", {"v": 9})
        assert (first / "results" / "abc.json").exists()
        assert (second / "results" / "abc.json").exists()

    def test_read_repair_through_the_store(self, tmp_path):
        lagging, healthy = tmp_path / "r1", tmp_path / "r2"
        seed = ArtifactStore(replicas=[healthy])
        seed.put_json("results", "abc", {"v": 9})
        store = ArtifactStore(replicas=[lagging, healthy])
        assert store.get_json("results", "abc") == {"v": 9}
        assert store.replica_counters()["repairs"] == 1
        # The lagging replica alone can now serve the artifact.
        solo = ArtifactStore(replicas=[lagging])
        assert solo.get_json("results", "abc") == {"v": 9}

    def test_url_entries_become_remote_backends(self, tmp_path):
        store = ArtifactStore(
            replicas=["http://127.0.0.1:9", tmp_path / "local"]
        )
        replicated = store.tiers[0]
        assert isinstance(replicated, ReplicatedBackend)
        assert isinstance(replicated.replicas[0], RemoteBackend)
        assert isinstance(replicated.replicas[1], DiskBackend)
        # A replicated tier with a remote child must be excluded from the
        # byte API (peer recursion safety).
        assert store._local_tiers == []

    def test_replicas_and_remote_url_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(
                tmp_path, remote_url="http://127.0.0.1:9", replicas=["http://127.0.0.1:10"]
            )

    def test_spec_round_trip(self, tmp_path):
        store = ArtifactStore(
            tmp_path / "root", replicas=[tmp_path / "r1", tmp_path / "r2"]
        )
        store.put_json("results", "abc", {"v": 9})
        rebuilt = ArtifactStore.from_spec(store.spec())
        assert isinstance(rebuilt.tiers[1], ReplicatedBackend)
        assert rebuilt.get_json("results", "abc") == {"v": 9}

    def test_peer_health_and_degraded(self, tmp_path):
        clock = FakeClock()
        peer = RemoteBackend("http://127.0.0.1:9", timeout=0.05, clock=clock)
        store = ArtifactStore(
            backends=[ReplicatedBackend([peer, DiskBackend(tmp_path)])]
        )
        assert store.peer_health() == [
            {"url": "http://127.0.0.1:9", "breaker_open": False}
        ]
        assert not store.degraded
        # A failed read opens the peer's breaker; the store reports degraded.
        store.get_json("results", "missing")
        assert store.peer_health()[0]["breaker_open"]
        assert store.degraded
        clock.advance(31.0)
        assert not store.degraded

    def test_replica_counters_all_zero_without_replication(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.replica_counters() == {
            "repairs": 0,
            "hints_queued": 0,
            "hints_drained": 0,
            "hints_dropped": 0,
            "hints_pending": 0,
        }

    def test_engine_stats_surface_replica_counters(self, tmp_path):
        from repro.engine import stats

        lagging, healthy = tmp_path / "r1", tmp_path / "r2"
        seed = ArtifactStore(replicas=[healthy])
        seed.put_json("results", "abc", {"v": 9})
        store = ArtifactStore(replicas=[lagging, healthy])
        store.get_json("results", "abc")
        snapshot = stats(store)
        assert snapshot["store_replicas"]["repairs"] == 1
        assert snapshot["store_tiers"][0]["repairs"] == 1
        assert snapshot["store_peers"] == []
