"""Fixed-bucket latency histograms and Prometheus text exposition.

Histograms are the aggregate half of the telemetry subsystem: every
``span(..., metric=...)`` observation lands in the process-wide
:data:`REGISTRY` keyed by ``(metric, op)`` — e.g. ``("request",
"/measure")``, ``("phase", "train")``, ``("store", "disk.get")`` — and
is summarised as p50/p95/p99 in ``engine.stats()["telemetry"]`` and on
``/metrics``.

The bucket layout is fixed at construction so two histograms with the
same layout merge by adding counts — workers can ship their histograms
to a coordinator without any quantile sketch machinery.  Percentiles are
estimated by linear interpolation inside the owning bucket, which bounds
the error by the bucket width; the default layout spans 50µs to 60s with
roughly 1-2-5 spacing.

``render_prometheus`` flattens an ``engine.stats()`` snapshot (nested
dicts of counters) plus the histogram registry into Prometheus text
exposition format, with proper label escaping.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

# Upper bounds in milliseconds, 1-2-5 spaced from 50µs to 60s.  The final
# implicit bucket is +Inf.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0,
)


class LatencyHistogram:
    """A thread-safe fixed-bucket histogram of durations in milliseconds."""

    __slots__ = ("buckets", "counts", "count", "sum_ms", "min_ms", "max_ms", "_lock")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS):
        if not buckets or list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("bucket bounds must be strictly increasing and non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)   # last slot is +Inf
        self.count = 0
        self.sum_ms = 0.0
        self.min_ms = math.inf
        self.max_ms = -math.inf
        self._lock = threading.Lock()

    def observe(self, ms: float) -> None:
        ms = float(ms)
        index = bisect_left(self.buckets, ms)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum_ms += ms
            if ms < self.min_ms:
                self.min_ms = ms
            if ms > self.max_ms:
                self.max_ms = ms

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (layouts must match)."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different bucket layouts")
        with other._lock:
            counts = list(other.counts)
            count, sum_ms = other.count, other.sum_ms
            min_ms, max_ms = other.min_ms, other.max_ms
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += c
            self.count += count
            self.sum_ms += sum_ms
            self.min_ms = min(self.min_ms, min_ms)
            self.max_ms = max(self.max_ms, max_ms)

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) in milliseconds.

        Linear interpolation inside the owning bucket; the estimate is
        always within that bucket's bounds, and clamped to the observed
        ``[min, max]`` range so tiny samples stay sane.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    lo = self.buckets[index - 1] if index > 0 else 0.0
                    hi = self.buckets[index] if index < len(self.buckets) else self.max_ms
                    if hi < lo:   # +Inf bucket with max inside a lower range
                        hi = lo
                    fraction = (rank - previous) / bucket_count
                    value = lo + (hi - lo) * fraction
                    return min(max(value, self.min_ms), self.max_ms)
            return self.max_ms

    def summary(self) -> dict:
        with self._lock:
            count, sum_ms = self.count, self.sum_ms
            min_ms = self.min_ms if count else 0.0
            max_ms = self.max_ms if count else 0.0
        return {
            "count": count,
            "sum_ms": round(sum_ms, 3),
            "min_ms": round(min_ms, 3),
            "max_ms": round(max_ms, 3),
            "p50_ms": round(self.percentile(0.50), 3),
            "p95_ms": round(self.percentile(0.95), 3),
            "p99_ms": round(self.percentile(0.99), 3),
        }

    def to_dict(self) -> dict:
        """Full mergeable state: bounds plus per-bucket counts."""
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "count": self.count,
                "sum_ms": self.sum_ms,
            }

    def cumulative(self) -> list[tuple[str, int]]:
        """``(le, cumulative_count)`` pairs for Prometheus exposition."""
        with self._lock:
            counts = list(self.counts)
        out, running = [], 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            out.append((_format_float(bound), running))
        out.append(("+Inf", running + counts[-1]))
        return out


class MetricsRegistry:
    """Process-wide map of ``(metric, op)`` to :class:`LatencyHistogram`."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS):
        self._buckets = buckets
        self._histograms: dict[tuple[str, str], LatencyHistogram] = {}
        self._lock = threading.Lock()

    def observe(self, metric: str, op: str, ms: float) -> None:
        key = (metric, op)
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(key, LatencyHistogram(self._buckets))
        histogram.observe(ms)

    def get(self, metric: str, op: str) -> LatencyHistogram | None:
        return self._histograms.get((metric, op))

    def items(self) -> list[tuple[tuple[str, str], LatencyHistogram]]:
        with self._lock:
            return sorted(self._histograms.items())

    def snapshot(self) -> dict:
        """``{metric: {op: summary}}`` for ``stats()["telemetry"]``."""
        out: dict[str, dict] = {}
        for (metric, op), histogram in self.items():
            out.setdefault(metric, {})[op] = histogram.summary()
        return out

    def reset(self) -> None:
        with self._lock:
            self._histograms.clear()


#: The process-wide default registry every ``span(metric=...)`` feeds.
REGISTRY = MetricsRegistry()


def telemetry_snapshot(registry: MetricsRegistry = None) -> dict:
    """The ``telemetry`` section of ``engine.stats()``."""
    return {"latency": (registry or REGISTRY).snapshot()}


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize_name(name: str) -> str:
    clean = _NAME_SANITIZE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _numeric(value) -> float | None:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if isinstance(value, float) and not math.isfinite(value):
            return None
        return float(value)
    return None


def _flatten(prefix: str, value, out: list[tuple[str, float]]) -> None:
    number = _numeric(value)
    if number is not None:
        out.append((prefix, number))
        return
    if isinstance(value, dict):
        for key, item in value.items():
            _flatten(f"{prefix}_{_sanitize_name(str(key))}", item, out)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            segment = str(index)
            if isinstance(item, dict):
                segment = _sanitize_name(str(item.get("name", index)))
            _flatten(f"{prefix}_{segment}", item, out)
    # strings / None / other leaves are not exposable as samples


def render_prometheus(stats_snapshot: dict | None = None,
                      registry: MetricsRegistry = None) -> str:
    """Render histograms plus a counter snapshot as Prometheus text format.

    ``stats_snapshot`` is an ``engine.stats()``-shaped nested dict; every
    finite numeric leaf becomes a ``repro_<path>`` gauge (bools as 0/1,
    list items keyed by their ``name`` field when present).  The latency
    registry is exposed as a single ``repro_latency_ms`` histogram family
    with ``kind``/``op`` labels.
    """
    registry = registry or REGISTRY
    lines = [
        "# HELP repro_latency_ms Latency histograms by kind (request/phase/store) and op.",
        "# TYPE repro_latency_ms histogram",
    ]
    for (metric, op), histogram in registry.items():
        labels = f'kind="{escape_label_value(metric)}",op="{escape_label_value(op)}"'
        for le, cumulative_count in histogram.cumulative():
            lines.append(f'repro_latency_ms_bucket{{{labels},le="{le}"}} {cumulative_count}')
        summary = histogram.to_dict()
        lines.append(f"repro_latency_ms_sum{{{labels}}} {_format_float(summary['sum_ms'])}")
        lines.append(f"repro_latency_ms_count{{{labels}}} {summary['count']}")

    samples: list[tuple[str, float]] = []
    if stats_snapshot:
        for section, value in stats_snapshot.items():
            if section == "telemetry":
                continue   # already exposed as the histogram family above
            _flatten(f"repro_{_sanitize_name(str(section))}", value, samples)
    seen: set[str] = set()
    for name, value in samples:
        if name in seen:
            continue   # two paths sanitized to the same name: first wins
        seen.add(name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_float(value)}")
    return "\n".join(lines) + "\n"
