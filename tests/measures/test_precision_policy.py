"""Float32 kernel-policy tests: tolerance vs float64, and cache bounding.

The float32 policy trades a documented amount of accuracy for roughly halved
SVD/GEMM time.  The tolerances pinned here are the contract referenced by the
README's kernel-layer notes: spectral measures stay within ``1e-4`` absolute
of the float64 values on embedding-scale inputs, and the k-NN measure (whose
value is quantised in units of ``1/(k * queries)`` and can flip near-tie
neighbours) stays within ``0.05``.
"""

import numpy as np
import pytest

from repro.embeddings.base import Embedding
from repro.linalg import KernelPolicy
from repro.measures.base import DecompositionCache
from repro.measures.batch import compute_measure_batch
from repro.measures.eigenspace_instability import EigenspaceInstability
from repro.measures.eigenspace_overlap import EigenspaceOverlapDistance
from repro.measures.knn import KNNDistance
from repro.measures.pip_loss import PIPLoss
from repro.measures.semantic_displacement import SemanticDisplacement

#: Documented float32-vs-float64 absolute tolerances per measure.  PIP is an
#: unnormalised Frobenius norm, so its tolerance is relative instead.
FLOAT32_ABS_TOL = {
    "eis": 1e-4,
    "1-eigenspace-overlap": 1e-4,
    "semantic-displacement": 1e-4,
    "1-knn": 0.05,
}
FLOAT32_REL_TOL = {"pip": 1e-3}


@pytest.fixture()
def suite(embedding_pair):
    emb_a, emb_b = embedding_pair
    return {
        "eis": EigenspaceInstability(emb_a, emb_b, alpha=3.0),
        "1-knn": KNNDistance(k=3, num_queries=50, seed=0),
        "semantic-displacement": SemanticDisplacement(),
        "pip": PIPLoss(),
        "1-eigenspace-overlap": EigenspaceOverlapDistance(),
    }


class TestFloat32Policy:
    def test_float32_within_documented_tolerance(self, embedding_pair, suite):
        emb_a, emb_b = embedding_pair
        exact = compute_measure_batch(suite, emb_a, emb_b, top_k=None)
        fast = compute_measure_batch(
            suite, emb_a, emb_b, top_k=None, policy=KernelPolicy(dtype="float32")
        )
        for name in suite:
            if name in FLOAT32_REL_TOL:
                assert fast[name].value == pytest.approx(
                    exact[name].value, rel=FLOAT32_REL_TOL[name]
                ), name
            else:
                assert fast[name].value == pytest.approx(
                    exact[name].value, abs=FLOAT32_ABS_TOL[name]
                ), name

    def test_float32_pair_flows_through_stack(self, embedding_pair):
        emb_a, _ = embedding_pair
        emb32 = emb_a.astype(np.float32)
        assert emb32.vectors.dtype == np.float32
        assert emb32.metadata["dtype"] == "float32"
        # Embedding construction and validation both preserve float32.
        rebuilt = Embedding(vocab=emb32.vocab, vectors=emb32.vectors)
        assert rebuilt.vectors.dtype == np.float32
        cache = DecompositionCache(policy=KernelPolicy(dtype="float32"))
        U, S, Vt = cache.svd(emb32.vectors)
        assert U.dtype == np.float32

    def test_astype_is_identity_when_matching(self, embedding_pair):
        emb_a, _ = embedding_pair
        assert emb_a.astype(np.float64) is emb_a

    def test_float64_policy_is_bit_identical_to_no_policy(self, embedding_pair, suite):
        emb_a, emb_b = embedding_pair
        plain = compute_measure_batch(suite, emb_a, emb_b, top_k=None)
        policied = compute_measure_batch(
            suite, emb_a, emb_b, top_k=None, policy=KernelPolicy(dtype="float64")
        )
        for name in suite:
            assert plain[name].value == policied[name].value, name

    def test_batch_policy_reaches_eis_anchor_factors(self, embedding_pair):
        """The float32 policy is applied end to end, including anchor SVDs."""
        emb_a, emb_b = embedding_pair
        eis = EigenspaceInstability(emb_a, emb_b, alpha=3.0)
        measures = {"eis": eis}
        compute_measure_batch(
            measures, emb_a, emb_b, top_k=None, policy=KernelPolicy(dtype="float32")
        )
        float32_factors = [
            factors for (_, dtype), factors in eis._factor_memo.items()
            if dtype == "float32"
        ]
        assert float32_factors and float32_factors[0].P.dtype == np.float32
        # A policy-less batch on the same instance derives separate float64
        # factors instead of reusing the float32 ones.
        compute_measure_batch(measures, emb_a, emb_b, top_k=None)
        float64_factors = [
            factors for (_, dtype), factors in eis._factor_memo.items()
            if dtype == "float64"
        ]
        assert float64_factors and float64_factors[0].P.dtype == np.float64

    def test_eigenspace_instability_function_applies_policy_to_pair(self, embedding_pair):
        from repro.measures.eigenspace_instability import eigenspace_instability

        emb_a, emb_b = embedding_pair
        X, Y = emb_a.vectors, emb_b.vectors
        E, E_t = emb_a.vectors, emb_b.vectors
        exact = eigenspace_instability(X, Y, E, E_t)
        fast = eigenspace_instability(X, Y, E, E_t, policy=KernelPolicy(dtype="float32"))
        # The whole evaluation (pair + anchors) runs in float32, not just the
        # anchors: the result matches the fully-cast computation exactly.
        manual = eigenspace_instability(
            X.astype(np.float32), Y.astype(np.float32),
            E.astype(np.float32), E_t.astype(np.float32),
        )
        assert fast == manual
        assert fast == pytest.approx(exact, abs=FLOAT32_ABS_TOL["eis"])

    def test_randomized_knobs_change_embedding_keys(self):
        """Persistent stores must never serve artifacts across knob changes."""
        from repro.corpus.synthetic import SyntheticCorpusConfig
        from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
        from repro.linalg import configure_default_policy

        cfg = PipelineConfig(
            corpus=SyntheticCorpusConfig(
                vocab_size=80, n_documents=30, doc_length_mean=20, seed=0
            ),
            algorithms=("svd",), dimensions=(4,), precisions=(32,), seeds=(0,),
            tasks=("sst2",), kernel_policy="randomized",
        )
        try:
            pipeline = InstabilityPipeline(cfg)
            key_default = pipeline._embedding_fields("svd", 4, 0)
            configure_default_policy(n_power_iter=0)
            key_tweaked = pipeline._embedding_fields("svd", 4, 0)
        finally:
            configure_default_policy()
        assert key_default != key_tweaked
        # Exact policies ignore the randomized knobs entirely.
        exact_cfg = PipelineConfig(
            corpus=cfg.corpus, algorithms=("svd",), dimensions=(4,),
            precisions=(32,), seeds=(0,), tasks=("sst2",), kernel_policy="exact",
        )
        try:
            exact_pipeline = InstabilityPipeline(exact_cfg)
            key_exact = exact_pipeline._embedding_fields("svd", 4, 0)
            configure_default_policy(n_power_iter=0)
            assert exact_pipeline._embedding_fields("svd", 4, 0) == key_exact
        finally:
            configure_default_policy()

    def test_float32_measure_values_are_python_floats(self, embedding_pair, suite):
        emb_a, emb_b = embedding_pair
        fast = compute_measure_batch(
            suite, emb_a, emb_b, top_k=None, policy=KernelPolicy(dtype="float32")
        )
        for result in fast.results.values():
            assert isinstance(result.value, float)
            assert np.isfinite(result.value)


class TestDecompositionCacheBounds:
    def test_lru_eviction_and_counter(self, rng):
        cache = DecompositionCache(max_entries=2)
        matrices = [rng.standard_normal((10, 3)) for _ in range(4)]
        for X in matrices:
            cache.svd(X)
        assert cache.evictions == 2
        assert cache.stats["entries"] <= 2
        # The two most recent entries still hit; the evicted ones re-miss.
        hits_before = cache.hits
        cache.svd(matrices[-1])
        assert cache.hits == hits_before + 1
        misses_before = cache.misses
        cache.svd(matrices[0])
        assert cache.misses == misses_before + 1

    def test_recent_use_protects_from_eviction(self, rng):
        cache = DecompositionCache(max_entries=2)
        X, Y, Z = (rng.standard_normal((8, 3)) for _ in range(3))
        cache.svd(X)
        cache.svd(Y)
        cache.svd(X)           # X becomes most recent
        cache.svd(Z)           # evicts Y, not X
        hits_before = cache.hits
        cache.svd(X)
        assert cache.hits == hits_before + 1

    def test_cross_products_also_bounded(self, rng):
        cache = DecompositionCache(max_entries=1)
        pairs = [(rng.standard_normal((8, 2)), rng.standard_normal((8, 3))) for _ in range(3)]
        for X, Y in pairs:
            cache.cross(X, Y)
        assert cache.evictions > 0

    def test_unbounded_cache(self, rng):
        cache = DecompositionCache(max_entries=None)
        for _ in range(10):
            cache.svd(rng.standard_normal((5, 2)))
        assert cache.evictions == 0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            DecompositionCache(max_entries=0)

    def test_stats_snapshot(self, rng):
        cache = DecompositionCache()
        X = rng.standard_normal((6, 2))
        cache.svd(X)
        cache.svd(X)
        # bytes_in_memory: U (6x2) + S (2,) + Vt (2x2) float64 factors.
        assert cache.stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "bytes_in_memory": 144,
        }
