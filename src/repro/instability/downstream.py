"""Downstream instability metrics (Definition 1 of the paper).

For two embeddings ``X`` and ``X~`` and downstream models ``f_X`` and
``f_X~`` trained on them, the downstream instability with respect to a task is

    DI_T(X, X~) = (1/N) sum_i L(f_X(z_i), f_X~(z_i))

over a held-out set ``{z_i}``.  With the zero-one loss this is the fraction of
held-out predictions on which the two models disagree -- the "% disagreement"
reported throughout the paper.  For the knowledge-graph link prediction task
the paper uses *unstable-rank@10* instead (fraction of test triplets whose
predicted rank changes by more than 10).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "downstream_instability",
    "prediction_disagreement",
    "classification_disagreement",
    "tagging_disagreement",
    "unstable_rank_at_k",
]


def downstream_instability(
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
    *,
    loss: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> float:
    """Definition 1 with an arbitrary elementwise loss (default: zero-one)."""
    a = np.asarray(predictions_a)
    b = np.asarray(predictions_b)
    if a.shape != b.shape:
        raise ValueError(f"prediction arrays must have equal shape: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("prediction arrays must not be empty")
    if loss is None:
        values = (a != b).astype(np.float64)
    else:
        values = np.asarray(loss(a, b), dtype=np.float64)
    return float(np.mean(values))


def prediction_disagreement(
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
    *,
    mask: np.ndarray | None = None,
    as_percentage: bool = True,
) -> float:
    """Fraction (or percentage) of predictions that differ between two models.

    Parameters
    ----------
    predictions_a, predictions_b:
        Aligned prediction arrays.
    mask:
        Optional boolean mask restricting which positions count (the paper's
        NER instability only counts gold-entity tokens).
    as_percentage:
        Return the value in [0, 100] (paper convention) instead of [0, 1].
    """
    a = np.asarray(predictions_a)
    b = np.asarray(predictions_b)
    if a.shape != b.shape:
        raise ValueError(f"prediction arrays must have equal shape: {a.shape} vs {b.shape}")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != a.shape:
            raise ValueError("mask must have the same shape as the predictions")
        a, b = a[mask], b[mask]
    if a.size == 0:
        raise ValueError("no predictions left to compare (empty selection)")
    value = float(np.mean(a != b))
    return 100.0 * value if as_percentage else value


def classification_disagreement(model_a, model_b, dataset, *, as_percentage: bool = True) -> float:
    """% disagreement between two classifiers' predictions on ``dataset``."""
    return prediction_disagreement(
        model_a.predict(dataset), model_b.predict(dataset), as_percentage=as_percentage
    )


def tagging_disagreement(
    tagger_a,
    tagger_b,
    dataset,
    *,
    entity_only: bool = True,
    as_percentage: bool = True,
) -> float:
    """% disagreement between two taggers, optionally restricted to entity tokens."""
    preds_a = np.concatenate(tagger_a.predict(dataset))
    preds_b = np.concatenate(tagger_b.predict(dataset))
    mask = None
    if entity_only:
        mask = np.concatenate(dataset.entity_token_mask())
    return prediction_disagreement(preds_a, preds_b, mask=mask, as_percentage=as_percentage)


def unstable_rank_at_k(
    ranks_a: Sequence[float] | np.ndarray,
    ranks_b: Sequence[float] | np.ndarray,
    *,
    k: int = 10,
    as_percentage: bool = True,
) -> float:
    """Fraction of items whose rank changed by more than ``k`` (Section 6.1)."""
    a = np.asarray(ranks_a, dtype=np.float64)
    b = np.asarray(ranks_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("rank arrays must have equal shape")
    if a.size == 0:
        raise ValueError("rank arrays must not be empty")
    if k < 0:
        raise ValueError("k must be non-negative")
    value = float(np.mean(np.abs(a - b) > k))
    return 100.0 * value if as_percentage else value
