"""Benchmark the fast numeric path: quantized-first serving and mmap decode.

Three sections, each asserting its invariant so CI can smoke the numbers:

1. ``exact`` vs ``fast`` measure evaluation of one grid cell (embeddings
   pre-trained, measure caches cold): the quantized-first path must be at
   least ``--min-speedup`` times faster than the exact float64 suite on the
   largest shape, *and* every fast value must sit within its reported error
   bound of the exact value -- speed without soundness does not count.
2. ``escalation``: with a tolerance of zero every cell escalates, and the
   escalated values are bit-identical to the exact path's.
3. ``mmap``: a warm store in mmap mode decodes the cell's pair artifacts as
   memory maps -- zero private copies (counter-asserted) -- and the decode
   is compared against the copying path.

Usage::

    PYTHONPATH=src python benchmarks/bench_fast_path.py --quick
    PYTHONPATH=src python benchmarks/bench_fast_path.py --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.reporting import format_table  # noqa: E402
from repro.corpus.synthetic import SyntheticCorpusConfig  # noqa: E402
from repro.engine.store import ArtifactStore  # noqa: E402
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig  # noqa: E402
from repro.measures import FAST_MEASURES  # noqa: E402

from conftest import write_benchmark_results  # noqa: E402


def bench_config(quick: bool) -> PipelineConfig:
    if quick:
        return PipelineConfig(
            corpus=SyntheticCorpusConfig(
                vocab_size=240, n_documents=120, doc_length_mean=40, seed=7
            ),
            algorithms=("svd",),
            dimensions=(8, 16),
            precisions=(1, 32),
            seeds=(0,),
            tasks=("sst2",),
            embedding_epochs=2,
            downstream_epochs=3,
            ner_epochs=2,
        )
    return PipelineConfig(
        corpus=SyntheticCorpusConfig(
            vocab_size=600, n_documents=400, doc_length_mean=80, seed=0
        ),
        algorithms=("svd",),
        dimensions=(16, 64),
        precisions=(1, 32),
        seeds=(0,),
        tasks=("sst2",),
        embedding_epochs=4,
        downstream_epochs=5,
    )


def _timed(fn, repeats: int) -> tuple[float, object]:
    """Best-of-N wall time of ``fn`` (seconds) and its last return value."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(quick: bool, min_speedup: float, repeats: int):
    config = bench_config(quick)
    rows, summary = [], {}
    warnings.filterwarnings("ignore", category=UserWarning)

    # -- 1. exact vs fast evaluation latency (largest shape) --------------------
    # Both paths start from their cached pair representation (the exact path's
    # compressed pair and the fast path's quantized fast-pair artifact are
    # each built once and content-addressed); what is timed is the measure
    # evaluation a cache-miss /measure request pays.
    pipeline = InstabilityPipeline(config)
    cell = (config.algorithms[0], config.dimensions[-1], config.precisions[0], 0)
    pipeline.compressed_pair(*cell)          # pre-train: time measures, not SGD
    pipeline.fast_pair(*cell)
    pipeline.anchor_decomposition(cell[0], cell[3])  # both paths share anchors

    def cold_exact():
        pipeline.store.delete_bytes("measures", pipeline.measures_key(*cell) + ".json")
        return pipeline.compute_measures(*cell)

    def cold_fast():
        pipeline.store.delete_bytes(
            "fast_measures", pipeline.fast_measures_key(*cell) + ".json"
        )
        return pipeline.compute_measures_fast(*cell)

    exact_seconds, exact = _timed(cold_exact, repeats)
    fast_seconds, fast = _timed(cold_fast, repeats)
    speedup = exact_seconds / fast_seconds if fast_seconds > 0 else float("inf")
    rows.append({"mode": "exact measures (cold)", "mean_ms": round(1e3 * exact_seconds, 2)})
    rows.append({"mode": "fast measures (cold)", "mean_ms": round(1e3 * fast_seconds, 2)})
    summary["fast_speedup"] = round(speedup, 2)
    assert speedup >= min_speedup, (
        f"fast path is only {speedup:.2f}x faster than exact "
        f"({1e3 * fast_seconds:.1f}ms vs {1e3 * exact_seconds:.1f}ms); "
        f"wanted >= {min_speedup}x"
    )

    # -- soundness: |fast - exact| <= bound on EVERY cell of the grid -----------
    checked = 0
    for dim in config.dimensions:
        for precision in config.precisions:
            grid_cell = (config.algorithms[0], dim, precision, 0)
            fast_cell = pipeline.compute_measures_fast(*grid_cell)
            exact_cell = pipeline.compute_measures(*grid_cell)
            for name in FAST_MEASURES:
                error = abs(fast_cell["values"][name] - exact_cell[name])
                assert error <= fast_cell["bounds"][name] + 1e-12, (
                    f"{name} bound violated at dim={dim} precision={precision}: "
                    f"|fast - exact| = {error} > {fast_cell['bounds'][name]}"
                )
                checked += 1
    summary["soundness_checks"] = checked

    # -- 2. escalation: zero tolerance must reproduce exact bit for bit ---------
    from repro.serving import ServiceConfig, StabilityService

    service = StabilityService(pipeline, config=ServiceConfig(max_concurrency=2))
    try:
        escalated = service.measure(*cell, fast=True, fast_tolerance=1e-300)
        exact_response = service.measure(*cell)
        assert escalated["escalated"] is True
        assert escalated["measures"] == exact_response["measures"], (
            "escalated fast response is not bit-identical to the exact path"
        )
        counters = service.metrics()["serving"]
        summary["fast_escalations"] = counters["fast_escalations"]
    finally:
        service.close()

    # -- 3. mmap decode: warm rereads make zero private copies ------------------
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-fastpath-") as tmp:
        writer = ArtifactStore(tmp, mmap=True)
        key = pipeline.fast_pair_key(*cell)
        writer.put_arrays("fast_pair", key, pipeline.fast_pair(*cell))

        def decode(mmap: bool):
            timings = []
            for _ in range(max(3, repeats)):
                fresh = ArtifactStore(tmp, mmap=mmap)
                start = time.perf_counter()
                fresh.get_arrays("fast_pair", key)
                timings.append(time.perf_counter() - start)
            probe = ArtifactStore(tmp, mmap=mmap)
            probe.get_arrays("fast_pair", key)
            return statistics.mean(timings), probe.io_counters()

        mapped_mean, mapped_io = decode(mmap=True)
        copied_mean, copied_io = decode(mmap=False)
        assert mapped_io["copied_reads"] == 0, (
            f"mmap-mode decode made private copies: {mapped_io}"
        )
        assert mapped_io["mapped_reads"] >= 1
        assert copied_io["mapped_reads"] == 0
        rows.append({"mode": "mmap decode (warm)", "mean_ms": round(1e3 * mapped_mean, 3)})
        rows.append({"mode": "copy decode (warm)", "mean_ms": round(1e3 * copied_mean, 3)})
        summary["mapped_bytes"] = mapped_io["mapped_bytes"]
        summary["copied_bytes"] = copied_io["copied_bytes"]

    return rows, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grid (CI smoke)")
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required exact/fast latency ratio on the largest shape",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repetitions"
    )
    parser.add_argument("--output", default=None, help="results JSON path override")
    args = parser.parse_args(argv)

    rows, summary = run_benchmark(args.quick, args.min_speedup, args.repeats)
    print(format_table(rows))
    print()
    print("summary:", summary)
    path = write_benchmark_results(
        "fast_path", summary=summary, rows=rows, output=args.output
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
