"""Plain-text tables and CSV export for experiment results.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module centralises the formatting so every experiment
produces consistently shaped output.
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Mapping, Sequence

from repro.instability.grid import GridRecord, records_to_rows
from repro.utils.io import ensure_dir

__all__ = ["format_table", "rows_to_csv", "records_to_csv"]


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    headers: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(headers) if headers is not None else list(rows[0].keys())
    table = [[_format_value(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(str(h)), *(len(line[i]) for line in table)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for line in table:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write rows of dictionaries to a CSV file (union of keys as header)."""
    path = Path(path)
    ensure_dir(path.parent)
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in fieldnames})
    return path


def records_to_csv(records: list[GridRecord], path: str | Path) -> Path:
    """Write grid records to CSV (mirrors the artifact's results CSVs)."""
    return rows_to_csv(records_to_rows(records), path)
