"""Figure 12: stability-memory tradeoff with subword (fastText-style) embeddings."""

from repro.experiments import fig12_subword


def test_fig12_subword(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: fig12_subword.run(
            pipeline, tasks=("sst2",), dimensions=(8, 32), precisions=(1, 32)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 4
    assert all(0.0 <= r["disagreement_pct"] <= 100.0 for r in result.rows)
