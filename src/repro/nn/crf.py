"""Linear-chain conditional random field for sequence tagging.

The paper's full NER model is a BiLSTM-CRF (Akbik et al., 2018); the main
experiments disable the CRF for efficiency and Appendix E.2 re-enables it on a
subset.  The CRF here provides the negative log-likelihood (forward algorithm)
as an autograd-friendly loss and Viterbi decoding for prediction.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import check_random_state

__all__ = ["LinearChainCRF"]


def _logsumexp(x: Tensor, axis: int = -1) -> Tensor:
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    return (x - shift).exp().sum(axis=axis, keepdims=True).log() + shift


class LinearChainCRF(Module):
    """Linear-chain CRF over per-token emission scores.

    Parameters
    ----------
    num_tags:
        Number of output tags.
    seed:
        Initialisation seed of the transition matrix.
    """

    def __init__(self, num_tags: int, *, seed: int = 0):
        super().__init__()
        if num_tags < 1:
            raise ValueError("num_tags must be >= 1")
        rng = check_random_state(seed)
        self.num_tags = int(num_tags)
        self.transitions = Tensor(rng.normal(0, 0.1, size=(num_tags, num_tags)), requires_grad=True)
        self.start_scores = Tensor(rng.normal(0, 0.1, size=num_tags), requires_grad=True)
        self.end_scores = Tensor(rng.normal(0, 0.1, size=num_tags), requires_grad=True)

    # -- training ------------------------------------------------------------

    def _score_sequence(self, emissions: Tensor, tags: np.ndarray) -> Tensor:
        """Unnormalised score of a specific tag sequence."""
        tags = np.asarray(tags, dtype=np.int64)
        seq_len = emissions.shape[0]
        score = self.start_scores[tags[0]] + emissions[0, tags[0]]
        for t in range(1, seq_len):
            score = score + self.transitions[tags[t - 1], tags[t]] + emissions[t, tags[t]]
        return score + self.end_scores[tags[-1]]

    def _partition(self, emissions: Tensor) -> Tensor:
        """Log partition function via the forward algorithm."""
        seq_len = emissions.shape[0]
        alpha = self.start_scores + emissions[0]                     # (T,)
        for t in range(1, seq_len):
            # alpha_j = logsumexp_i(alpha_i + trans_ij) + emit_tj
            scores = alpha.reshape(self.num_tags, 1) + self.transitions
            alpha = _logsumexp(scores, axis=0).reshape(self.num_tags) + emissions[t]
        alpha = alpha + self.end_scores
        return _logsumexp(alpha.reshape(1, self.num_tags), axis=1).reshape(())

    def neg_log_likelihood(self, emissions: Tensor, tags: np.ndarray) -> Tensor:
        """Negative log-likelihood of ``tags`` given ``(seq_len, num_tags)`` emissions."""
        if emissions.shape[0] != len(tags):
            raise ValueError("emissions and tags must have equal length")
        return self._partition(emissions) - self._score_sequence(emissions, tags)

    # -- decoding ------------------------------------------------------------

    def viterbi_decode(self, emissions: Tensor | np.ndarray) -> np.ndarray:
        """Most likely tag sequence (plain NumPy; no gradients needed)."""
        scores = emissions.data if isinstance(emissions, Tensor) else np.asarray(emissions)
        seq_len, num_tags = scores.shape
        trans = self.transitions.data
        viterbi = self.start_scores.data + scores[0]
        backpointers = np.zeros((seq_len, num_tags), dtype=np.int64)
        for t in range(1, seq_len):
            candidate = viterbi[:, None] + trans        # (prev, cur)
            backpointers[t] = np.argmax(candidate, axis=0)
            viterbi = candidate[backpointers[t], np.arange(num_tags)] + scores[t]
        viterbi = viterbi + self.end_scores.data
        best_last = int(np.argmax(viterbi))
        path = [best_last]
        for t in range(seq_len - 1, 0, -1):
            path.append(int(backpointers[t, path[-1]]))
        return np.asarray(path[::-1], dtype=np.int64)

    # -- convenience ------------------------------------------------------------

    def marginal_predictions(self, emissions: Tensor | np.ndarray) -> np.ndarray:
        """Greedy per-token argmax (used when the CRF layer is disabled)."""
        scores = emissions.data if isinstance(emissions, Tensor) else np.asarray(emissions)
        return np.argmax(scores, axis=-1)

    @staticmethod
    def emission_argmax(emissions: Tensor | np.ndarray) -> np.ndarray:
        scores = emissions.data if isinstance(emissions, Tensor) else np.asarray(emissions)
        return np.argmax(scores, axis=-1)

    def forward(self, emissions: Tensor, tags: np.ndarray) -> Tensor:
        return self.neg_log_likelihood(emissions, tags)
