"""Online instability monitoring: ingestion, rolling retrains, drift alerts.

The monitor turns the paper's offline experiment -- train embedding
versions on successive corpus snapshots, measure their instability -- into
an online loop over a *live* corpus:

* :class:`~repro.monitor.ingest.CorpusIngestor` accumulates document
  batches into a growing vocabulary and an exact, delta-merged
  co-occurrence accumulator;
* :class:`~repro.monitor.scheduler.InstabilityMonitor` cuts
  content-addressed corpus snapshots and schedules rolling retrains over
  successive snapshot pairs -- locally or leased to the ``repro-worker``
  fleet through the cluster coordinator;
* :class:`~repro.monitor.drift.DriftEvaluator` aggregates each retrain
  into a :class:`~repro.monitor.drift.DriftReport` and raises thresholded
  drift alerts, all narrated on the
  :class:`~repro.monitor.events.MonitorEventLog` behind
  ``GET /monitor/events``.
"""

from repro.monitor.drift import DISAGREEMENT, DriftEvaluator, DriftReport
from repro.monitor.events import MonitorEventLog
from repro.monitor.ingest import CorpusIngestor
from repro.monitor.scheduler import InstabilityMonitor, MonitorConfig

__all__ = [
    "DISAGREEMENT",
    "CorpusIngestor",
    "DriftEvaluator",
    "DriftReport",
    "InstabilityMonitor",
    "MonitorConfig",
    "MonitorEventLog",
]
