"""Benchmark the grid-execution engine: serial vs parallel, cold vs warm cache.

Runs the small instability grid four ways and reports wall-clock timings plus
speedups over the cold serial baseline (the seed repository's only mode):

1. ``serial / cold``   -- fresh in-memory store, one process;
2. ``serial / warm``   -- rerun against the persisted disk store (asserts zero
   embedding/downstream retrainings);
3. ``parallel / cold`` -- fresh store, ``--workers`` processes (asserts the
   records are bit-identical to the serial run);
4. ``batch-off``       -- serial cold with per-measure (non-batched) measure
   evaluation, quantifying what the shared-decomposition batch saves.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_grid.py --quick
    PYTHONPATH=src python benchmarks/bench_engine_grid.py --workers 4

The script exits non-zero if any equivalence assertion fails, so CI can smoke
it; it is intentionally not a pytest-benchmark file (the harness-level
benchmarks live in the sibling ``bench_*`` files).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.reporting import format_table  # noqa: E402
from repro.corpus.synthetic import SyntheticCorpusConfig  # noqa: E402
from repro.engine import ArtifactStore, GridEngine  # noqa: E402
from repro.engine import stats as engine_stats  # noqa: E402
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig  # noqa: E402

from conftest import write_benchmark_results  # noqa: E402


def bench_config(quick: bool) -> PipelineConfig:
    if quick:
        return PipelineConfig(
            corpus=SyntheticCorpusConfig(
                vocab_size=150, n_documents=100, doc_length_mean=40, seed=0
            ),
            algorithms=("svd",),
            dimensions=(6, 12),
            precisions=(1, 4, 32),
            seeds=(0,),
            tasks=("sst2",),
            embedding_epochs=3,
            downstream_epochs=5,
            ner_epochs=3,
        )
    return PipelineConfig(
        corpus=SyntheticCorpusConfig(
            vocab_size=300, n_documents=250, doc_length_mean=70, seed=0
        ),
        algorithms=("cbow", "mc"),
        dimensions=(8, 16, 32),
        precisions=(1, 2, 4, 8, 32),
        seeds=(0,),
        tasks=("sst2", "conll"),
        embedding_epochs=8,
        downstream_epochs=12,
        ner_epochs=10,
    )


def timed_run(engine: GridEngine, **kwargs):
    start = time.perf_counter()
    records = engine.run(with_measures=True, **kwargs)
    return records, time.perf_counter() - start


def run_benchmark(quick: bool, workers: int, cache_dir: str | None):
    config = bench_config(quick)
    rows = []

    # 1. Serial, cold in-memory store: the seed repository's execution mode.
    serial_engine = GridEngine(config, store=ArtifactStore())
    serial_records, serial_time = timed_run(serial_engine)
    rows.append({"mode": "serial / cold", "seconds": round(serial_time, 3), "speedup": 1.0})

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(cache_dir) if cache_dir else Path(tmp)
        # 2a. Populate the disk store (timed separately: includes persistence I/O).
        cold_disk_engine = GridEngine(config, store=ArtifactStore(root))
        disk_records, disk_time = timed_run(cold_disk_engine)
        rows.append(
            {"mode": "serial / cold+persist", "seconds": round(disk_time, 3),
             "speedup": round(serial_time / disk_time, 2)}
        )
        # 2b. Warm rerun from the disk store: a fresh pipeline, zero retraining.
        warm_engine = GridEngine(config, store=ArtifactStore(root))
        warm_records, warm_time = timed_run(warm_engine)
        rows.append(
            {"mode": "serial / warm", "seconds": round(warm_time, 3),
             "speedup": round(serial_time / warm_time, 2)}
        )
        warm_counters = engine_stats(warm_engine)["pipeline"]
        assert warm_counters["embedding_train_count"] == 0, (
            "warm rerun retrained embeddings"
        )
        assert warm_counters["downstream_train_count"] == 0, (
            "warm rerun retrained downstream models"
        )
        assert warm_records == disk_records == serial_records, (
            "warm-cache records diverged from the cold run"
        )

    # 3. Parallel, cold store: must be bit-identical to serial.
    parallel_engine = GridEngine(config, store=ArtifactStore())
    parallel_records, parallel_time = timed_run(parallel_engine, n_workers=workers)
    rows.append(
        {"mode": f"parallel x{workers} / cold", "seconds": round(parallel_time, 3),
         "speedup": round(serial_time / parallel_time, 2)}
    )
    assert parallel_records == serial_records, "parallel records diverged from serial"

    # 4. Serial cold without the shared-decomposition measure batch, for
    #    comparison with the engine's batched measure path.
    unbatched_pipeline = InstabilityPipeline(config, store=ArtifactStore())
    start = time.perf_counter()
    for algorithm in config.algorithms:
        for dim in config.dimensions:
            for precision in config.precisions:
                for seed in config.seeds:
                    emb_a, emb_b = unbatched_pipeline.compressed_pair(
                        algorithm, dim, precision, seed
                    )
                    suite = unbatched_pipeline.measure_suite(algorithm, seed)
                    for measure in suite.values():
                        measure.compute_embeddings(
                            emb_a, emb_b, top_k=config.measure_top_k
                        )
                    for task in config.tasks:
                        unbatched_pipeline.evaluate(task, algorithm, dim, precision, seed)
    unbatched_time = time.perf_counter() - start
    rows.append(
        {"mode": "serial / batch off", "seconds": round(unbatched_time, 3),
         "speedup": round(serial_time / unbatched_time, 2)}
    )

    summary = {
        "grid_cells": len(serial_records),
        "warm_cache_speedup": round(serial_time / warm_time, 2),
        "parallel_speedup": round(serial_time / parallel_time, 2),
        "measure_batch_speedup": round(unbatched_time / serial_time, 2),
        "workers": workers,
        "warm_counters": warm_counters,
        "parallel_warmup": engine_stats(parallel_engine)["warmup"],
    }
    return rows, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="tiny grid (CI smoke)")
    parser.add_argument("--workers", type=int, default=2, help="parallel fan-out")
    parser.add_argument("--cache-dir", default=None, help="reuse a persistent store")
    parser.add_argument("--output", default=None, help="write the summary JSON here")
    args = parser.parse_args(argv)

    with warnings.catch_warnings():
        # The small benchmark vocabularies always trip the top-k no-op warning.
        warnings.simplefilter("ignore", UserWarning)
        rows, summary = run_benchmark(args.quick, args.workers, args.cache_dir)

    print(format_table(rows, title="engine grid execution"))
    print("summary:", summary)
    results = write_benchmark_results(
        "engine", summary=summary, rows=rows, output=args.output
    )
    print(f"results -> {results}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
