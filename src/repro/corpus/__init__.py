"""Corpus substrate: vocabulary, tokenization, synthetic corpora, co-occurrence.

The paper trains embeddings on two full Wikipedia dumps collected a year apart
(Wiki'17 and Wiki'18).  This subpackage provides an offline substitute: a
topic-mixture synthetic corpus generator with controllable temporal drift, plus
the vocabulary and co-occurrence machinery every embedding algorithm needs.
"""

from repro.corpus.cooccurrence import CooccurrenceMatrix, build_cooccurrence, ppmi_matrix
from repro.corpus.synthetic import Corpus, CorpusPair, SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.corpus.tokenizer import SimpleTokenizer
from repro.corpus.vocabulary import Vocabulary

__all__ = [
    "CooccurrenceMatrix",
    "Corpus",
    "CorpusPair",
    "SimpleTokenizer",
    "SyntheticCorpusConfig",
    "SyntheticCorpusGenerator",
    "Vocabulary",
    "build_cooccurrence",
    "ppmi_matrix",
]
