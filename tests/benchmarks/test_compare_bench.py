"""The CI perf-regression gate (``benchmarks/compare_bench.py``) and the
benchmark envelope contract it consumes (``benchmarks/conftest.py``)."""

import datetime
import importlib.util
import json
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"


def _load(name: str, path: Path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def compare_bench():
    return _load("compare_bench", BENCHMARKS / "compare_bench.py")


@pytest.fixture(scope="module")
def bench_conftest():
    return _load("bench_conftest", BENCHMARKS / "conftest.py")


def envelope(summary, name="engine_grid", rev="abc123"):
    return {"benchmark": name, "git_rev": rev, "summary": summary, "rows": []}


def write(tmp_path, filename, payload):
    path = tmp_path / filename
    path.write_text(json.dumps(payload))
    return str(path)


class TestTimingLeaves:
    def test_units_normalise_to_ms(self, compare_bench):
        leaves = compare_bench.timing_leaves(
            {"seconds": 2, "mean_ms": 3.5, "total_s": 0.25, "train_seconds": 1}
        )
        assert leaves == {
            "seconds": 2000.0, "mean_ms": 3.5, "total_s": 250.0,
            "train_seconds": 1000.0,
        }

    def test_non_timing_keys_are_ignored(self, compare_bench):
        leaves = compare_bench.timing_leaves(
            {"cells": 4, "records_per_second": 9.0, "hits": 3, "name": "x"}
        )
        assert leaves == {}

    def test_nested_dicts_and_lists_flatten_with_paths(self, compare_bench):
        leaves = compare_bench.timing_leaves(
            {"cold": {"mean_ms": 10}, "phases": [{"wall_s": 1}, {"wall_s": 2}]}
        )
        assert leaves == {
            "cold.mean_ms": 10.0,
            "phases[0].wall_s": 1000.0,
            "phases[1].wall_s": 2000.0,
        }

    def test_bools_and_non_numeric_timings_are_skipped(self, compare_bench):
        assert compare_bench.timing_leaves({"warm_ms": True, "cold_ms": "fast"}) == {}

    def test_labelled_rows_address_by_mode_not_position(self, compare_bench):
        rows = [
            {"mode": "serial / cold", "seconds": 0.4, "speedup": 1.0},
            {"mode": "serial / warm", "seconds": 0.003, "speedup": 133.0},
        ]
        leaves = compare_bench.timing_leaves({"rows": rows})
        assert leaves == {
            "rows[serial / cold].seconds": 400.0,
            "rows[serial / warm].seconds": 3.0,
        }
        # Reordering the rows must not change any path.
        assert compare_bench.timing_leaves({"rows": rows[::-1]}) == leaves


class TestCompare:
    def test_within_threshold_passes(self, compare_bench):
        _, regressions = compare_bench.compare(
            envelope({"mean_ms": 100.0}), envelope({"mean_ms": 120.0}),
            threshold=0.25, min_ms=20.0,
        )
        assert regressions == []

    def test_regression_over_threshold_fails(self, compare_bench):
        _, regressions = compare_bench.compare(
            envelope({"mean_ms": 100.0}), envelope({"mean_ms": 130.0}),
            threshold=0.25, min_ms=20.0,
        )
        assert len(regressions) == 1
        assert "mean_ms" in regressions[0]

    def test_speedup_never_fails(self, compare_bench):
        _, regressions = compare_bench.compare(
            envelope({"mean_ms": 100.0}), envelope({"mean_ms": 10.0}),
            threshold=0.25, min_ms=20.0,
        )
        assert regressions == []

    def test_min_ms_floor_absorbs_tiny_jitter(self, compare_bench):
        # 0.4ms -> 0.9ms is a +125% blowup but both sit under the noise
        # floor, so the gate must not flap.
        _, regressions = compare_bench.compare(
            envelope({"mean_ms": 0.4}), envelope({"mean_ms": 0.9}),
            threshold=0.25, min_ms=20.0,
        )
        assert regressions == []

    def test_crossing_the_floor_still_gates(self, compare_bench):
        _, regressions = compare_bench.compare(
            envelope({"mean_ms": 15.0}), envelope({"mean_ms": 50.0}),
            threshold=0.25, min_ms=20.0,
        )
        assert len(regressions) == 1

    def test_asymmetric_leaves_are_reported_not_failed(self, compare_bench):
        report, regressions = compare_bench.compare(
            envelope({"old_ms": 100.0}), envelope({"new_ms": 100.0}),
            threshold=0.25, min_ms=20.0,
        )
        assert regressions == []
        assert any("old_ms" in line and "baseline only" in line for line in report)
        assert any("new_ms" in line and "no baseline" in line for line in report)

    def test_row_timings_are_gated_too(self, compare_bench):
        base = envelope({})
        fresh = envelope({})
        base["rows"] = [{"mode": "cold", "seconds": 0.1}]
        fresh["rows"] = [{"mode": "cold", "seconds": 0.5}]
        _, regressions = compare_bench.compare(
            base, fresh, threshold=0.25, min_ms=20.0
        )
        assert len(regressions) == 1
        assert "rows[cold].seconds" in regressions[0]

    def test_counters_cannot_regress(self, compare_bench):
        _, regressions = compare_bench.compare(
            envelope({"cells": 4, "hits": 100}), envelope({"cells": 40, "hits": 1}),
            threshold=0.25, min_ms=20.0,
        )
        assert regressions == []


class TestMain:
    def test_exit_0_when_clean(self, compare_bench, tmp_path, capsys):
        base = write(tmp_path, "base.json", envelope({"mean_ms": 100.0}))
        fresh = write(tmp_path, "fresh.json", envelope({"mean_ms": 110.0}))
        assert compare_bench.main(["--baseline", base, "--fresh", fresh]) == 0
        assert "no timing regressions" in capsys.readouterr().out

    def test_exit_1_on_regression(self, compare_bench, tmp_path, capsys):
        base = write(tmp_path, "base.json", envelope({"mean_ms": 100.0}))
        fresh = write(tmp_path, "fresh.json", envelope({"mean_ms": 200.0}))
        assert compare_bench.main(["--baseline", base, "--fresh", fresh]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag_widens_the_gate(self, compare_bench, tmp_path):
        base = write(tmp_path, "base.json", envelope({"mean_ms": 100.0}))
        fresh = write(tmp_path, "fresh.json", envelope({"mean_ms": 200.0}))
        code = compare_bench.main(
            ["--baseline", base, "--fresh", fresh, "--threshold", "1.5"]
        )
        assert code == 0

    def test_exit_2_on_missing_file(self, compare_bench, tmp_path, capsys):
        fresh = write(tmp_path, "fresh.json", envelope({"mean_ms": 1.0}))
        code = compare_bench.main(
            ["--baseline", str(tmp_path / "nope.json"), "--fresh", fresh]
        )
        assert code == 2

    def test_exit_2_on_benchmark_name_mismatch(self, compare_bench, tmp_path):
        base = write(tmp_path, "base.json", envelope({"mean_ms": 1.0}, name="kernels"))
        fresh = write(tmp_path, "fresh.json", envelope({"mean_ms": 1.0}, name="store"))
        assert compare_bench.main(["--baseline", base, "--fresh", fresh]) == 2


class TestEnvelopeContract:
    """Pins the envelope fields compare_bench and CI depend on."""

    def test_written_at_is_tz_aware_utc_iso8601(self, bench_conftest, tmp_path):
        out = tmp_path / "BENCH_probe.json"
        bench_conftest.write_benchmark_results(
            "probe", summary={"mean_ms": 1.0}, output=str(out)
        )
        payload = json.loads(out.read_text())
        written_at = datetime.datetime.fromisoformat(payload["written_at"])
        assert written_at.tzinfo is not None
        assert written_at.utcoffset() == datetime.timedelta(0)

    def test_envelope_carries_gate_fields(self, bench_conftest, tmp_path):
        out = tmp_path / "BENCH_probe.json"
        bench_conftest.write_benchmark_results(
            "probe", summary={"mean_ms": 2.0}, rows=[{"mean_ms": 2.0}],
            output=str(out),
        )
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "probe"
        assert set(payload) >= {"benchmark", "git_rev", "written_at", "summary", "rows"}
        assert payload["summary"] == {"mean_ms": 2.0}
