"""Cluster coordinator: leases grid cell-groups to pull-based workers.

The coordinator is the server half of the distributed grid-execution
subsystem.  It decomposes a grid into the scheduler's ancestry-aware
:class:`~repro.engine.scheduler.CellGroup`\\ s (one
:class:`~repro.engine.scheduler.GridPlan` per run), hands groups out as
**leases** with a heartbeat-extended expiry, and commits the records workers
push back through the engine's
:class:`~repro.engine.streaming.OrderedCommitter` -- so a distributed run
streams records in the canonical axis-product order, bit-identical to a
serial :meth:`GridEngine.run`.

Scheduling rules:

* **anchor groups first** -- groups are leased in plan order, which puts the
  anchor-dimension group of each (algorithm, seed) ancestry ahead of the
  groups that consume its embeddings as EIS anchors;
* **ancestry gating** -- while a measure-bearing run's ancestry has no
  completed group, only its first pending group is leasable.  The first
  group trains the shared anchor pair and pushes it into the coordinator's
  artifact store (workers mount the coordinator as a remote store tier);
  gating the siblings until that push lands is what makes every trained
  pair unique cluster-wide instead of redundantly retrained per worker;
* **at-least-once execution** -- a lease that misses its heartbeat expires
  and the group returns to the pending pool.  Re-execution is safe because
  every artifact and record is a deterministic function of its
  configuration: whichever result arrives first is committed, later
  arrivals are counted (``duplicate_results``) and dropped.

The coordinator holds plain thread-safe state and speaks no HTTP itself;
the serving layer mounts it as the ``/cluster/*`` endpoints (same
unauthenticated trust model as ``/artifacts``).  ``clock`` injects a
monotonic time source so lease expiry is testable without sleeping.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator

from repro.engine.scheduler import CellGroup, GridPlan
from repro.engine.streaming import OrderedCommitter, cell_key
from repro.utils.io import to_jsonable
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instability.grid import GridRecord
    from repro.instability.pipeline import PipelineConfig

logger = get_logger(__name__)

__all__ = [
    "ClusterCoordinator",
    "ClusterRunFailed",
    "config_wire_payload",
    "group_from_wire",
    "group_wire_payload",
]

#: Group states in a run's lease table.
_PENDING, _LEASED, _DONE = "pending", "leased", "done"

#: Completed/cancelled runs retained for status queries before eviction.
_MAX_FINISHED_RUNS = 64


class ClusterRunFailed(RuntimeError):
    """A run's group exhausted its attempts; raised to the record consumer."""


def config_wire_payload(config: "PipelineConfig") -> dict:
    """The JSON wire form of a pipeline config, with the kernel policy pinned.

    A config field left ``None`` resolves against the *process-wide* default
    policy, which may differ between the submitting host and a worker; the
    wire form pins the resolved SVD method and dtype so every worker resolves
    decompositions exactly as the submitter would (the cluster analogue of
    the scheduler shipping ``default_policy()`` to pool workers).  Pinning
    does not change artifact keys -- they are derived from the resolved
    policy either way.
    """
    payload = to_jsonable(config)
    policy = config.resolved_kernel_policy()
    payload["kernel_policy"] = policy.svd
    payload["measure_dtype"] = policy.dtype
    return payload


def group_wire_payload(group: CellGroup) -> dict:
    """The JSON wire form of one cell group (a lease's work description)."""
    return {
        "algorithm": group.algorithm,
        "dim": group.dim,
        "seed": group.seed,
        "precisions": list(group.precisions),
        "tasks": list(group.tasks),
        "with_measures": group.with_measures,
        "model_type": group.model_type,
    }


def group_from_wire(payload: dict) -> CellGroup:
    """Rebuild a :class:`CellGroup` from :func:`group_wire_payload`."""
    return CellGroup(
        algorithm=str(payload["algorithm"]),
        dim=int(payload["dim"]),
        seed=int(payload["seed"]),
        precisions=tuple(int(p) for p in payload["precisions"]),
        tasks=tuple(str(t) for t in payload["tasks"]),
        with_measures=bool(payload.get("with_measures", False)),
        model_type=str(payload.get("model_type", "bow")),
    )


class _ClusterRun:
    """Lease table and ordered-commit state of one submitted grid."""

    def __init__(self, run_id: str, plan: GridPlan, config_payload: dict) -> None:
        self.run_id = run_id
        self.plan = plan
        self.config_payload = config_payload
        self.committer = OrderedCommitter(plan.cell_keys())
        #: Records released by the committer, in canonical order; consumers
        #: (the /grid NDJSON stream) read a growing prefix of this list.
        self.ready: list["GridRecord"] = []
        self.states = [_PENDING] * len(plan.groups)
        self.attempts = [0] * len(plan.groups)
        self.cancelled = False
        self.completed = False
        self.failure: str | None = None

    @property
    def active(self) -> bool:
        return not (self.completed or self.cancelled or self.failure)

    def done_count(self) -> int:
        return sum(1 for state in self.states if state is _DONE)

    def summary(self) -> dict:
        return {
            "groups": len(self.states),
            "done": self.done_count(),
            "leased": sum(1 for s in self.states if s is _LEASED),
            "pending": sum(1 for s in self.states if s is _PENDING),
            "cells": self.plan.n_cells,
            "committed": self.committer.committed,
            "remaining": self.committer.remaining,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failure": self.failure,
        }


class _Lease:
    def __init__(
        self, lease_id: str, run_id: str, group_index: int, worker: str, expires_at: float
    ) -> None:
        self.lease_id = lease_id
        self.run_id = run_id
        self.group_index = group_index
        self.worker = worker
        self.expires_at = expires_at


class ClusterCoordinator:
    """Thread-safe lease/commit state machine behind the ``/cluster/*`` API.

    Parameters
    ----------
    default_config:
        Wire payload (see :func:`config_wire_payload`) handed to workers for
        runs submitted without an explicit config -- normally the hosting
        service's own pipeline configuration.
    lease_ttl:
        Seconds a lease stays valid without a heartbeat; an expired lease
        returns its group to the pending pool.
    max_attempts:
        Lease attempts per group before a reported execution *error* fails
        the whole run (expiries also consume attempts).
    clock:
        Monotonic time source (injectable for the lease-lifecycle tests).
    """

    def __init__(
        self,
        *,
        default_config: dict | None = None,
        lease_ttl: float = 60.0,
        max_attempts: int = 3,
        clock=time.monotonic,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.default_config = default_config or {}
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self._clock = clock
        self._cond = threading.Condition()
        self._runs: "OrderedDict[str, _ClusterRun]" = OrderedDict()
        self._leases: dict[str, _Lease] = {}
        self._ids = itertools.count(1)
        self._workers: dict[str, dict] = {}
        self.counters = {
            "runs_created": 0,
            "runs_completed": 0,
            "runs_cancelled": 0,
            "runs_failed": 0,
            "leases_issued": 0,
            "leases_expired": 0,
            "leases_reassigned": 0,
            "duplicate_results": 0,
            "late_results": 0,
            "group_failures": 0,
            "records_committed": 0,
            "cells_completed": 0,
        }

    # -- run lifecycle ---------------------------------------------------------

    def create_run(self, plan: GridPlan, config_payload: dict | None = None) -> str:
        """Register a grid for distributed execution; returns its run id."""
        with self._cond:
            run_id = f"run-{next(self._ids):04d}"
            run = _ClusterRun(run_id, plan, config_payload or self.default_config)
            self._runs[run_id] = run
            self.counters["runs_created"] += 1
            self._evict_finished_locked()
            self._cond.notify_all()
        logger.info(
            "cluster run %s created: %d groups, %d cells",
            run_id, len(plan.groups), plan.n_cells,
        )
        return run_id

    def cancel(self, run_id: str) -> bool:
        """Stop leasing a run's groups; outstanding results are dropped."""
        with self._cond:
            run = self._runs.get(run_id)
            if run is None or not run.active:
                return False
            run.cancelled = True
            self.counters["runs_cancelled"] += 1
            self._cond.notify_all()
        logger.info("cluster run %s cancelled", run_id)
        return True

    def run_status(self, run_id: str) -> dict | None:
        with self._cond:
            run = self._runs.get(run_id)
            return None if run is None else {"run_id": run_id, **run.summary()}

    # -- worker-facing API (the /cluster/* endpoints) --------------------------

    def lease(self, worker: str) -> dict:
        """Hand the next available group to ``worker``.

        Returns a ``{"status": "lease", ...}`` payload carrying the group,
        the run's pipeline config and the TTL; ``{"status": "wait"}`` when
        runs exist but every eligible group is leased or ancestry-gated; and
        ``{"status": "idle"}`` when there is nothing to execute at all.
        """
        worker = str(worker)
        with self._cond:
            now = self._clock()
            self._expire_leases_locked(now)
            self._touch_worker_locked(worker, now)
            any_active = False
            for run in self._runs.values():
                if not run.active:
                    continue
                any_active = True
                index = self._next_available_locked(run)
                if index is None:
                    continue
                lease_id = f"{run.run_id}-lease-{next(self._ids):04d}"
                run.states[index] = _LEASED
                run.attempts[index] += 1
                if run.attempts[index] > 1:
                    self.counters["leases_reassigned"] += 1
                self._leases[lease_id] = _Lease(
                    lease_id, run.run_id, index, worker, now + self.lease_ttl
                )
                self.counters["leases_issued"] += 1
                self._workers[worker]["leases"] += 1
                return {
                    "status": "lease",
                    "lease_id": lease_id,
                    "run_id": run.run_id,
                    "group_index": index,
                    "group": group_wire_payload(run.plan.groups[index]),
                    "config": run.config_payload,
                    "ttl": self.lease_ttl,
                }
            if any_active:
                return {"status": "wait", "retry_after": min(1.0, self.lease_ttl / 4)}
            return {"status": "idle", "retry_after": min(5.0, self.lease_ttl)}

    def heartbeat(self, worker: str, lease_id: str) -> dict:
        """Extend a lease; ``{"status": "gone"}`` tells the worker it expired."""
        with self._cond:
            now = self._clock()
            self._expire_leases_locked(now)
            self._touch_worker_locked(str(worker), now)
            lease = self._leases.get(lease_id)
            if lease is None or lease.worker != worker:
                return {"status": "gone"}
            lease.expires_at = now + self.lease_ttl
            return {"status": "ok", "ttl": self.lease_ttl}

    def complete(
        self,
        worker: str,
        lease_id: str,
        run_id: str,
        group_index: int,
        rows: list[dict] | None = None,
        stats: dict | None = None,
        error: str | None = None,
    ) -> dict:
        """Accept one group's results (or its failure report) from a worker.

        Identified by ``(run_id, group_index)`` rather than the lease alone,
        so a result that outlived its lease -- the worker stalled past the
        TTL but did finish -- is still accepted if the group is not done yet
        (``late_results``); a group that *is* done counts a duplicate and the
        payload is dropped.  Both are safe: results are content-addressed
        and deterministic, so every copy is identical.
        """
        from repro.instability.grid import GridRecord

        worker = str(worker)
        with self._cond:
            now = self._clock()
            self._expire_leases_locked(now)
            self._touch_worker_locked(worker, now)
            lease = self._leases.pop(lease_id, None)
            if lease is not None and lease.worker == worker:
                # Popping a lease must never strand its group: return it to
                # the pending pool immediately (still under the lock), and
                # let the success path below re-mark it done.  Without this,
                # a completion whose run_id/group_index don't match its own
                # lease (buggy or hostile worker) would leave the lease's
                # real group _LEASED forever and wedge the run.
                owner = self._runs.get(lease.run_id)
                if owner is not None:
                    self._release_group_locked(owner, lease.group_index)
                    self._cond.notify_all()
            if stats is not None:
                self._workers[worker]["reported"] = dict(stats)
            run = self._runs.get(run_id)
            if run is None:
                return {"status": "unknown-run"}
            index = int(group_index)
            if not 0 <= index < len(run.states):
                return {"status": "rejected", "error": f"no group {index}"}
            if run.states[index] is _DONE:
                self.counters["duplicate_results"] += 1
                return {"status": "duplicate"}
            if not run.active:
                return {"status": "cancelled"}
            own_lease = (
                lease is not None
                and lease.worker == worker
                and lease.run_id == run_id
                and lease.group_index == index
            )
            if error is not None:
                self._workers[worker]["failures"] += 1
                if not own_lease:
                    # A failure report from an expired/reassigned lease must
                    # not reset a group another worker is actively computing,
                    # nor consume the run's failure budget -- the current
                    # owner is authoritative.
                    return {"status": "stale"}
                self.counters["group_failures"] += 1
                if run.attempts[index] >= self.max_attempts:
                    run.failure = (
                        f"group {index} failed after {run.attempts[index]} attempts: {error}"
                    )
                    self.counters["runs_failed"] += 1
                    self._cond.notify_all()
                    return {"status": "failed"}
                # The group already went back to pending when the lease was
                # popped above; just wake waiting workers.
                self._cond.notify_all()
                return {"status": "retry"}
            group = run.plan.groups[index]
            rows = rows or []
            rejection = None
            records: list["GridRecord"] = []
            if len(rows) != group.n_cells:
                rejection = f"group {index} expects {group.n_cells} records, got {len(rows)}"
            else:
                try:
                    records = [GridRecord.from_row(row) for row in rows]
                except (KeyError, ValueError, TypeError) as bad:
                    rejection = f"malformed record row: {bad}"
            if rejection is None:
                # Validate the whole batch against the group's cells BEFORE
                # touching the committer: a partial push would poison every
                # retry of this group ("pushed twice").
                expected_keys = {
                    (group.algorithm, group.dim, precision, group.seed, task)
                    for precision in group.precisions
                    for task in group.tasks
                }
                keys = [cell_key(record) for record in records]
                if len(set(keys)) != len(keys) or set(keys) != expected_keys:
                    rejection = f"records do not match the cells of group {index}"
            if rejection is not None:
                # The group already went back to pending when the lease was
                # popped above, so a rejection cannot strand it.
                return {"status": "rejected", "error": rejection}
            released: list["GridRecord"] = []
            for record in records:
                released.extend(run.committer.push(record))
            run.ready.extend(released)
            run.states[index] = _DONE
            self.counters["records_committed"] += len(records)
            self.counters["cells_completed"] += len(records)
            stats_row = self._workers[worker]
            stats_row["groups_completed"] += 1
            stats_row["cells_completed"] += len(records)
            if lease is None or lease.worker != worker or lease.group_index != index:
                self.counters["late_results"] += 1
            if all(state is _DONE for state in run.states):
                run.completed = True
                self.counters["runs_completed"] += 1
                logger.info("cluster run %s complete (%d cells)", run_id, run.plan.n_cells)
            self._cond.notify_all()
            return {"status": "ok", "accepted": len(records)}

    # -- record consumption (the /grid NDJSON stream) --------------------------

    def records(self, run_id: str, *, poll_interval: float = 0.5) -> Iterator["GridRecord"]:
        """Yield a run's records in canonical order as workers commit them.

        Blocks while the run is in progress (waking every ``poll_interval``
        to sweep expired leases, so a crashed worker cannot stall a stream
        whose other workers have all gone quiet).  Raises
        :class:`ClusterRunFailed` when the run fails; ends silently when the
        run is cancelled (the consumer initiated it).
        """
        emitted = 0
        while True:
            with self._cond:
                run = self._runs.get(run_id)
                if run is None:
                    raise KeyError(f"unknown cluster run {run_id!r}")
                while (
                    emitted >= len(run.ready)
                    and run.active
                ):
                    self._expire_leases_locked(self._clock())
                    self._cond.wait(poll_interval)
                batch = run.ready[emitted:]
                failure = run.failure
                finished = not run.active
            for record in batch:
                emitted += 1
                yield record
            if batch:
                continue
            if failure:
                raise ClusterRunFailed(failure)
            if finished:
                return

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able counter/state snapshot for ``repro.engine.stats()``."""
        with self._cond:
            now = self._clock()
            workers = {}
            for name, row in self._workers.items():
                active = max(now - row["first_seen"], 1e-9)
                workers[name] = {
                    "leases": row["leases"],
                    "groups_completed": row["groups_completed"],
                    "cells_completed": row["cells_completed"],
                    "failures": row["failures"],
                    "seconds_active": round(active, 3),
                    "cells_per_second": round(row["cells_completed"] / active, 4),
                    "reported": row["reported"],
                }
            return {
                "counters": dict(self.counters),
                "lease_ttl": self.lease_ttl,
                "runs_active": sum(1 for run in self._runs.values() if run.active),
                "leases_outstanding": len(self._leases),
                "workers": workers,
                "runs": {run_id: run.summary() for run_id, run in self._runs.items()},
            }

    # -- internals (all hold self._cond) ---------------------------------------

    def _touch_worker_locked(self, worker: str, now: float) -> None:
        row = self._workers.get(worker)
        if row is None:
            row = self._workers[worker] = {
                "leases": 0,
                "groups_completed": 0,
                "cells_completed": 0,
                "failures": 0,
                "first_seen": now,
                "reported": None,
            }
        row["last_seen"] = now

    def _release_group_locked(self, run: _ClusterRun, index: int) -> None:
        """Return a leased group to the pending pool, unless another worker
        still holds a live lease on it (their result remains authoritative)."""
        if run.states[index] is _LEASED and not any(
            lease.run_id == run.run_id and lease.group_index == index
            for lease in self._leases.values()
        ):
            run.states[index] = _PENDING

    def _expire_leases_locked(self, now: float) -> None:
        expired = [l for l in self._leases.values() if l.expires_at <= now]
        for lease in expired:
            del self._leases[lease.lease_id]
            self.counters["leases_expired"] += 1
            run = self._runs.get(lease.run_id)
            if run is not None and run.states[lease.group_index] is _LEASED:
                run.states[lease.group_index] = _PENDING
            logger.warning(
                "lease %s (worker %s, group %d of %s) expired; group returned "
                "to the pending pool",
                lease.lease_id, lease.worker, lease.group_index, lease.run_id,
            )
        if expired:
            self._cond.notify_all()

    def _next_available_locked(self, run: _ClusterRun) -> int | None:
        """The first leasable group index of a run, honouring ancestry gates."""
        if not run.plan.with_measures:
            for index, state in enumerate(run.states):
                if state is _PENDING:
                    return index
            return None
        groups = run.plan.groups
        done = {
            (groups[i].algorithm, groups[i].seed)
            for i, state in enumerate(run.states) if state is _DONE
        }
        busy = {
            (groups[i].algorithm, groups[i].seed)
            for i, state in enumerate(run.states) if state is _LEASED
        }
        claimed: set = set()
        for index, state in enumerate(run.states):
            if state is not _PENDING:
                continue
            ancestry = (groups[index].algorithm, groups[index].seed)
            if ancestry in done:
                return index
            # No group of this ancestry has completed yet: admit only the
            # first pending group (the anchor bearer, by plan order), and
            # only while no sibling is already leased.
            if ancestry not in busy and ancestry not in claimed:
                return index
            claimed.add(ancestry)
        return None

    def _evict_finished_locked(self) -> None:
        finished = [rid for rid, run in self._runs.items() if not run.active]
        while len(finished) > _MAX_FINISHED_RUNS:
            oldest = finished.pop(0)
            del self._runs[oldest]
