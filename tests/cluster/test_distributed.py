"""End-to-end distributed execution: a live coordinator + two workers.

Boots the real serving API on an ephemeral port, runs two in-process
:class:`~repro.cluster.worker.ClusterWorker` loops against it over real HTTP,
and pins the acceptance criteria: a two-worker distributed grid is
bit-identical to the serial ``GridEngine.run()``, a warm rerun trains
nothing anywhere in the cluster, and no embedding pair is ever trained
twice cluster-wide (the ancestry gate).  Worker mechanics that need no
sockets (error reporting, heartbeats, idle exit) run against a scripted
client.
"""

import asyncio
import http.client
import json
import threading
import warnings

import pytest

from repro.cluster import ClusterWorker, config_wire_payload
from repro.engine import GridEngine
from repro.serving import ServiceConfig, StabilityService
from repro.serving.api import StabilityAPIServer, quick_serve_config


@pytest.fixture(scope="module")
def cluster():
    """A live coordinator (real HTTP server) plus two polling workers."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(quick_serve_config(), config=ServiceConfig(lease_ttl=30))
    api = StabilityAPIServer(service, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run_server() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        started.set()
        loop.run_forever()

    server_thread = threading.Thread(target=run_server, daemon=True)
    server_thread.start()
    assert started.wait(timeout=30), "server failed to start"
    url = f"http://127.0.0.1:{api.port}"

    workers = [
        ClusterWorker(url, worker_id=f"worker-{index}", poll_interval=0.05)
        for index in range(2)
    ]
    threads = [threading.Thread(target=worker.run, daemon=True) for worker in workers]
    for thread in threads:
        thread.start()
    try:
        yield api, url, workers
    finally:
        for worker in workers:
            worker.stop()
        for thread in threads:
            thread.join(timeout=30)
        asyncio.run_coroutine_threadsafe(api.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        server_thread.join(timeout=10)
        service.close()


def stream_grid(port: int, query: str = "") -> list[dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    conn.request("GET", f"/grid?distributed=true{query}")
    response = conn.getresponse()
    assert response.status == 200
    rows = [json.loads(line) for line in response.read().decode().strip().splitlines()]
    conn.close()
    return rows


def get_json(port: int, path: str) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    conn.request("GET", path)
    payload = json.loads(conn.getresponse().read())
    conn.close()
    return payload


def total_trainings(workers) -> tuple[int, int]:
    embedding = sum(w.stats()["embedding_train_count"] for w in workers)
    downstream = sum(w.stats()["downstream_train_count"] for w in workers)
    return embedding, downstream


class TestDistributedGrid:
    def test_two_workers_bit_identical_and_warm_rerun_trains_nothing(self, cluster):
        api, url, workers = cluster

        # Cold distributed run, leased to the two-worker fleet.
        rows = stream_grid(api.port)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            expected = GridEngine(quick_serve_config()).run(with_measures=True)
        assert rows == [record.to_row() for record in expected]

        # Zero duplicate trainings cluster-wide: the quick grid has exactly
        # two unique embedding pairs (dims 4 and 6); the ancestry gate plus
        # the coordinator store tier guarantee each is trained exactly once
        # across both workers, no matter who got which lease.
        embedding_cold, downstream_cold = total_trainings(workers)
        assert embedding_cold == 2
        assert downstream_cold == len(expected) * 2   # two models per cell, once

        # Warm rerun: bit-identical records, zero new trainings anywhere.
        warm_rows = stream_grid(api.port)
        assert warm_rows == rows
        assert total_trainings(workers) == (embedding_cold, downstream_cold)

        # The coordinator observed all of it.
        metrics = get_json(api.port, "/metrics")
        cluster_stats = metrics["cluster"]
        assert cluster_stats["counters"]["runs_completed"] >= 2
        assert cluster_stats["counters"]["duplicate_results"] == 0
        assert cluster_stats["counters"]["group_failures"] == 0
        reported = [
            row["reported"]["embedding_train_count"]
            for row in cluster_stats["workers"].values()
            if row["reported"] is not None
        ]
        assert sum(reported) == embedding_cold

    def test_engine_client_streams_bit_identical_records(self, cluster):
        api, url, workers = cluster
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            expected = GridEngine(quick_serve_config()).run(with_measures=True)
            remote = GridEngine(quick_serve_config(), coordinator_url=url).run(
                with_measures=True
            )
        assert remote == expected

    def test_cluster_status_endpoint(self, cluster):
        api, url, workers = cluster
        status = get_json(api.port, "/cluster/status")
        assert status["counters"]["leases_issued"] >= 2
        assert set(status["workers"]) >= {"worker-0", "worker-1"}


class ScriptedClient:
    """In-memory stand-in for :class:`CoordinatorClient` (no sockets)."""

    def __init__(self, leases):
        self.leases = list(leases)
        self.completions = []
        self.heartbeats = []

    def lease(self, worker):
        return self.leases.pop(0) if self.leases else {"status": "idle", "retry_after": 0.0}

    def heartbeat(self, worker, lease_id):
        self.heartbeats.append(lease_id)
        return {"status": "ok", "ttl": 0.15}

    def complete(self, worker, lease_id, run_id, group_index, rows,
                 stats=None, error=None, spans=None):
        self.completions.append(
            {"lease_id": lease_id, "rows": rows, "stats": stats,
             "error": error, "spans": spans}
        )
        return {"status": "ok", "accepted": len(rows)}


def scripted_lease(config_payload, *, ttl=30.0, group=None):
    return {
        "status": "lease",
        "lease_id": "run-0001-lease-0001",
        "run_id": "run-0001",
        "group_index": 0,
        "group": group or {
            "algorithm": "svd", "dim": 4, "seed": 0,
            "precisions": [1], "tasks": ["sst2"],
            "with_measures": False, "model_type": "bow",
        },
        "config": config_payload,
        "ttl": ttl,
    }


class TestWorkerMechanics:
    def test_step_executes_a_lease_and_reports_rows_and_stats(self):
        payload = config_wire_payload(quick_serve_config())
        client = ScriptedClient([scripted_lease(payload, ttl=0.15)])
        worker = ClusterWorker("http://127.0.0.1:9", worker_id="t", client=client)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            assert worker.step() is True
        (completion,) = client.completions
        assert completion["error"] is None
        assert len(completion["rows"]) == 1
        assert completion["rows"][0]["algorithm"] == "svd"
        assert completion["stats"]["cells_executed"] == 1
        # The heartbeat thread renewed the short lease during execution.
        assert len(client.heartbeats) >= 1
        assert worker.step() is False            # queue drained -> idle

    def test_execution_failure_is_reported_not_swallowed(self):
        bad_config = {"algorithms": ["not-an-algorithm"]}
        client = ScriptedClient([scripted_lease(bad_config)])
        worker = ClusterWorker("http://127.0.0.1:9", worker_id="t", client=client)
        assert worker.step() is True
        (completion,) = client.completions
        assert completion["rows"] == []
        assert "not-an-algorithm" in completion["error"]

    def test_run_exits_after_max_idle(self):
        client = ScriptedClient([])
        worker = ClusterWorker(
            "http://127.0.0.1:9", worker_id="t", client=client,
            poll_interval=0.01, max_idle=0.05,
        )
        worker.run()                             # returns instead of spinning

    def test_pipeline_cache_is_lru_bounded_and_stats_survive_eviction(self):
        from dataclasses import replace

        base = quick_serve_config()
        payloads = [
            config_wire_payload(replace(base, embedding_epochs=epochs))
            for epochs in (1, 2, 3)
        ]
        leases = [
            dict(scripted_lease(payload), lease_id=f"l{i}", group_index=0)
            for i, payload in enumerate(payloads)
        ]
        client = ScriptedClient(leases)
        worker = ClusterWorker(
            "http://127.0.0.1:9", worker_id="t", client=client, max_pipelines=2
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            for _ in payloads:
                assert worker.step() is True
        # Only the two most recent pipelines stay warm...
        assert len(worker._pipelines) == 2
        # ...but the reported counters keep the evicted pipeline's work.
        assert client.completions[-1]["stats"]["corpus_build_count"] == 3
        assert client.completions[-1]["stats"]["cells_executed"] == 3


class FlakySequenceClient:
    """Scripted lease answers where an Exception entry raises instead."""

    def __init__(self, answers):
        self.answers = list(answers)

    def lease(self, worker):
        if not self.answers:
            return {"status": "idle", "retry_after": 0.0}
        answer = self.answers.pop(0)
        if isinstance(answer, Exception):
            raise answer
        return answer

    def heartbeat(self, worker, lease_id):
        return {"status": "ok", "ttl": 30.0}

    def complete(self, worker, lease_id, run_id, group_index, rows,
                 stats=None, error=None, spans=None):
        return {"status": "ok", "accepted": len(rows)}


class TestWorkerBackoff:
    """Satellite: exponential backoff with jitter on coordinator outages."""

    def _worker(self, client, **kwargs):
        import random

        defaults = dict(
            worker_id="t", client=client, poll_interval=0.1,
            backoff_max=2.0, idle_backoff_max=2.0, rng=random.Random(0),
        )
        defaults.update(kwargs)
        return ClusterWorker("http://127.0.0.1:9", **defaults)

    def test_connection_errors_back_off_exponentially_then_reset(self):
        # Seven straight outages, then a clean idle poll.  The run loop must
        # sleep 0.1, 0.2, 0.4, ... seconds (jittered down by at most half,
        # capped at backoff_max) and reset the streak on the first success.
        client = FlakySequenceClient([ConnectionError("down")] * 7)
        worker = self._worker(client)
        delays = []

        def observing_sleep(seconds):
            delays.append(seconds)
            if len(delays) >= 8:                 # 7 outages + 1 idle poll
                worker.stop()

        worker._sleep = observing_sleep
        worker.run()

        failure_delays, idle_delay = delays[:7], delays[7]
        for attempt, delay in enumerate(failure_delays, start=1):
            raw = min(2.0, 0.1 * 2.0 ** (attempt - 1))
            assert raw / 2.0 <= delay <= raw, (attempt, delay)
        # The streak capped: attempts 6 and 7 both saw the 2s ceiling.
        assert failure_delays[5] >= 1.0 and failure_delays[6] >= 1.0
        # The successful idle poll reset the failure streak and its sleep
        # fell back to the (jittered) poll interval, not the backoff.
        assert worker._failures == 0
        assert 0.05 <= idle_delay <= 0.1

    def test_idle_delay_honours_retry_after_hint_within_bounds(self):
        worker = self._worker(FlakySequenceClient([]))
        for _ in range(20):
            assert 1.0 <= worker._idle_delay(5.0) <= 2.0      # clamped to the cap
            assert 0.05 <= worker._idle_delay(None) <= 0.1    # poll-interval floor
            assert 0.05 <= worker._idle_delay(0.0) <= 0.1     # hints below the floor
            assert 1.0 <= worker._backoff_delay(50) <= 2.0    # deep streaks stay capped


class BlockedHeartbeatClient(ScriptedClient):
    """A heartbeat that hangs in I/O until ``abort()`` cuts the connection."""

    def __init__(self, leases):
        super().__init__(leases)
        self.unblock = threading.Event()
        self.abort_called = threading.Event()

    def heartbeat(self, worker, lease_id):
        self.unblock.wait(timeout=10.0)
        return super().heartbeat(worker, lease_id)

    def abort(self):
        self.abort_called.set()
        self.unblock.set()


class TestHeartbeatShutdown:
    def test_stuck_heartbeat_is_aborted_not_awaited_forever(self):
        # The short TTL makes the heartbeat fire during execution and hang;
        # the bounded join must give up and abort the client's connections
        # instead of blocking the lease (and the whole worker) for 10s.
        payload = config_wire_payload(quick_serve_config())
        client = BlockedHeartbeatClient([scripted_lease(payload, ttl=0.15)])
        worker = ClusterWorker(
            "http://127.0.0.1:9", worker_id="t", client=client,
            heartbeat_join_timeout=0.2,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            assert worker.step() is True
        assert client.abort_called.is_set()
        (completion,) = client.completions
        assert completion["error"] is None and len(completion["rows"]) == 1
