"""Tests for the downstream instability metrics (Definition 1, unstable-rank@k)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.instability.downstream import (
    downstream_instability,
    prediction_disagreement,
    unstable_rank_at_k,
)


class TestPredictionDisagreement:
    def test_identical_predictions(self):
        preds = np.array([0, 1, 1, 0])
        assert prediction_disagreement(preds, preds) == 0.0

    def test_complete_disagreement(self):
        assert prediction_disagreement(np.array([0, 0]), np.array([1, 1])) == 100.0

    def test_fraction_vs_percentage(self):
        a, b = np.array([0, 1, 0, 1]), np.array([0, 1, 1, 1])
        assert prediction_disagreement(a, b) == 25.0
        assert prediction_disagreement(a, b, as_percentage=False) == 0.25

    def test_mask_restricts_comparison(self):
        a, b = np.array([0, 1, 2, 3]), np.array([0, 9, 9, 3])
        mask = np.array([True, True, False, False])
        assert prediction_disagreement(a, b, mask=mask) == 50.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            prediction_disagreement(np.array([0]), np.array([0, 1]))

    def test_empty_selection_raises(self):
        with pytest.raises(ValueError):
            prediction_disagreement(np.array([0]), np.array([0]), mask=np.array([False]))

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            prediction_disagreement(np.array([0, 1]), np.array([0, 1]), mask=np.array([True]))


class TestDownstreamInstability:
    def test_zero_one_loss_default(self):
        assert downstream_instability(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(1 / 3)

    def test_custom_loss(self):
        value = downstream_instability(
            np.array([1.0, 2.0]), np.array([2.0, 4.0]), loss=lambda a, b: (a - b) ** 2
        )
        assert value == pytest.approx((1.0 + 4.0) / 2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            downstream_instability(np.array([]), np.array([]))


class TestUnstableRank:
    def test_no_changes(self):
        ranks = np.array([1.0, 5.0, 20.0])
        assert unstable_rank_at_k(ranks, ranks, k=10) == 0.0

    def test_counts_only_large_changes(self):
        a = np.array([1.0, 1.0, 1.0, 1.0])
        b = np.array([2.0, 20.0, 1.0, 30.0])
        assert unstable_rank_at_k(a, b, k=10) == 50.0

    def test_boundary_is_exclusive(self):
        assert unstable_rank_at_k(np.array([0.0]), np.array([10.0]), k=10) == 0.0
        assert unstable_rank_at_k(np.array([0.0]), np.array([10.1]), k=10) == 100.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            unstable_rank_at_k(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            unstable_rank_at_k(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            unstable_rank_at_k(np.array([1.0]), np.array([1.0]), k=-1)


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.int64, (15,), elements=st.integers(0, 3)),
    hnp.arrays(np.int64, (15,), elements=st.integers(0, 3)),
    hnp.arrays(np.int64, (15,), elements=st.integers(0, 3)),
)
def test_property_disagreement_is_a_metric_like_quantity(a, b, c):
    """Symmetry, identity, range, and the triangle inequality for zero-one disagreement."""
    dab = prediction_disagreement(a, b, as_percentage=False)
    dba = prediction_disagreement(b, a, as_percentage=False)
    assert dab == dba
    assert prediction_disagreement(a, a, as_percentage=False) == 0.0
    assert 0.0 <= dab <= 1.0
    dac = prediction_disagreement(a, c, as_percentage=False)
    dcb = prediction_disagreement(c, b, as_percentage=False)
    assert dab <= dac + dcb + 1e-12
