"""Table 13 / Figure 14a: init-seed and sampling-order randomness vs embedding-data change."""

from repro.experiments import table13_randomness


def test_table13_randomness(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: table13_randomness.run(pipeline, tasks=("sst2",)), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 4
    assert all(0.0 <= r["disagreement_pct"] <= 100.0 for r in result.rows)
