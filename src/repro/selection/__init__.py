"""Dimension-precision selection using embedding distance measures (Section 5.2)."""

from repro.selection.criteria import (
    HIGH_PRECISION,
    LOW_PRECISION,
    ORACLE,
    SelectionCriterion,
    measure_criterion,
)
from repro.selection.pairwise import PairwiseSelectionResult, pairwise_selection_error
from repro.selection.budget import BudgetSelectionResult, budget_selection_error

__all__ = [
    "BudgetSelectionResult",
    "HIGH_PRECISION",
    "LOW_PRECISION",
    "ORACLE",
    "PairwiseSelectionResult",
    "SelectionCriterion",
    "budget_selection_error",
    "measure_criterion",
    "pairwise_selection_error",
]
