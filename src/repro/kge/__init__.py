"""Knowledge graph embeddings (Section 6.1): synthetic graph, TransE, evaluation."""

from repro.kge.graph import KnowledgeGraph, SyntheticKGConfig, generate_knowledge_graph
from repro.kge.transe import KGEmbedding, TransEModel, quantize_kg_embedding
from repro.kge.evaluation import (
    LinkPredictionResult,
    TripletClassificationResult,
    link_prediction_ranks,
    triplet_classification,
)

__all__ = [
    "KGEmbedding",
    "KnowledgeGraph",
    "LinkPredictionResult",
    "SyntheticKGConfig",
    "TransEModel",
    "TripletClassificationResult",
    "generate_knowledge_graph",
    "link_prediction_ranks",
    "quantize_kg_embedding",
    "triplet_classification",
]
