"""Shared utilities: RNG handling, I/O helpers, logging, registries, validation."""

from repro.utils.rng import RngMixin, check_random_state, spawn_seeds
from repro.utils.registry import Registry
from repro.utils.validation import (
    check_array,
    check_embedding_pair,
    check_positive,
    check_probability,
)

__all__ = [
    "RngMixin",
    "Registry",
    "check_array",
    "check_embedding_pair",
    "check_positive",
    "check_probability",
    "check_random_state",
    "spawn_seeds",
]
