"""Semantic displacement (Hamilton et al., 2016).

Average cosine distance between a word's vector in one embedding and its
vector in the other after the second embedding is rotated onto the first with
orthogonal Procrustes.  Requires both embeddings to have the same dimension.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.alignment import orthogonal_procrustes
from repro.measures.base import MEASURES, EmbeddingDistanceMeasure
from repro.utils.validation import check_embedding_pair

__all__ = ["semantic_displacement", "SemanticDisplacement"]


def semantic_displacement(X: np.ndarray, X_tilde: np.ndarray) -> float:
    """Mean cosine distance after Procrustes alignment of ``X_tilde`` onto ``X``."""
    X, X_tilde = check_embedding_pair(X, X_tilde, same_dim=True)
    R = orthogonal_procrustes(X, X_tilde)
    aligned = X_tilde @ R

    norm_x = np.linalg.norm(X, axis=1)
    norm_y = np.linalg.norm(aligned, axis=1)
    denom = norm_x * norm_y
    # Zero rows contribute the maximum distance of 1 (undefined direction).
    safe = denom > 0
    cos_sim = np.zeros(X.shape[0])
    cos_sim[safe] = np.einsum("nd,nd->n", X[safe], aligned[safe]) / denom[safe]
    cos_dist = 1.0 - cos_sim
    return float(np.mean(cos_dist))


@MEASURES.register("semantic-displacement")
class SemanticDisplacement(EmbeddingDistanceMeasure):
    """Mean per-word cosine shift after optimal rotation."""

    name = "semantic-displacement"
    requires_same_dim = True

    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        return semantic_displacement(X, X_tilde)
