"""Figure 3: TransE knowledge-graph embedding stability vs memory."""

from repro.experiments import fig3_kge


def test_fig3_kge(benchmark):
    config = fig3_kge.KGEExperimentConfig(dimensions=(4, 8, 16), precisions=(1, 4, 32), epochs=30)
    result = benchmark.pedantic(lambda: fig3_kge.run(config), rounds=1, iterations=1)
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 9
    # Paper shape: KGE instability decreases as the memory per vector grows.
    assert result.summary["instability_decreases_with_memory"]
