"""Analysis utilities: rank correlation, linear-log trend fits, reporting."""

from repro.analysis.correlation import measure_correlations, spearman_correlation
from repro.analysis.linear_log import LinearLogFit, fit_linear_log, relative_reduction_range
from repro.analysis.reporting import format_table, records_to_csv, rows_to_csv

__all__ = [
    "LinearLogFit",
    "fit_linear_log",
    "format_table",
    "measure_correlations",
    "records_to_csv",
    "relative_reduction_range",
    "rows_to_csv",
    "spearman_correlation",
]
