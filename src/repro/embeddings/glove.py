"""GloVe embeddings (Pennington et al., 2014), implemented with NumPy SGD.

GloVe factors the log co-occurrence matrix with a weighted least-squares
objective

    J = sum_{i,j : A_ij > 0} f(A_ij) (w_i . c_j + b_i + b~_j - log A_ij)^2

with the weighting ``f(x) = min(1, (x / x_max)^alpha)``.  Word and context
embeddings are modelled separately (as the paper notes) and the released
vectors are their sum, matching the reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.cooccurrence import build_cooccurrence
from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import EMBEDDING_ALGORITHMS, Embedding, EmbeddingAlgorithm
from repro.utils.logging import get_logger
from repro.utils.rng import check_random_state

logger = get_logger(__name__)

__all__ = ["GloVeModel"]


@EMBEDDING_ALGORITHMS.register("glove")
class GloVeModel(EmbeddingAlgorithm):
    """GloVe trained with AdaGrad over the non-zero co-occurrence entries.

    Parameters
    ----------
    dim:
        Embedding dimension.
    window_size:
        Co-occurrence window (distance-weighted counts, GloVe convention).
    learning_rate:
        Initial AdaGrad step size (the paper uses 0.01 for its large corpora).
    epochs:
        Passes over the non-zero entries.
    x_max, alpha:
        Parameters of the weighting function ``f``.  The reference GloVe uses
        ``x_max = 100`` for multi-billion-token corpora; the default here is
        scaled to the co-occurrence counts of the synthetic corpora.
    batch_size:
        Mini-batch size over non-zero entries.
    combine:
        How to produce the final vectors from word/context factors:
        ``"sum"`` (reference behaviour) or ``"word"``.
    """

    name = "glove"

    def __init__(
        self,
        dim: int = 50,
        *,
        window_size: int = 8,
        learning_rate: float = 0.05,
        epochs: int = 25,
        x_max: float = 10.0,
        alpha: float = 0.75,
        batch_size: int = 4096,
        combine: str = "sum",
        seed: int = 0,
    ) -> None:
        super().__init__(dim, seed=seed)
        if combine not in ("sum", "word"):
            raise ValueError("combine must be 'sum' or 'word'")
        if learning_rate <= 0 or epochs <= 0:
            raise ValueError("learning_rate and epochs must be positive")
        self.window_size = int(window_size)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.x_max = float(x_max)
        self.alpha = float(alpha)
        self.batch_size = int(batch_size)
        self.combine = combine

    def fit(self, corpus: Corpus, *, vocab: Vocabulary | None = None) -> Embedding:
        vocab = self._resolve_vocab(corpus, vocab)
        docs = corpus.encode_documents(vocab)
        counts = build_cooccurrence(
            docs, len(vocab), window_size=self.window_size, distance_weighting=True
        ).tocoo()
        vectors = self.fit_from_cooccurrence(
            rows=counts.row, cols=counts.col, values=counts.data, n_words=len(vocab)
        )
        return Embedding(vocab=vocab, vectors=vectors, metadata=self._metadata(corpus))

    def fit_from_cooccurrence(
        self, *, rows: np.ndarray, cols: np.ndarray, values: np.ndarray, n_words: int
    ) -> np.ndarray:
        """Train on explicit non-zero co-occurrence entries and return the vectors."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        keep = values > 0
        rows, cols, values = rows[keep], cols[keep], values[keep]
        rng = check_random_state(self.seed)

        scale = 0.5 / self.dim
        W = (rng.random((n_words, self.dim)) - 0.5) * scale
        C = (rng.random((n_words, self.dim)) - 0.5) * scale
        bw = np.zeros(n_words)
        bc = np.zeros(n_words)
        # AdaGrad accumulators (initialised to 1 like the reference code).
        gW = np.ones_like(W)
        gC = np.ones_like(C)
        gbw = np.ones_like(bw)
        gbc = np.ones_like(bc)

        n_obs = len(values)
        if n_obs == 0:
            logger.warning("GloVe received no co-occurrence entries; returning init")
            return W + C if self.combine == "sum" else W

        log_vals = np.log(values)
        weights = np.minimum(1.0, (values / self.x_max) ** self.alpha)

        for _epoch in range(self.epochs):
            order = rng.permutation(n_obs)
            for start in range(0, n_obs, self.batch_size):
                batch = order[start : start + self.batch_size]
                i, j = rows[batch], cols[batch]
                wi, cj = W[i], C[j]
                diff = np.einsum("nd,nd->n", wi, cj) + bw[i] + bc[j] - log_vals[batch]
                fdiff = weights[batch] * diff

                grad_w = fdiff[:, None] * cj
                grad_c = fdiff[:, None] * wi

                # AdaGrad: accumulate squared gradients, scale updates.
                np.add.at(gW, i, grad_w**2)
                np.add.at(gC, j, grad_c**2)
                np.add.at(gbw, i, fdiff**2)
                np.add.at(gbc, j, fdiff**2)

                np.add.at(W, i, -self.learning_rate * grad_w / np.sqrt(gW[i]))
                np.add.at(C, j, -self.learning_rate * grad_c / np.sqrt(gC[j]))
                np.add.at(bw, i, -self.learning_rate * fdiff / np.sqrt(gbw[i]))
                np.add.at(bc, j, -self.learning_rate * fdiff / np.sqrt(gbc[j]))

        return W + C if self.combine == "sum" else W
