"""Stdlib-only async HTTP JSON API over the stability service: ``repro-serve``.

Endpoints (GET query parameters and/or a JSON request body; body wins):

* ``GET /healthz`` -- liveness + the served grid configuration.
* ``GET /metrics`` -- engine + serving counters (see ``repro.engine.stats``)
  plus latency histograms (``telemetry``); ``?format=prometheus`` renders
  the same snapshot as Prometheus text exposition for scraping.
* ``GET /trace/recent``, ``GET /trace/<id>`` -- the distributed-tracing
  ring (see :mod:`repro.telemetry`): recent/slow trace summaries, and one
  trace's spans as NDJSON.  Every request opens a root span; inbound
  ``X-Trace-Id`` (or ``X-Request-Id``) joins the caller's trace, and the
  id is echoed back as ``X-Trace-Id`` on every response.
* ``GET|POST /measure?algorithm=cbow&dim=16&precision=4&seed=0`` -- the
  pairwise stability measures of one grid cell.  ``fast=true`` serves the
  quantized-first approximation with per-measure error bounds, escalating
  to the exact float64 path when any bound exceeds ``tolerance`` (default:
  the service's ``fast_tolerance``).  Responses carry an ``ETag`` derived
  from the cell's content-addressed measures key (plus the precision mode
  and tolerance), so an ``If-None-Match`` revalidation answers ``304 Not
  Modified`` *before any numerical work happens* -- the tag is computable
  from keys alone.
* ``GET|POST /select?budget=128&criterion=eis`` -- dimension-precision
  recommendation under a memory budget (bits per word).
* ``GET|POST /grid?dims=8,16&precisions=1,32&stream=...`` -- executes a grid
  and **streams one NDJSON record per line as each cell completes**
  (chunked transfer encoding; ``ordered=false`` for arrival order;
  ``distributed=true`` leases the grid to the ``repro-worker`` fleet
  instead of executing in-process, with an optional JSON ``config`` from a
  remote submitter).  Disconnecting mid-stream cancels the computation at
  the next cell boundary.
* ``POST /cluster/lease|heartbeat|complete``, ``GET /cluster/status`` -- the
  cluster coordinator's worker-facing API (see
  :mod:`repro.cluster.coordinator`): any running instance can lease grid
  cell groups to pull-based workers.  ``GET|POST /cluster/drain`` toggles
  and reports drain mode (no new leases; in-flight work finishes), and
  ``/grid?distributed=true&run_id=...`` re-attaches to an existing run's
  record stream (e.g. one resumed from checkpoints after a restart with
  ``--resume-runs``).
* ``GET|PUT|HEAD|DELETE /artifacts/<kind>/<name>`` -- raw byte access to the
  service's artifact store, so **any running instance is a remote storage
  tier** for other nodes (see
  :class:`~repro.engine.backends.RemoteBackend`): ``GET`` serves a payload
  from any tier (encoding memory-only artifacts on the fly), ``PUT``
  replicates one in, ``HEAD`` probes existence.  Artifact names are content
  hashes, so ``GET``/``HEAD`` responses carry an ``ETag`` (the name) and
  ``Cache-Control: public, max-age=31536000, immutable``, and an
  ``If-None-Match`` hit answers ``304 Not Modified`` without a body --
  artifacts are edge-cacheable by construction.  ``POST /artifacts/batch``
  multi-gets many artifacts in one round trip: the JSON manifest
  ``{"items": [{"kind": ..., "name": ...}, ...]}`` answers a framed stream
  of one JSON header line (``{"kind", "name", "found", "bytes": N}``)
  followed by the ``N`` raw payload bytes and a newline per item (see
  :meth:`~repro.engine.backends.RemoteBackend.get_many`).
* ``POST /monitor/ingest``, ``GET /monitor/status``, ``GET /monitor/events``
  -- the online instability monitor (``--monitor``; see
  :mod:`repro.monitor`): ingest tokenised document batches, read the
  monitor's snapshot/retrain/drift state, and stream its lifecycle events
  (snapshot cut, retrain started, measures ready, drift alert) as NDJSON --
  ``since=<seq>`` replays buffered events, ``follow=true`` tails.

Built on ``asyncio.start_server`` and nothing else -- no third-party web
framework -- so the serving layer runs anywhere the reproduction runs.
Blocking numerical work happens on the service's bounded thread pool; the
event loop only parses requests and shuttles bytes.  Connections are
**keep-alive** (HTTP/1.1 semantics) so a peer's store tier reuses one TCP
connection across artifact fetches, and every non-streaming request is
bounded by a per-request timeout (``--request-timeout``).  Request *reads*
are separately bounded: headers and body must arrive within a read timeout
once the request line lands, and concurrent connections are capped (503
beyond the cap), so slow clients cannot pin memory or connection tasks.

Run it::

    repro-serve --port 8732                     # or python -m repro.serving.api
    curl localhost:8732/healthz
    curl -N 'localhost:8732/grid?dims=8&precisions=1,32'
    repro-serve --port 8733 --store-url http://localhost:8732   # warm peer
"""

from __future__ import annotations

import argparse
import asyncio
import json
import re
import signal
import sys
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Awaitable, Callable
from urllib.parse import parse_qs, unquote, urlsplit

from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.engine.store import ArtifactStore
from repro.linalg import KERNEL_DTYPES, SVD_METHODS, configure_default_policy
from repro.serving.service import ServiceConfig, StabilityService
from repro.telemetry.metrics import REGISTRY, render_prometheus
from repro.telemetry.trace import TRACE_HEADER, bind, context_from_headers
from repro.utils.logging import configure_logging, get_logger

logger = get_logger(__name__)

__all__ = ["StabilityAPIServer", "quick_serve_config", "main"]

_REASONS = {
    200: "OK", 304: "Not Modified", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}
#: Total header bytes per request; a fast client must not be able to buffer
#: unbounded header lines for the whole read-timeout window.
_MAX_HEADER_BYTES = 1 << 14
_MAX_BODY_BYTES = 1 << 20
#: Raw /artifacts payloads (npz embedding pairs) dwarf JSON request bodies.
_MAX_ARTIFACT_BYTES = 1 << 28
#: ``/artifacts/<kind>/<name>``: identifier-safe kind, hex-ish name with the
#: codec suffix -- rejects path traversal and temp-file names by construction.
_ARTIFACT_PATH = re.compile(
    r"^/artifacts/([A-Za-z0-9_\-]{1,64})/([A-Za-z0-9_\-]{1,128}\.(?:json|npz))$"
)
#: Trace id of the request being dispatched -- echoed as ``X-Trace-Id`` on
#: every response written for it (including untraced/NullTrace requests,
#: whose id still lets a client correlate logs) -- and the last status
#: written, read by the access log after the handler returns.  Both are
#: per-task, so concurrent connections never see each other's values.
_RESPONSE_TRACE: ContextVar[str | None] = ContextVar("repro_api_trace", default=None)
_LAST_STATUS: ContextVar[int] = ContextVar("repro_api_status", default=200)


class APIError(Exception):
    """Request error carrying an HTTP status (maps to a JSON error payload)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class _Request:
    method: str
    path: str
    params: dict[str, str | object]
    headers: dict[str, str] = field(default_factory=dict)
    #: Raw request body; only kept for /artifacts requests (PUT payloads).
    body: bytes = b""
    #: Whether the client may reuse this connection for further requests.
    keep_alive: bool = True


@dataclass
class _JSONResponse:
    """A handler result that controls status and headers, not just the body.

    Handlers normally return a plain payload dict (written as a 200); ones
    that need conditional-request semantics (``/measure``'s ``ETag`` /
    ``If-None-Match`` revalidation) return this instead.  ``payload=None``
    writes an empty body -- required for ``304 Not Modified``.
    """

    status: int
    payload: dict | None
    headers: dict[str, str] = field(default_factory=dict)


@dataclass
class _RawResponse:
    """A handler result carrying a non-JSON body (Prometheus text, NDJSON)."""

    status: int
    body: bytes
    content_type: str
    headers: dict[str, str] = field(default_factory=dict)


async def _read_request(
    reader: asyncio.StreamReader,
    idle_timeout: float | None = None,
    read_timeout: float | None = None,
) -> _Request | None:
    """Parse one HTTP/1.1 request (request line, headers, optional body).

    Two clocks bound the read.  ``idle_timeout`` covers only the wait for
    the request line -- the keep-alive idle gap.  ``read_timeout`` covers
    everything after it: a client must deliver its complete headers and
    body (up to 256 MB on /artifacts PUTs) within that window, so slow or
    malicious clients cannot pin buffered bytes and a connection task
    indefinitely by trickling a request.  Either expiry raises
    ``asyncio.TimeoutError`` to the caller, which closes the connection.
    JSON bodies merge into the query parameters (body wins); ``/artifacts``
    bodies stay raw bytes -- they are opaque store payloads.
    """
    line = await asyncio.wait_for(reader.readline(), timeout=idle_timeout)
    if not line:
        return None
    return await asyncio.wait_for(
        _read_request_rest(reader, line), timeout=read_timeout
    )


async def _read_request_rest(
    reader: asyncio.StreamReader, line: bytes
) -> _Request:
    """Headers and body of one request whose request line is ``line``."""
    try:
        method, target, version = line.decode("latin1").split(" ", 2)
    except ValueError as error:
        raise APIError(400, f"malformed request line: {error}") from error
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(header)
        if header_bytes > _MAX_HEADER_BYTES:
            raise APIError(431, f"request headers over {_MAX_HEADER_BYTES} bytes")
        name, _, value = header.decode("latin1").partition(":")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = split.path
    params: dict[str, str | object] = {
        key: values[-1] for key, values in parse_qs(split.query).items()
    }
    raw = path.startswith("/artifacts/")
    limit = _MAX_ARTIFACT_BYTES if raw else _MAX_BODY_BYTES
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise APIError(400, "malformed Content-Length header") from None
    if length < 0:
        raise APIError(400, "malformed Content-Length header")
    if length > limit:
        raise APIError(413, f"request body over {limit} bytes")
    body = await reader.readexactly(length) if length else b""
    if body and not raw:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise APIError(400, f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise APIError(400, "JSON request body must be an object")
        params.update(payload)
        body = b""
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection == "keep-alive"
        or (version.strip().upper() == "HTTP/1.1" and connection != "close")
    )
    return _Request(
        method=method.upper(), path=path, params=params,
        headers=headers, body=body, keep_alive=keep_alive,
    )


# -- parameter coercion ---------------------------------------------------------


def _int_param(
    params: dict, name: str, default: int | None = None, *, required: bool = False
) -> int | None:
    # An explicit JSON ``null`` means the same as an absent parameter.
    if params.get(name) is None:
        if required:
            raise APIError(400, f"missing required parameter {name!r}")
        return default
    try:
        return int(params[name])
    except (TypeError, ValueError):
        raise APIError(400, f"parameter {name!r} must be an integer") from None


def _float_param(
    params: dict, name: str, default: float | None = None
) -> float | None:
    if params.get(name) is None:
        return default
    try:
        return float(params[name])
    except (TypeError, ValueError):
        raise APIError(400, f"parameter {name!r} must be a number") from None


def _bool_param(params: dict, name: str, default: bool) -> bool:
    if name not in params:
        return default
    value = params[name]
    if isinstance(value, bool):
        return value
    if str(value).lower() in ("1", "true", "yes", "on"):
        return True
    if str(value).lower() in ("0", "false", "no", "off"):
        return False
    raise APIError(400, f"parameter {name!r} must be a boolean")


def _tuple_param(params: dict, name: str, cast=int) -> tuple | None:
    """A list parameter: JSON array in a body, or comma-separated in a query."""
    if name not in params:
        return None
    value = params[name]
    if isinstance(value, str):
        value = [item for item in value.split(",") if item]
    if not isinstance(value, (list, tuple)) or not value:
        raise APIError(400, f"parameter {name!r} must be a non-empty list")
    try:
        return tuple(cast(item) for item in value)
    except (TypeError, ValueError):
        raise APIError(400, f"parameter {name!r} has non-{cast.__name__} items") from None


def _etag_matches(if_none_match: str | None, name: str) -> bool:
    """Whether an ``If-None-Match`` header validates the entity tag ``name``.

    Accepts the wildcard ``*``, a comma-separated candidate list, quoted or
    bare tags, and weak validators (``W/"..."`` -- weak comparison is fine:
    the tag is a content hash, so equal tags mean byte-equal payloads).
    """
    if not if_none_match:
        return False
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/") or candidate.startswith("w/"):
            candidate = candidate[2:]
        candidate = candidate.strip('"')
        if candidate == "*" or candidate == name:
            return True
    return False


class StabilityAPIServer:
    """Asyncio HTTP server routing requests to a :class:`StabilityService`.

    Connections are keep-alive: after each response the server waits up to
    ``keepalive_timeout`` seconds for the next request on the same socket, so
    a peer's :class:`~repro.engine.backends.RemoteBackend` fetches hundreds of
    artifacts over one TCP connection.  Non-streaming requests are bounded by
    ``request_timeout`` seconds (``None`` disables); a timed-out request
    answers 504 and closes the connection (the underlying worker thread
    cannot be interrupted, but the socket stops waiting on it).

    Two further bounds protect the event loop from hostile or broken
    clients: once a request line arrives, the complete headers and body must
    follow within ``read_timeout`` seconds (slowloris-style trickled
    requests are dropped instead of pinning buffered bytes), and at most
    ``max_connections`` sockets are served concurrently -- excess
    connections are answered 503 and closed immediately.
    """

    def __init__(
        self,
        service: StabilityService,
        *,
        host: str = "127.0.0.1",
        port: int = 8732,
        request_timeout: float | None = 300.0,
        keepalive_timeout: float = 30.0,
        read_timeout: float | None = 60.0,
        max_connections: int | None = 128,
        access_log: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.keepalive_timeout = keepalive_timeout
        self.read_timeout = read_timeout
        self.max_connections = max_connections
        #: One structured JSON line per request on stdout (silent by default).
        self.access_log = access_log
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._routes: dict[str, Callable[[_Request], Awaitable[dict]]] = {
            "/healthz": self._handle_healthz,
            "/metrics": self._handle_metrics,
            "/measure": self._handle_measure,
            "/select": self._handle_select,
            "/cluster/lease": self._handle_cluster_lease,
            "/cluster/heartbeat": self._handle_cluster_heartbeat,
            "/cluster/complete": self._handle_cluster_complete,
            "/cluster/status": self._handle_cluster_status,
            "/cluster/drain": self._handle_cluster_drain,
            "/monitor/ingest": self._handle_monitor_ingest,
            "/monitor/status": self._handle_monitor_status,
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("repro-serve listening on http://%s:%d", self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections would otherwise linger until their
        # timeout; cancel their handler tasks so shutdown is prompt and the
        # event loop tears down clean.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            if (
                self.max_connections is not None
                and len(self._connections) > self.max_connections
            ):
                self._write_json(
                    writer, 503,
                    {"error": f"over {self.max_connections} concurrent connections"},
                    close=True,
                )
                await writer.drain()
                return
            # Keep-alive loop: serve requests on this socket until the client
            # closes, asks to close, streams a /grid, or goes idle too long.
            while True:
                try:
                    request = await _read_request(
                        reader, self.keepalive_timeout, self.read_timeout
                    )
                except asyncio.TimeoutError:
                    # Idle keep-alive connection, or a client too slow to
                    # deliver the request it started: drop it either way.
                    break
                except APIError as error:
                    # Framing errors leave the stream unparseable: answer, close.
                    self._write_json(
                        writer, error.status, {"error": str(error)}, close=True
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and request.path not in (
                    "/grid", "/monitor/events",
                )
                await self._dispatch(request, reader, writer, keep_alive=keep_alive)
                # A handler may force the connection shut (e.g. a 504).
                if not (keep_alive and request.keep_alive):
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception:  # pragma: no cover - last-resort guard
            logger.exception("unhandled error serving a request")
            try:
                self._write_json(writer, 500, {"error": "internal server error"}, close=True)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        except asyncio.CancelledError:
            pass  # server shutdown; the finally block closes the socket
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        keep_alive: bool = False,
    ) -> None:
        """Trace, time, and access-log one request around the real dispatch.

        Every request gets a root span in the service's trace ring (inbound
        ``X-Trace-Id``/``X-Request-Id`` joins the caller's trace) and a
        sample in the per-endpoint request-latency histogram; the trace id
        is echoed on the response.  The trace stays open for the request's
        full duration -- for a distributed ``/grid`` that is the whole
        stream, so worker spans arriving mid-run stitch into it.
        """
        trace_id, parent_id = context_from_headers(request.headers)
        started = time.perf_counter()
        _LAST_STATUS.set(200)
        with self.service.traces.request(
            f"{request.method} {request.path}",
            trace_id=trace_id, parent_id=parent_id,
            method=request.method, path=request.path,
        ) as trace:
            _RESPONSE_TRACE.set(trace.trace_id)
            try:
                await self._dispatch_inner(
                    request, reader, writer, keep_alive=keep_alive
                )
            finally:
                _RESPONSE_TRACE.set(None)
                duration_ms = (time.perf_counter() - started) * 1e3
                REGISTRY.observe("request", self._route_label(request.path), duration_ms)
                if self.access_log:
                    self._log_access(request, trace, duration_ms)

    def _route_label(self, path: str) -> str:
        """A bounded-cardinality histogram label for one request path."""
        if path.startswith("/artifacts"):
            return "/artifacts"
        if path.startswith("/trace"):
            return "/trace"
        if path in self._routes or path in ("/grid", "/monitor/events"):
            return path
        return "other"

    def _log_access(self, request: _Request, trace, duration_ms: float) -> None:
        entry = {
            "ts": round(time.time(), 3),
            "method": request.method,
            "path": request.path,
            "status": _LAST_STATUS.get(),
            "duration_ms": round(duration_ms, 3),
            "trace_id": trace.trace_id,
        }
        # Serving-path flags annotated onto the root span (coalesced with
        # another identical request, served from the quantized fast path,
        # escalated to exact) surface in the log line when set.
        attrs = getattr(trace.root, "attrs", None) or {}
        for flag in ("coalesced", "fast", "escalated", "error"):
            if flag in attrs:
                entry[flag] = attrs[flag]
        print(json.dumps(entry, sort_keys=True), flush=True)

    async def _dispatch_inner(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        keep_alive: bool = False,
    ) -> None:
        close = not keep_alive
        if request.path == "/trace/recent" or request.path.startswith("/trace/"):
            await self._handle_trace(request, writer, close=close)
            return
        if request.path.startswith("/artifacts/"):
            await self._handle_artifacts(request, writer, close=close)
            return
        if request.method not in ("GET", "POST"):
            self._write_json(
                writer, 405, {"error": f"method {request.method} not allowed"},
                close=close,
            )
            await writer.drain()
            return
        if request.path == "/grid":
            await self._handle_grid_stream(request, reader, writer)
            return
        if request.path == "/monitor/events":
            await self._handle_monitor_events(request, reader, writer)
            return
        handler = self._routes.get(request.path)
        if handler is None:
            self._write_json(
                writer, 404,
                {"error": f"unknown path {request.path!r}",
                 "paths": sorted(
                     [*self._routes, "/artifacts", "/grid", "/monitor/events",
                      "/trace/recent"]
                 )},
                close=close,
            )
            await writer.drain()
            return
        try:
            payload = await asyncio.wait_for(handler(request), self.request_timeout)
        except asyncio.TimeoutError:
            # The worker thread keeps running, but the client stops waiting;
            # close so a retry lands on a fresh connection.
            self._write_json(
                writer, 504,
                {"error": f"request exceeded {self.request_timeout:.0f}s"},
                close=True,
            )
            request.keep_alive = False
        except APIError as error:
            self._write_json(writer, error.status, {"error": str(error)}, close=close)
        except (ValueError, KeyError) as error:
            # Domain validation: unknown algorithm/task/criterion names raise
            # KeyError from the registries, bad values raise ValueError.
            message = error.args[0] if error.args else str(error)
            self._write_json(writer, 400, {"error": str(message)}, close=close)
        except Exception as error:  # pragma: no cover - defensive
            logger.exception("request to %s failed", request.path)
            self._write_json(
                writer, 500, {"error": f"{type(error).__name__}: {error}"}, close=close
            )
        else:
            if isinstance(payload, _RawResponse):
                self._write_response(
                    writer, payload.status, payload.body, payload.content_type,
                    close=close, extra_headers=payload.headers or None,
                )
            elif isinstance(payload, _JSONResponse):
                if payload.payload is None:
                    self._write_response(
                        writer, payload.status, b"", "application/json",
                        close=close, extra_headers=payload.headers or None,
                    )
                else:
                    self._write_json(
                        writer, payload.status, payload.payload,
                        close=close, extra_headers=payload.headers or None,
                    )
            else:
                self._write_json(writer, 200, payload, close=close)
        await writer.drain()

    @staticmethod
    def _write_json(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        close: bool = False,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        StabilityAPIServer._write_response(
            writer, status, body, "application/json",
            close=close, extra_headers=extra_headers,
        )

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        *,
        close: bool = False,
        include_body: bool = True,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        _LAST_STATUS.set(status)
        headers = dict(extra_headers or {})
        trace_id = _RESPONSE_TRACE.get()
        if trace_id and TRACE_HEADER not in headers:
            headers[TRACE_HEADER] = trace_id
        extras = "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        ).encode("latin1")
        writer.write(head + body if include_body else head)

    async def _offload(self, fn, *args):
        """Run blocking store work on the service's bounded pool, time-bounded.

        /artifacts traffic (disk reads, on-the-fly npz encoding of
        memory-only pairs) goes through the same ``max_concurrency`` pool as
        the numerical endpoints, so peer fetches cannot spawn unbounded
        default-executor threads around the service's concurrency limit.
        """
        loop = asyncio.get_running_loop()
        return await asyncio.wait_for(
            loop.run_in_executor(self.service.executor, bind(fn), *args),
            self.request_timeout,
        )

    # -- /artifacts: the store's byte-level peer API ----------------------------

    async def _handle_artifacts(
        self, request: _Request, writer: asyncio.StreamWriter, *, close: bool
    ) -> None:
        """Serve raw store payloads so peers can use this node as a tier."""
        if unquote(request.path) == "/artifacts/batch":
            await self._handle_artifacts_batch(request, writer, close=close)
            return
        match = _ARTIFACT_PATH.match(unquote(request.path))
        if match is None:
            self._write_json(
                writer, 404,
                {"error": "artifact paths look like /artifacts/<kind>/<key>.{json,npz}"},
                close=close,
            )
            await writer.drain()
            return
        kind, name = match.group(1), match.group(2)
        store = self.service.store
        # The name IS a content hash: any cached copy under it is current
        # forever, so successful reads are immutable-cacheable and a matching
        # If-None-Match validates without moving a byte.
        cache_headers = {
            "ETag": f'"{name}"',
            "Cache-Control": "public, max-age=31536000, immutable",
        }
        try:
            # Store tiers touch the disk: off the event loop, bounded.
            if request.method in ("GET", "HEAD") and _etag_matches(
                request.headers.get("if-none-match"), name
            ):
                found = await self._offload(store.contains_bytes, kind, name)
                if found:
                    self._write_response(
                        writer, 304, b"", "application/octet-stream",
                        close=close, extra_headers=cache_headers,
                    )
                else:
                    self._write_json(
                        writer, 404, {"error": f"no artifact {kind}/{name}"}, close=close
                    )
            elif request.method == "GET":
                payload = await self._offload(store.get_bytes, kind, name)
                if payload is None:
                    self._write_json(
                        writer, 404, {"error": f"no artifact {kind}/{name}"}, close=close
                    )
                else:
                    self._write_response(
                        writer, 200, payload, "application/octet-stream",
                        close=close, extra_headers=cache_headers,
                    )
            elif request.method == "HEAD":
                found = await self._offload(store.contains_bytes, kind, name)
                self._write_response(
                    writer, 200 if found else 404, b"", "application/octet-stream",
                    close=close, extra_headers=cache_headers if found else None,
                )
            elif request.method == "PUT":
                if not request.body:
                    self._write_json(
                        writer, 400, {"error": "PUT needs a request body"}, close=close
                    )
                else:
                    await self._offload(store.put_bytes, kind, name, request.body)
                    self._write_json(
                        writer, 200,
                        {"stored": f"{kind}/{name}", "bytes": len(request.body)},
                        close=close,
                    )
            elif request.method == "DELETE":
                await self._offload(store.delete_bytes, kind, name)
                self._write_json(writer, 200, {"deleted": f"{kind}/{name}"}, close=close)
            else:
                self._write_json(
                    writer, 405, {"error": f"method {request.method} not allowed"},
                    close=close,
                )
        except asyncio.TimeoutError:
            self._write_json(
                writer, 504,
                {"error": f"artifact request exceeded {self.request_timeout:.0f}s"},
                close=True,
            )
            request.keep_alive = False
        await writer.drain()

    #: Upper bound on one batch manifest; a peer warming a whole grid paginates.
    _MAX_BATCH_ITEMS = 256

    async def _handle_artifacts_batch(
        self, request: _Request, writer: asyncio.StreamWriter, *, close: bool
    ) -> None:
        """Multi-get: one round trip for many artifacts (``POST`` a manifest).

        The response is a framed byte stream, one frame per requested item in
        manifest order: a JSON header line ``{"kind", "name", "found",
        "bytes": N}`` followed by exactly ``N`` raw payload bytes and a
        trailing newline.  Missing artifacts answer ``found: false`` with
        zero payload bytes instead of failing the whole batch, so a peer can
        split its fetches into found/missing in a single pass.
        """
        if request.method != "POST":
            self._write_json(
                writer, 405, {"error": "batch fetches POST a JSON manifest"},
                close=close,
            )
            await writer.drain()
            return
        try:
            manifest = json.loads(request.body or b"")
        except json.JSONDecodeError as error:
            self._write_json(
                writer, 400, {"error": f"manifest is not valid JSON: {error}"},
                close=close,
            )
            await writer.drain()
            return
        items = manifest.get("items") if isinstance(manifest, dict) else None
        if not isinstance(items, list) or not items:
            self._write_json(
                writer, 400,
                {"error": "manifest must be {'items': [{'kind', 'name'}, ...]}"},
                close=close,
            )
            await writer.drain()
            return
        if len(items) > self._MAX_BATCH_ITEMS:
            self._write_json(
                writer, 413,
                {"error": f"batch over {self._MAX_BATCH_ITEMS} items; paginate"},
                close=close,
            )
            await writer.drain()
            return
        requested: list[tuple[str, str]] = []
        for item in items:
            kind = item.get("kind") if isinstance(item, dict) else None
            name = item.get("name") if isinstance(item, dict) else None
            # Reuse the single-artifact path grammar: same identifier-safe
            # kinds and hex-ish codec-suffixed names, no traversal by
            # construction.
            if (
                not isinstance(kind, str) or not isinstance(name, str)
                or _ARTIFACT_PATH.match(f"/artifacts/{kind}/{name}") is None
            ):
                self._write_json(
                    writer, 400,
                    {"error": f"bad batch item {item!r}: wants "
                              "{'kind': <identifier>, 'name': <key>.{json,npz}}"},
                    close=close,
                )
                await writer.drain()
                return
            requested.append((kind, name))
        store = self.service.store
        frames: list[bytes] = []
        try:
            for kind, name in requested:
                payload = await self._offload(store.get_bytes, kind, name)
                found = payload is not None
                header = json.dumps(
                    {"kind": kind, "name": name, "found": found,
                     "bytes": len(payload) if found else 0},
                    sort_keys=True,
                ).encode("utf-8")
                frames.append(header + b"\n" + (payload or b"") + b"\n")
        except asyncio.TimeoutError:
            self._write_json(
                writer, 504,
                {"error": f"batch request exceeded {self.request_timeout:.0f}s"},
                close=True,
            )
            request.keep_alive = False
            await writer.drain()
            return
        self._write_response(
            writer, 200, b"".join(frames), "application/octet-stream", close=close
        )
        await writer.drain()

    # -- plain JSON endpoints ----------------------------------------------------

    async def _handle_healthz(self, request: _Request) -> dict:
        return self.service.healthz()

    async def _handle_metrics(self, request: _Request) -> dict | _RawResponse:
        fmt = str(request.params.get("format", "json")).lower()
        if fmt in ("prometheus", "openmetrics", "text"):
            text = render_prometheus(self.service.metrics())
            return _RawResponse(
                200, text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if fmt != "json":
            raise APIError(
                400, f"unknown metrics format {fmt!r} (json or prometheus)"
            )
        return self.service.metrics()

    # -- /trace: the distributed-tracing ring -------------------------------------

    async def _handle_trace(
        self, request: _Request, writer: asyncio.StreamWriter, *, close: bool
    ) -> None:
        """Serve the trace ring: summaries, or one trace's spans as NDJSON."""
        if request.method != "GET":
            self._write_json(
                writer, 405, {"error": "trace endpoints are read-only; use GET"},
                close=close,
            )
            await writer.drain()
            return
        buffer = self.service.traces
        if request.path == "/trace/recent":
            try:
                limit = _int_param(request.params, "limit", 50) or 50
            except APIError as error:
                self._write_json(
                    writer, error.status, {"error": str(error)}, close=close
                )
                await writer.drain()
                return
            self._write_json(
                writer, 200,
                {"traces": buffer.recent(limit), "counters": buffer.counters()},
                close=close,
            )
            await writer.drain()
            return
        trace_id = unquote(request.path[len("/trace/"):])
        rows = buffer.get(trace_id) if trace_id else None
        if rows is None:
            self._write_json(
                writer, 404, {"error": f"no retained trace {trace_id!r}"},
                close=close,
            )
        else:
            body = "".join(
                json.dumps(row, sort_keys=True) + "\n" for row in rows
            ).encode("utf-8")
            self._write_response(
                writer, 200, body, "application/x-ndjson", close=close
            )
        await writer.drain()

    async def _handle_measure(self, request: _Request) -> _JSONResponse:
        params = request.params
        algorithm = params.get("algorithm")
        if not algorithm:
            raise APIError(400, "missing required parameter 'algorithm'")
        measures = _tuple_param(params, "measures", cast=str)
        loop = asyncio.get_running_loop()
        # The service blocks (possibly training); keep the event loop free.
        dim = _int_param(params, "dim", required=True)
        precision = _int_param(params, "precision", required=True)
        seed = _int_param(params, "seed", 0)
        fast = _bool_param(params, "fast", False)
        tolerance = _float_param(params, "tolerance")
        # The validator is a pure function of content-addressed keys, so a
        # revalidation can 304 before any embedding trains or measure runs.
        etag = await loop.run_in_executor(
            None,
            bind(lambda: self.service.measure_etag(
                str(algorithm), dim, precision, seed,
                measures=measures, fast=fast, fast_tolerance=tolerance,
            )),
        )
        headers = {"ETag": f'"{etag}"'}
        if _etag_matches(request.headers.get("if-none-match"), etag):
            return _JSONResponse(304, None, headers)
        payload = await loop.run_in_executor(
            None,
            bind(lambda: self.service.measure(
                str(algorithm), dim, precision, seed,
                measures=measures, fast=fast, fast_tolerance=tolerance,
            )),
        )
        return _JSONResponse(200, payload, headers)

    async def _handle_select(self, request: _Request) -> dict:
        params = request.params
        budget = _int_param(params, "budget", required=True)
        criterion = str(params.get("criterion", "eis"))
        algorithm = params.get("algorithm")
        seed = _int_param(params, "seed")      # None = the config's first seed
        dimensions = _tuple_param(params, "dims") or _tuple_param(params, "dimensions")
        precisions = _tuple_param(params, "precisions")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            bind(lambda: self.service.select(
                budget,
                criterion=criterion,
                algorithm=str(algorithm) if algorithm else None,
                seed=seed,
                dimensions=dimensions,
                precisions=precisions,
            )),
        )

    # -- /cluster: the coordinator's worker-facing API ---------------------------
    #
    # Same trust model as /artifacts: unauthenticated, so bind --host to
    # loopback or a trusted network.  Payloads are plain JSON (never pickle);
    # a hostile worker can at worst feed wrong values into a run, not execute
    # code on the coordinator.

    def _cluster_str(self, params: dict, name: str) -> str:
        value = params.get(name)
        if not value or not isinstance(value, str):
            raise APIError(400, f"missing required string parameter {name!r}")
        return value

    async def _handle_cluster_lease(self, request: _Request) -> dict:
        worker = self._cluster_str(request.params, "worker")
        return self.service.coordinator.lease(worker)

    async def _handle_cluster_heartbeat(self, request: _Request) -> dict:
        params = request.params
        return self.service.coordinator.heartbeat(
            self._cluster_str(params, "worker"), self._cluster_str(params, "lease_id")
        )

    async def _handle_cluster_complete(self, request: _Request) -> dict:
        params = request.params
        rows = params.get("records") or []
        if not isinstance(rows, list):
            raise APIError(400, "parameter 'records' must be a list of record rows")
        stats = params.get("stats")
        if stats is not None and not isinstance(stats, dict):
            raise APIError(400, "parameter 'stats' must be an object")
        spans = params.get("spans")
        if spans is not None and not isinstance(spans, list):
            raise APIError(400, "parameter 'spans' must be a list of span rows")
        error = params.get("error")
        worker = self._cluster_str(params, "worker")
        lease_id = self._cluster_str(params, "lease_id")
        run_id = self._cluster_str(params, "run_id")
        group_index = _int_param(params, "group_index", required=True)
        # Record parsing + committer pushes are O(group cells) under the
        # coordinator lock: run them on the bounded worker pool so a big
        # completion cannot stall the event loop (and every other
        # lease/heartbeat/artifact request) while it commits.
        return await self._offload(
            lambda: self.service.coordinator.complete(
                worker, lease_id, run_id, group_index,
                rows=rows, stats=stats, spans=spans,
                error=str(error) if error is not None else None,
            )
        )

    async def _handle_cluster_status(self, request: _Request) -> dict:
        run_id = request.params.get("run_id")
        if run_id:
            status = self.service.coordinator.run_status(str(run_id))
            if status is None:
                raise APIError(404, f"unknown cluster run {run_id!r}")
            return status
        return self.service.coordinator.snapshot()

    async def _handle_cluster_drain(self, request: _Request) -> dict:
        # GET reports; POST toggles (default: start draining).  ``enable``
        # lifts a drain again with enable=false.
        if request.method == "GET":
            return self.service.coordinator.drain_status()
        return self.service.coordinator.drain(
            _bool_param(request.params, "enable", True)
        )

    # -- /monitor: the online instability monitor ---------------------------------

    def _monitor(self):
        monitor = self.service.monitor
        if monitor is None:
            raise APIError(
                503, "monitor not enabled; start with repro-serve --monitor"
            )
        return monitor

    async def _handle_monitor_ingest(self, request: _Request) -> dict:
        """Ingest one tokenised document batch (POST only).

        ``documents`` is a non-empty JSON array whose items are either token
        arrays or plain strings (split on whitespace).  ``cut`` forces
        (``true``) or suppresses (``false``) the snapshot cut this batch
        would trigger per the monitor's cadence.
        """
        if request.method != "POST":
            raise APIError(405, "ingestion mutates monitor state; POST /monitor/ingest")
        monitor = self._monitor()
        raw = request.params.get("documents")
        if not isinstance(raw, list) or not raw:
            raise APIError(
                400,
                "parameter 'documents' must be a non-empty list of token "
                "lists (or strings, split on whitespace)",
            )
        documents = []
        for doc in raw:
            if isinstance(doc, str):
                doc = doc.split()
            if not isinstance(doc, list) or not doc or not all(
                isinstance(token, str) for token in doc
            ):
                raise APIError(
                    400, "each document must be a non-empty string or token list"
                )
            documents.append(doc)
        cut = request.params.get("cut")
        if cut is not None:
            cut = _bool_param(request.params, "cut", False)
        return await self._offload(lambda: monitor.ingest(documents, cut=cut))

    async def _handle_monitor_status(self, request: _Request) -> dict:
        return self._monitor().snapshot()

    async def _handle_monitor_events(
        self, request: _Request, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Stream monitor lifecycle events as NDJSON (one event per line).

        ``since=<seq>`` starts after that sequence number (default 0: replay
        everything still buffered).  Without ``follow`` the buffered events
        are dumped and the stream ends -- the curl-friendly poll; with
        ``follow=true`` the connection tails new events until the client
        disconnects (the same EOF watchdog as ``/grid``).
        """
        monitor = self.service.monitor
        try:
            if monitor is None:
                raise APIError(
                    503, "monitor not enabled; start with repro-serve --monitor"
                )
            since = _int_param(request.params, "since", 0) or 0
            follow = _bool_param(request.params, "follow", False)
        except APIError as error:
            self._write_json(writer, error.status, {"error": str(error)})
            await writer.drain()
            return

        self._write_stream_head(writer)
        await writer.drain()

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue[tuple[str, object]] = asyncio.Queue()
        cancelled = threading.Event()

        def produce() -> None:
            last = since
            try:
                while not cancelled.is_set():
                    fresh = (
                        monitor.events.wait(last, 0.5)
                        if follow
                        else monitor.events.events(last)
                    )
                    for event in fresh:
                        last = max(last, int(event["seq"]))
                        loop.call_soon_threadsafe(queue.put_nowait, ("event", event))
                    if not follow:
                        break
            finally:
                try:
                    loop.call_soon_threadsafe(queue.put_nowait, ("done", None))
                except RuntimeError:  # pragma: no cover - loop already closed
                    pass

        thread = threading.Thread(target=produce, name="monitor-events", daemon=True)
        thread.start()
        watchdog = asyncio.ensure_future(reader.read(1))

        def on_watchdog_done(task: "asyncio.Task") -> None:
            if not task.cancelled():
                task.exception()
            cancelled.set()

        watchdog.add_done_callback(on_watchdog_done)
        try:
            while True:
                kind, item = await queue.get()
                if kind == "event":
                    self._write_chunk(writer, json.dumps(item, sort_keys=True) + "\n")
                    await writer.drain()
                else:  # done
                    self._end_chunks(writer)
                    break
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            cancelled.set()
            if not watchdog.done():
                watchdog.cancel()

    # -- streaming /grid ---------------------------------------------------------

    async def _handle_grid_stream(
        self, request: _Request, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Run a grid and stream NDJSON records as cells complete.

        The blocking record generator runs on a dedicated thread feeding an
        asyncio queue; each record becomes one chunked-transfer NDJSON line
        the moment its cell finishes.  A watchdog task reads the (otherwise
        silent) connection: EOF means the client abandoned the stream, which
        cancels the grid -- the producer stops at the next record boundary,
        the record iterator is closed (releasing the service's stream slot
        and, for distributed runs, cancelling the run at the coordinator),
        and no further cells are submitted.
        """
        params = request.params
        try:
            config = params.get("config")
            if config is not None and not isinstance(config, dict):
                raise APIError(400, "parameter 'config' must be a JSON object")
            kwargs = {
                "algorithms": _tuple_param(params, "algorithms", cast=str),
                "tasks": _tuple_param(params, "tasks", cast=str),
                "dimensions": _tuple_param(params, "dims")
                or _tuple_param(params, "dimensions"),
                "precisions": _tuple_param(params, "precisions"),
                "seeds": _tuple_param(params, "seeds"),
                "with_measures": _bool_param(params, "with_measures", True),
                "ordered": _bool_param(params, "ordered", True),
                "n_workers": _int_param(params, "workers", None),
                "model_type": str(params.get("model_type", "bow")),
                "distributed": _bool_param(params, "distributed", False),
                "config": config,
                "run_id": str(params["run_id"]) if params.get("run_id") else None,
            }
            # grid_iter validates axes eagerly, so a bad request is rejected
            # with a clean 400 *before* the streaming 200 is committed.
            records = self.service.grid_iter(**kwargs)
        except APIError as error:
            self._write_json(writer, error.status, {"error": str(error)})
            await writer.drain()
            return
        except (ValueError, KeyError, TypeError) as error:
            message = error.args[0] if error.args else str(error)
            self._write_json(writer, 400, {"error": str(message)})
            await writer.drain()
            return

        self._write_stream_head(writer)
        await writer.drain()

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue[tuple[str, object]] = asyncio.Queue()
        cancelled = threading.Event()

        def cancel_stream() -> None:
            """Stop the grid for this request (thread-safe, idempotent).

            Sets the flag the producer checks at every record boundary and
            closes the record iterator: the service releases the stream's
            slot, a distributed run is cancelled at the coordinator, and a
            local parallel run tears its worker pool down.  A plain
            generator refuses ``close()`` while the producer thread is
            inside it -- the boundary check covers that case.
            """
            cancelled.set()
            try:
                records.close()
            except ValueError:
                pass

        def produce() -> None:
            outcome: tuple[str, object] = ("done", None)
            try:
                try:
                    for record in records:
                        if cancelled.is_set():
                            break
                        loop.call_soon_threadsafe(
                            queue.put_nowait, ("record", record.to_row())
                        )
                finally:
                    records.close()
            except Exception as error:  # surfaced as a terminal NDJSON line
                outcome = ("error", f"{type(error).__name__}: {error}")
            try:
                loop.call_soon_threadsafe(queue.put_nowait, outcome)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

        # bind(): the producer thread must see this request's trace context
        # so a distributed run's create_run captures it into the lease.
        thread = threading.Thread(
            target=bind(produce), name="grid-stream", daemon=True
        )
        thread.start()
        # Abandoned-stream detection: /grid connections are Connection:close,
        # so the client sends nothing after its request -- a readable EOF
        # (or stray bytes) means it hung up.  Without this watch a client
        # disconnect would only surface once enough unread records
        # back-pressured a write, cells after cells burning compute for a
        # stream nobody reads.
        watchdog = asyncio.ensure_future(reader.read(1))

        def on_watchdog_done(task: "asyncio.Task") -> None:
            if not task.cancelled():
                task.exception()      # retrieve, e.g. a connection reset
            cancel_stream()           # idempotent; benign after a clean finish

        watchdog.add_done_callback(on_watchdog_done)
        try:
            while True:
                kind, item = await queue.get()
                if kind == "record":
                    self._write_chunk(writer, json.dumps(item, sort_keys=True) + "\n")
                elif kind == "error":
                    self._write_chunk(writer, json.dumps({"error": item}) + "\n")
                    self._end_chunks(writer)
                    break
                else:  # done
                    self._end_chunks(writer)
                    break
                await writer.drain()
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            cancel_stream()
        finally:
            if not watchdog.done():
                watchdog.cancel()

    @staticmethod
    def _write_stream_head(writer: asyncio.StreamWriter) -> None:
        """The committed 200 head of a chunked NDJSON stream."""
        _LAST_STATUS.set(200)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
        )
        trace_id = _RESPONSE_TRACE.get()
        if trace_id:
            head += f"{TRACE_HEADER}: {trace_id}\r\n"
        writer.write((head + "Connection: close\r\n\r\n").encode("latin1"))

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, text: str) -> None:
        data = text.encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin1") + data + b"\r\n")

    @staticmethod
    def _end_chunks(writer: asyncio.StreamWriter) -> None:
        writer.write(b"0\r\n\r\n")


# -- entrypoint ------------------------------------------------------------------


def quick_serve_config() -> "PipelineConfig":
    """A tiny pipeline configuration for smoke tests and CI boots."""
    from repro.instability.pipeline import PipelineConfig

    return PipelineConfig(
        corpus=SyntheticCorpusConfig(
            vocab_size=120, n_documents=60, doc_length_mean=30, seed=7
        ),
        algorithms=("svd",),
        dimensions=(4, 6),
        precisions=(1, 32),
        seeds=(0,),
        tasks=("sst2",),
        embedding_epochs=2,
        downstream_epochs=3,
        ner_epochs=2,
    )


async def _serve(args: argparse.Namespace) -> int:
    config = quick_serve_config() if args.quick else None
    store = None
    replicas = [entry for entry in (args.store_replicas or "").split(",") if entry]
    if args.cache_dir or args.store_url or replicas:
        store = ArtifactStore(
            args.cache_dir,
            shards=args.store_shards,
            remote_url=args.store_url,
            replicas=replicas or None,
            mmap=args.store_mmap,
        )
    service = StabilityService(
        config,
        store=store,
        config=ServiceConfig(
            max_concurrency=args.max_concurrency, grid_workers=args.workers,
            lease_ttl=args.lease_ttl, run_gc_age=args.run_gc_age,
            worker_ttl=args.worker_ttl,
            trace_sample=args.trace_sample, trace_slow_ms=args.slow_ms,
        ),
    )
    if args.resume_runs:
        resumed = service.coordinator.resume_runs()
        print(f"repro-serve resumed {resumed} cluster run(s) from checkpoints", flush=True)
    if args.monitor or args.monitor_distributed:
        from repro.monitor.scheduler import MonitorConfig

        thresholds: dict[str, float] = {}
        for entry in args.monitor_threshold or []:
            name, sep, value = entry.partition("=")
            if not sep or not name:
                raise SystemExit(
                    f"--monitor-threshold wants measure=value, got {entry!r}"
                )
            try:
                thresholds[name.strip()] = float(value)
            except ValueError:
                raise SystemExit(
                    f"--monitor-threshold value must be a number, got {entry!r}"
                ) from None
        service.enable_monitor(
            MonitorConfig(
                snapshot_every_batches=args.monitor_every,
                cadence_seconds=args.monitor_cadence,
                distributed=args.monitor_distributed,
                thresholds=thresholds,
                webhook_url=args.monitor_webhook,
            )
        )
        mode = "distributed" if args.monitor_distributed else "local"
        print(f"repro-serve monitor enabled ({mode} retrains)", flush=True)
    server = StabilityAPIServer(
        service, host=args.host, port=args.port,
        request_timeout=args.request_timeout if args.request_timeout > 0 else None,
        access_log=args.access_log,
    )
    await server.start()
    print(f"repro-serve listening on http://{server.host}:{server.port}", flush=True)
    if args.port_file:
        # Write-then-rename so a poller never reads a half-written file.
        port_path = Path(args.port_file)
        tmp = port_path.with_suffix(port_path.suffix + ".tmp")
        tmp.write_text(str(server.port))
        tmp.replace(port_path)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    try:
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        await asyncio.wait({serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
        serve_task.cancel()
    finally:
        await server.stop()
        service.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8732, help="port (0 = ephemeral)")
    parser.add_argument(
        "--port-file", default=None,
        help="write the bound port here once listening (for scripts and CI)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="process fan-out for /grid executions (0 = in-process serial)",
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=4,
        help="bounded thread pool computing requests",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="disk-backed artifact store; makes the service warm across restarts",
    )
    parser.add_argument(
        "--store-shards", type=int, default=None,
        help="split the local store into N consistent-hashed shard directories",
    )
    parser.add_argument(
        "--store-url", default=None,
        help="peer repro-serve base URL used as a remote artifact-store tier "
             "(local misses are fetched from the peer's /artifacts API)",
    )
    parser.add_argument(
        "--store-mmap", action="store_true",
        help="memory-map disk-tier npz artifacts on read instead of copying "
             "them into private memory (warm reruns share page-cache pages; "
             "see store_io in /metrics)",
    )
    parser.add_argument(
        "--store-replicas", default=None,
        help="comma-separated replica targets (peer URLs and/or directories) "
             "used as one N-way replicated store tier with read-repair and "
             "hinted handoff; mutually exclusive with --store-url",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=300.0,
        help="per-request timeout in seconds for non-streaming endpoints "
             "(0 disables)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="seconds a cluster lease survives without a worker heartbeat "
             "before its cell group is re-leased",
    )
    parser.add_argument(
        "--resume-runs", action="store_true",
        help="rebuild cluster runs from store checkpoints at boot (needs a "
             "persistent --cache-dir; unfinished groups re-lease, committed "
             "records replay)",
    )
    parser.add_argument(
        "--run-gc-age", type=float, default=3600.0,
        help="seconds a finished cluster run (and its checkpoints) is kept "
             "before age GC (0 disables)",
    )
    parser.add_argument(
        "--worker-ttl", type=float, default=300.0,
        help="seconds of silence before an idle cluster worker is evicted "
             "from the status table (0 disables)",
    )
    parser.add_argument(
        "--kernel-policy", choices=SVD_METHODS, default=None,
        help="SVD kernel selection (see repro.linalg)",
    )
    parser.add_argument(
        "--dtype", choices=KERNEL_DTYPES, default=None,
        help="working precision of the measure kernels",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="serve a tiny pipeline configuration (CI smoke / demos)",
    )
    parser.add_argument(
        "--monitor", action="store_true",
        help="enable the online instability monitor "
             "(/monitor/ingest, /monitor/status, /monitor/events)",
    )
    parser.add_argument(
        "--monitor-distributed", action="store_true",
        help="lease monitor retrains to the repro-worker fleet through the "
             "cluster coordinator instead of running them in-process "
             "(implies --monitor)",
    )
    parser.add_argument(
        "--monitor-every", type=int, default=1,
        help="cut a corpus snapshot every N ingested batches",
    )
    parser.add_argument(
        "--monitor-cadence", type=float, default=0.0,
        help="also cut snapshots every N seconds when new documents arrived "
             "(0 disables the wall-clock cadence)",
    )
    parser.add_argument(
        "--monitor-threshold", action="append", default=None,
        metavar="MEASURE=VALUE",
        help="drift-alert threshold, e.g. 'eis=0.15' or 'disagreement=0.2' "
             "(repeatable; no thresholds = observe without alerting)",
    )
    parser.add_argument(
        "--monitor-webhook", default=None, metavar="URL",
        help="POST each monitor drift alert to this URL as JSON "
             "(bounded retry; delivery outcomes in /monitor/status)",
    )
    parser.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="fraction of requests traced into the /trace ring "
             "(0 disables tracing; histograms still populate)",
    )
    parser.add_argument(
        "--slow-ms", type=float, default=500.0,
        help="always retain traces whose request took at least this many "
             "milliseconds, even when sampled out (0 disables the slow ring)",
    )
    parser.add_argument(
        "--access-log", action="store_true",
        help="print one structured JSON line per request to stdout "
             "(method, path, status, duration_ms, trace id, serving flags)",
    )
    args = parser.parse_args(argv)
    if args.monitor_webhook and not (args.monitor or args.monitor_distributed):
        parser.error("--monitor-webhook requires --monitor")
    if args.store_shards is not None and args.cache_dir is None:
        parser.error("--store-shards requires --cache-dir (it shards the local store)")
    if args.store_mmap and not (args.cache_dir or args.store_url or args.store_replicas):
        parser.error("--store-mmap requires a store to map (--cache-dir or replicas)")
    if args.store_url and args.store_replicas:
        parser.error("--store-url and --store-replicas are mutually exclusive")

    configure_logging()
    if args.kernel_policy is not None or args.dtype is not None:
        configure_default_policy(svd=args.kernel_policy, dtype=args.dtype)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
