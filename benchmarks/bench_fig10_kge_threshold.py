"""Figure 10: triplet classification with thresholds re-tuned per dataset."""

from repro.experiments import fig3_kge


def test_fig10_kge_per_dataset_thresholds(benchmark):
    config = fig3_kge.KGEExperimentConfig(
        dimensions=(4, 16), precisions=(1, 32), epochs=30, per_dataset_thresholds=True
    )
    result = benchmark.pedantic(lambda: fig3_kge.run(config), rounds=1, iterations=1)
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 4
    assert all(0.0 <= r["triplet_disagreement_pct"] <= 100.0 for r in result.rows)
