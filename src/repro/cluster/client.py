"""Client side of the cluster: run a grid on a remote coordinator.

:func:`stream_remote_grid` is what :class:`~repro.engine.scheduler.GridEngine`
calls when a coordinator URL is configured: it POSTs the grid axes plus the
pipeline configuration (JSON wire form, kernel policy pinned -- never pickle)
to the coordinator's ``/grid`` endpoint with ``distributed=true``, then
yields :class:`~repro.instability.grid.GridRecord`\\ s parsed from the NDJSON
response as the coordinator's workers complete cells.  The stream arrives in
canonical order, so the caller sees exactly what a local ``run()`` would
produce.

:func:`configure_default_coordinator` is the process-wide switch behind
``experiments.runner --coordinator URL``: every engine constructed afterwards
(so every experiment) executes its grids against the cluster, the same way
``--cache-dir`` configures the default store.
"""

from __future__ import annotations

import http.client
import json
from typing import TYPE_CHECKING, Iterator
from urllib.parse import urlsplit

from repro.cluster.coordinator import config_wire_payload
from repro.telemetry.trace import propagation_headers
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.scheduler import GridPlan
    from repro.instability.grid import GridRecord
    from repro.instability.pipeline import PipelineConfig

logger = get_logger(__name__)

__all__ = [
    "configure_default_coordinator",
    "default_coordinator_url",
    "open_json_connection",
    "stream_remote_grid",
]

_DEFAULT_COORDINATOR: str | None = None


def configure_default_coordinator(url: str | None) -> None:
    """Set (or clear, with ``None``) the process-wide cluster coordinator."""
    global _DEFAULT_COORDINATOR
    _DEFAULT_COORDINATOR = url
    if url:
        logger.info("default cluster coordinator: %s", url)


def default_coordinator_url() -> str | None:
    return _DEFAULT_COORDINATOR


def _split_url(url: str) -> tuple[str, str, int | None, str]:
    if "://" not in url:
        url = f"http://{url}"
    split = urlsplit(url)
    if split.scheme not in ("http", "https"):
        raise ValueError(f"unsupported coordinator scheme {split.scheme!r}")
    if not split.hostname:
        raise ValueError(f"coordinator URL has no host: {url!r}")
    return split.scheme, split.hostname, split.port, split.path.rstrip("/")


def open_json_connection(
    url: str, timeout: float | None = None
) -> tuple[http.client.HTTPConnection, str]:
    """An HTTP(S) connection to a coordinator plus its base path."""
    scheme, host, port, base_path = _split_url(url)
    factory = (
        http.client.HTTPSConnection if scheme == "https" else http.client.HTTPConnection
    )
    return factory(host, port, timeout=timeout), base_path


def stream_remote_grid(
    url: str,
    config: "PipelineConfig",
    plan: "GridPlan",
    *,
    timeout: float | None = None,
) -> Iterator["GridRecord"]:
    """Execute a grid plan on a remote coordinator, streaming its records.

    ``timeout`` bounds each socket read between NDJSON lines (``None`` waits
    indefinitely -- a cold cluster may train for a while before the first
    record lands).  A terminal ``{"error": ...}`` line, a mid-stream
    disconnect, or a non-200 response raise ``RuntimeError``/
    ``ConnectionError`` so a silently-truncated grid can never be mistaken
    for a complete one.
    """
    from repro.instability.grid import GridRecord

    body = json.dumps(
        {
            "distributed": True,
            "config": config_wire_payload(config),
            "algorithms": list(plan.algorithms),
            "tasks": list(plan.tasks),
            "dimensions": list(plan.dimensions),
            "precisions": list(plan.precisions),
            "seeds": list(plan.seeds),
            "with_measures": plan.with_measures,
            "model_type": plan.model_type,
            "ordered": True,
        }
    ).encode("utf-8")
    conn, base_path = open_json_connection(url, timeout)
    try:
        headers = {"Content-Type": "application/json"}
        headers.update(propagation_headers())
        conn.request("POST", f"{base_path}/grid", body=body, headers=headers)
        response = conn.getresponse()
        if response.status != 200:
            payload = response.read()
            try:
                message = json.loads(payload).get("error", payload.decode("utf-8", "replace"))
            except (ValueError, AttributeError):
                message = payload.decode("utf-8", "replace")
            raise RuntimeError(
                f"coordinator {url} rejected the grid (HTTP {response.status}): {message}"
            )
        expected = plan.n_cells
        received = 0
        # http.client decodes the chunked transfer encoding; each line is one
        # NDJSON record the moment its cell was committed by the coordinator.
        for raw in response:
            line = raw.strip()
            if not line:
                continue
            row = json.loads(line)
            if "error" in row and "algorithm" not in row:
                raise RuntimeError(f"distributed grid failed: {row['error']}")
            received += 1
            yield GridRecord.from_row(row)
        if received != expected:
            raise ConnectionError(
                f"coordinator stream ended early: {received}/{expected} records"
            )
    finally:
        conn.close()
