"""Lease-lifecycle tests of the cluster coordinator (fake clock, no sockets).

The coordinator is a plain thread-safe state machine, so everything the
distributed path relies on -- anchor-first leasing, ancestry gating, expiry
and reassignment after a worker crash, duplicate-result idempotence, ordered
record commit -- is pinned here deterministically, without booting servers
or sleeping through real TTLs.
"""

import json

import pytest

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterRunFailed,
    config_wire_payload,
    group_from_wire,
    group_wire_payload,
)
from repro.engine import plan_grid
from repro.instability.grid import GridRecord
from repro.instability.pipeline import PipelineConfig
from repro.serving.api import quick_serve_config


class FakeClock:
    def __init__(self, now: float = 1.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_plan(
    *, dimensions=(4, 6), seeds=(0,), precisions=(1, 32), with_measures=True
):
    return plan_grid(
        quick_serve_config(),
        dimensions=dimensions, seeds=seeds, precisions=precisions,
        with_measures=with_measures,
    )


def make_record(key, value: float = 0.5) -> GridRecord:
    algorithm, dim, precision, seed, task = key
    return GridRecord(
        algorithm=algorithm, task=task, dim=dim, precision=precision, seed=seed,
        disagreement=value, accuracy_a=0.9, accuracy_b=0.8,
        measures={"eis": value},
    )


def rows_for_group(plan, index):
    group = plan.groups[index]
    return [
        make_record((group.algorithm, group.dim, precision, group.seed, task)).to_row()
        for precision in group.precisions
        for task in group.tasks
    ]


def make_coordinator(clock=None, **kwargs):
    return ClusterCoordinator(clock=clock or FakeClock(), **kwargs)


class TestWireFormats:
    def test_group_round_trip(self):
        plan = make_plan()
        for group in plan.groups:
            assert group_from_wire(json.loads(json.dumps(group_wire_payload(group)))) == group

    def test_config_round_trip_preserves_artifact_keys(self):
        config = quick_serve_config()
        payload = json.loads(json.dumps(config_wire_payload(config)))
        rebuilt = PipelineConfig.from_jsonable(payload)
        # The wire form pins the resolved kernel policy, so the raw dataclass
        # differs -- but every value that reaches an artifact key is equal.
        assert rebuilt.dimensions == config.dimensions
        assert rebuilt.corpus == config.corpus
        assert rebuilt.ner_config == config.ner_config
        assert rebuilt.resolved_kernel_policy() == config.resolved_kernel_policy()

    def test_config_wire_pins_the_resolved_policy(self):
        payload = config_wire_payload(quick_serve_config())
        assert payload["kernel_policy"] == "exact"
        assert payload["measure_dtype"] == "float64"

    def test_from_jsonable_rejects_unknown_fields(self):
        payload = config_wire_payload(quick_serve_config())
        payload["not_a_field"] = 1
        with pytest.raises(TypeError):
            PipelineConfig.from_jsonable(payload)

    def test_record_row_round_trip(self):
        record = make_record(("svd", 4, 1, 0, "sst2"), value=1 / 3)
        assert GridRecord.from_row(json.loads(json.dumps(record.to_row()))) == record


class TestLeasing:
    def test_anchor_group_leases_first_and_gates_its_ancestry(self):
        coordinator = make_coordinator()
        plan = make_plan()                       # anchor dim 6 first, then 4
        coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        assert lease["status"] == "lease"
        assert lease["group"]["dim"] == 6        # the anchor group
        # The sibling shares the (algorithm, seed) ancestry and its anchor
        # pair is not in the cluster store yet: gate it.
        assert coordinator.lease("w2")["status"] == "wait"

    def test_ancestry_gate_opens_once_the_anchor_completes(self):
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        answer = coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"],
            rows_for_group(plan, lease["group_index"]),
        )
        assert answer == {"status": "ok", "accepted": 2}
        follow = coordinator.lease("w2")
        assert follow["status"] == "lease" and follow["group"]["dim"] == 4

    def test_distinct_ancestries_lease_concurrently(self):
        coordinator = make_coordinator()
        coordinator.create_run(make_plan(seeds=(0, 1)))
        first = coordinator.lease("w1")
        second = coordinator.lease("w2")
        assert first["status"] == second["status"] == "lease"
        assert first["group"]["seed"] != second["group"]["seed"]
        assert {first["group"]["dim"], second["group"]["dim"]} == {6}  # both anchors

    def test_no_gating_without_measures(self):
        coordinator = make_coordinator()
        coordinator.create_run(make_plan(with_measures=False))
        assert coordinator.lease("w1")["status"] == "lease"
        assert coordinator.lease("w2")["status"] == "lease"

    def test_idle_when_no_runs(self):
        coordinator = make_coordinator()
        assert coordinator.lease("w1")["status"] == "idle"

    def test_lease_carries_the_run_config(self):
        coordinator = make_coordinator(
            default_config=config_wire_payload(quick_serve_config())
        )
        coordinator.create_run(make_plan())
        lease = coordinator.lease("w1")
        assert lease["config"]["algorithms"] == ["svd"]


class TestExpiryAndReassignment:
    def test_expired_lease_is_reassigned_to_another_worker(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, lease_ttl=30.0)
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        first = coordinator.lease("w1")
        assert first["status"] == "lease"
        clock.advance(31.0)                      # w1 "crashed": no heartbeat
        second = coordinator.lease("w2")
        assert second["status"] == "lease"
        assert second["group_index"] == first["group_index"]
        assert coordinator.counters["leases_expired"] == 1
        assert coordinator.counters["leases_reassigned"] == 1
        # The crashed worker's lease is dead.
        assert coordinator.heartbeat("w1", first["lease_id"])["status"] == "gone"
        # The second worker completes the group normally.
        answer = coordinator.complete(
            "w2", second["lease_id"], run_id, second["group_index"],
            rows_for_group(plan, second["group_index"]),
        )
        assert answer["status"] == "ok"

    def test_heartbeat_extends_the_lease(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, lease_ttl=30.0)
        coordinator.create_run(make_plan())
        lease = coordinator.lease("w1")
        clock.advance(20.0)
        assert coordinator.heartbeat("w1", lease["lease_id"])["status"] == "ok"
        clock.advance(20.0)                      # 40s total, but renewed at 20
        assert coordinator.heartbeat("w1", lease["lease_id"])["status"] == "ok"
        assert coordinator.counters["leases_expired"] == 0

    def test_late_result_from_the_crashed_worker_is_accepted_once(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, lease_ttl=30.0)
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        first = coordinator.lease("w1")
        clock.advance(31.0)
        second = coordinator.lease("w2")         # reassigned
        # w1 was only stalled, not dead: its result arrives after expiry but
        # before w2 finishes.  Deterministic results make it safe to accept.
        answer = coordinator.complete(
            "w1", first["lease_id"], run_id, first["group_index"],
            rows_for_group(plan, first["group_index"]),
        )
        assert answer["status"] == "ok"
        assert coordinator.counters["late_results"] == 1
        # w2's copy of the same group is a duplicate and is dropped.
        duplicate = coordinator.complete(
            "w2", second["lease_id"], run_id, second["group_index"],
            rows_for_group(plan, second["group_index"]),
        )
        assert duplicate["status"] == "duplicate"
        assert coordinator.counters["duplicate_results"] == 1


class TestCompletion:
    def test_duplicate_complete_is_idempotent(self):
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        rows = rows_for_group(plan, lease["group_index"])
        assert coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"], rows
        )["status"] == "ok"
        assert coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"], rows
        )["status"] == "duplicate"
        # Records accounted exactly once (the anchor group's records buffer
        # in the committer until the canonically-earlier dim-4 group lands).
        assert coordinator.counters["records_committed"] == 2
        assert coordinator.counters["duplicate_results"] == 1

    def test_wrong_record_count_is_rejected_and_group_re_leasable(self):
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        answer = coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"],
            rows_for_group(plan, lease["group_index"])[:1],
        )
        assert answer["status"] == "rejected"
        # A rejected payload must not strand the group in the leased state:
        # another worker picks it up and the run can still finish.
        retry = coordinator.lease("w2")
        assert retry["status"] == "lease"
        assert retry["group_index"] == lease["group_index"]
        assert coordinator.complete(
            "w2", retry["lease_id"], run_id, retry["group_index"],
            rows_for_group(plan, retry["group_index"]),
        )["status"] == "ok"

    def test_foreign_cells_are_rejected_not_committed(self):
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        bad_rows = [
            make_record(("svd", 99, precision, 0, "sst2")).to_row()
            for precision in (1, 32)
        ]
        answer = coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"], bad_rows
        )
        assert answer["status"] == "rejected"
        assert coordinator.run_status(run_id)["committed"] == 0
        # The committer was not partially mutated: a clean retry commits fine.
        retry = coordinator.lease("w1")
        assert retry["group_index"] == lease["group_index"]
        assert coordinator.complete(
            "w1", retry["lease_id"], run_id, retry["group_index"],
            rows_for_group(plan, retry["group_index"]),
        )["status"] == "ok"

    def test_partially_foreign_batch_does_not_poison_retries(self):
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        index = lease["group_index"]
        good = rows_for_group(plan, index)
        mixed = [good[0], make_record(("svd", 99, 32, 0, "sst2")).to_row()]
        assert coordinator.complete(
            "w1", lease["lease_id"], run_id, index, mixed
        )["status"] == "rejected"
        # The valid half of the batch must NOT have reached the committer;
        # otherwise this retry would raise "pushed twice" forever.
        retry = coordinator.lease("w1")
        assert coordinator.complete(
            "w1", retry["lease_id"], run_id, retry["group_index"], good
        )["status"] == "ok"

    def test_stale_error_report_does_not_unseat_the_active_lease(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, lease_ttl=30.0)
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        first = coordinator.lease("w1")
        clock.advance(31.0)                      # w1's lease expires
        second = coordinator.lease("w2")         # reassigned to w2
        # w1's delayed failure report must neither reset w2's group to
        # pending (double execution) nor consume the run's failure budget.
        answer = coordinator.complete(
            "w1", first["lease_id"], run_id, first["group_index"], error="late boom"
        )
        assert answer["status"] == "stale"
        assert coordinator.counters["group_failures"] == 0
        assert coordinator.lease("w3")["status"] == "wait"   # group still w2's
        assert coordinator.complete(
            "w2", second["lease_id"], run_id, second["group_index"],
            rows_for_group(plan, second["group_index"]),
        )["status"] == "ok"

    def test_unknown_run_is_reported(self):
        coordinator = make_coordinator()
        assert coordinator.complete("w1", "x", "run-9999", 0, [])["status"] == "unknown-run"

    def test_mismatched_completion_does_not_strand_the_leased_group(self):
        # A completion that names the wrong run or group must still return
        # the lease's real group to the pending pool -- otherwise one buggy
        # worker request wedges the run forever.
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        for bad_run, bad_index in (("run-9999", 0), (run_id, 99)):
            answer = coordinator.complete(
                "w1", lease["lease_id"], bad_run, bad_index, []
            )
            assert answer["status"] in ("unknown-run", "rejected")
            retry = coordinator.lease("w1")
            assert retry["status"] == "lease"
            assert retry["group_index"] == lease["group_index"]
            lease = retry
        assert coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"],
            rows_for_group(plan, lease["group_index"]),
        )["status"] == "ok"

    def test_reported_error_retries_then_fails_the_run(self):
        coordinator = make_coordinator(max_attempts=2)
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        answer = coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"], error="boom"
        )
        assert answer["status"] == "retry"
        retry = coordinator.lease("w1")
        assert retry["group_index"] == lease["group_index"]
        answer = coordinator.complete(
            "w1", retry["lease_id"], run_id, retry["group_index"], error="boom again"
        )
        assert answer["status"] == "failed"
        with pytest.raises(ClusterRunFailed, match="boom again"):
            list(coordinator.records(run_id, poll_interval=0.01))


class TestRecordsStream:
    def test_out_of_order_submission_streams_in_canonical_order(self):
        coordinator = make_coordinator()
        plan = make_plan(seeds=(0, 1), with_measures=False)
        run_id = coordinator.create_run(plan)
        leases = {}
        for worker in ("w1", "w2", "w3", "w4"):
            lease = coordinator.lease(worker)
            assert lease["status"] == "lease"
            leases[worker] = lease
        # Complete in reverse lease order: the stream must still be canonical.
        for worker in ("w4", "w3", "w2", "w1"):
            lease = leases[worker]
            coordinator.complete(
                worker, lease["lease_id"], run_id, lease["group_index"],
                rows_for_group(plan, lease["group_index"]),
            )
        records = list(coordinator.records(run_id, poll_interval=0.01))
        assert [
            (r.algorithm, r.dim, r.precision, r.seed, r.task) for r in records
        ] == plan.cell_keys()

    def test_cancelled_run_stops_leasing_and_ends_the_stream(self):
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        assert coordinator.cancel(run_id) is True
        assert coordinator.cancel(run_id) is False       # idempotent
        assert coordinator.lease("w1")["status"] == "idle"
        assert list(coordinator.records(run_id, poll_interval=0.01)) == []
        assert coordinator.counters["runs_cancelled"] == 1

    def test_snapshot_reports_workers_and_runs(self):
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"],
            rows_for_group(plan, lease["group_index"]),
            stats={"embedding_train_count": 1},
        )
        snapshot = coordinator.snapshot()
        assert snapshot["counters"]["leases_issued"] == 1
        worker = snapshot["workers"]["w1"]
        assert worker["groups_completed"] == 1 and worker["cells_completed"] == 2
        assert worker["cells_per_second"] >= 0
        assert worker["reported"] == {"embedding_train_count": 1}
        run = snapshot["runs"][run_id]
        assert run["done"] == 1 and run["groups"] == 2
        assert json.dumps(snapshot)              # JSON-able end to end


class TestLeaseHygiene:
    def test_foreign_lease_id_cannot_unseat_the_owner(self):
        # A worker quoting someone ELSE's lease_id must not pop that lease:
        # under the old code the owner's lease vanished while its group
        # stayed leased, with no lease left to ever expire -- a wedged run.
        coordinator = make_coordinator()
        plan = make_plan()
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        hostile = coordinator.complete(
            "w2", lease["lease_id"], run_id, lease["group_index"], []
        )
        assert hostile["status"] == "rejected"
        # The owner's lease survived the hijack attempt...
        assert coordinator.heartbeat("w1", lease["lease_id"])["status"] == "ok"
        # ...and the owner completes normally, not as a late result.
        assert coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"],
            rows_for_group(plan, lease["group_index"]),
        )["status"] == "ok"
        assert coordinator.counters["late_results"] == 0


class TestDrain:
    def test_drain_refuses_new_leases_but_lands_inflight_work(self):
        coordinator = make_coordinator()
        plan = make_plan(with_measures=False)
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("w1")
        status = coordinator.drain()
        assert status["draining"] is True
        assert status["drained"] is False            # w1's lease is in flight
        assert coordinator.lease("w2")["status"] == "drain"
        # The in-flight lease still heartbeats and completes.
        assert coordinator.heartbeat("w1", lease["lease_id"])["status"] == "ok"
        assert coordinator.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"],
            rows_for_group(plan, lease["group_index"]),
        )["status"] == "ok"
        assert coordinator.drain_status()["drained"] is True
        assert coordinator.counters["drains_started"] == 1
        # Lifting the drain resumes leasing where it left off.
        assert coordinator.drain(False)["draining"] is False
        assert coordinator.lease("w2")["status"] == "lease"

    def test_drain_is_visible_in_the_snapshot(self):
        coordinator = make_coordinator()
        coordinator.drain()
        assert coordinator.snapshot()["draining"] is True


class TestSpeculation:
    def _run_with_straggler(self, clock, coordinator):
        """Four no-measure groups: three complete in 2s, one straggles."""
        plan = make_plan(seeds=(0, 1), with_measures=False)
        run_id = coordinator.create_run(plan)
        leases = [coordinator.lease(f"w{i}") for i in range(4)]
        assert all(l["status"] == "lease" for l in leases)
        clock.advance(2.0)
        for i, lease in enumerate(leases[:3]):
            assert coordinator.complete(
                f"w{i}", lease["lease_id"], run_id,
                lease["group_index"], rows_for_group(plan, lease["group_index"]),
            )["status"] == "ok"
        return plan, run_id, leases[3]

    def test_straggler_gets_a_second_lease_without_consuming_attempts(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, lease_ttl=60.0)
        plan, run_id, straggler = self._run_with_straggler(clock, coordinator)
        # Sibling durations are all 2s; the threshold is 2.0 * 2s = 4s.  At
        # 2s of runtime the straggler is not yet speculation-worthy.
        assert coordinator.lease("spare")["status"] == "wait"
        coordinator.heartbeat("w3", straggler["lease_id"])
        clock.advance(3.0)                           # 5s of runtime > 4s
        speculative = coordinator.lease("spare")
        assert speculative["status"] == "lease"
        assert speculative.get("speculative") is True
        assert speculative["group_index"] == straggler["group_index"]
        assert coordinator.counters["leases_speculative"] == 1
        # Speculation is a hedge, not a retry: the attempt budget is intact
        # and no reassignment was counted.
        status = coordinator.run_status(run_id)
        assert status["leased"] == 1
        assert coordinator.counters["leases_reassigned"] == 0
        # Only one speculative copy at a time.
        assert coordinator.lease("spare2")["status"] == "wait"
        # First result commits; the loser is a duplicate, not a failure.
        assert coordinator.complete(
            "spare", speculative["lease_id"], run_id, speculative["group_index"],
            rows_for_group(plan, speculative["group_index"]),
        )["status"] == "ok"
        assert coordinator.complete(
            "w3", straggler["lease_id"], run_id, straggler["group_index"],
            rows_for_group(plan, straggler["group_index"]),
        )["status"] == "duplicate"
        assert coordinator.run_status(run_id)["completed"] is True
        assert coordinator.counters["group_failures"] == 0

    def test_speculative_failure_is_stale_and_spares_the_primary(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, lease_ttl=60.0, max_attempts=1)
        plan, run_id, straggler = self._run_with_straggler(clock, coordinator)
        coordinator.heartbeat("w3", straggler["lease_id"])
        clock.advance(5.0)
        speculative = coordinator.lease("spare")
        assert speculative["status"] == "lease" and speculative.get("speculative")
        # The speculative copy blows up -- with max_attempts=1 an authoritative
        # failure would kill the run; a speculative one must not.
        answer = coordinator.complete(
            "spare", speculative["lease_id"], run_id,
            speculative["group_index"], error="spec boom",
        )
        assert answer["status"] == "stale"
        assert coordinator.counters["group_failures"] == 0
        assert coordinator.run_status(run_id)["failure"] is None
        # The primary still owns the group and finishes the run.
        assert coordinator.complete(
            "w3", straggler["lease_id"], run_id, straggler["group_index"],
            rows_for_group(plan, straggler["group_index"]),
        )["status"] == "ok"
        assert coordinator.run_status(run_id)["completed"] is True

    def test_expired_speculative_lease_does_not_release_a_held_group(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, lease_ttl=10.0)
        plan, run_id, straggler = self._run_with_straggler(clock, coordinator)
        coordinator.heartbeat("w3", straggler["lease_id"])
        clock.advance(5.0)
        coordinator.heartbeat("w3", straggler["lease_id"])
        speculative = coordinator.lease("spare")
        assert speculative["status"] == "lease" and speculative.get("speculative")
        # The speculative worker dies; the primary keeps heartbeating.  When
        # the speculative lease expires the group must stay leased to the
        # primary -- releasing it would hand a THIRD copy to the next poller.
        clock.advance(8.0)
        coordinator.heartbeat("w3", straggler["lease_id"])
        clock.advance(3.0)                           # spec lease now expired
        coordinator.heartbeat("w3", straggler["lease_id"])
        assert coordinator.counters["leases_expired"] == 1
        assert coordinator.run_status(run_id)["pending"] == 0
        assert coordinator.complete(
            "w3", straggler["lease_id"], run_id, straggler["group_index"],
            rows_for_group(plan, straggler["group_index"]),
        )["status"] == "ok"

    def test_speculation_disabled_with_zero_factor(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, lease_ttl=60.0, speculation_factor=0.0)
        plan, run_id, straggler = self._run_with_straggler(clock, coordinator)
        for _ in range(4):                           # 200s of runtime, renewed
            coordinator.heartbeat("w3", straggler["lease_id"])
            clock.advance(50.0)
        coordinator.heartbeat("w3", straggler["lease_id"])
        assert coordinator.lease("spare")["status"] == "wait"
        assert coordinator.counters["leases_speculative"] == 0


class TestWorkerEviction:
    def test_idle_worker_is_evicted_and_fleet_totals_stay_monotonic(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, worker_ttl=100.0)
        plan = make_plan(with_measures=False)
        run_id = coordinator.create_run(plan)
        lease = coordinator.lease("old")
        coordinator.complete(
            "old", lease["lease_id"], run_id, lease["group_index"],
            rows_for_group(plan, lease["group_index"]),
        )
        before = coordinator.snapshot()["fleet"]
        assert before["cells_completed"] == 2 and before["workers_live"] == 1
        clock.advance(101.0)
        coordinator.lease("fresh")                   # any request sweeps
        snapshot = coordinator.snapshot()
        assert "old" not in snapshot["workers"]
        assert coordinator.counters["workers_evicted"] == 1
        # The evicted worker's work retired into the monotonic aggregates.
        assert snapshot["retired_workers"]["cells_completed"] == 2
        fleet = snapshot["fleet"]
        assert fleet["cells_completed"] == before["cells_completed"]
        assert fleet["leases"] >= before["leases"]
        assert fleet["workers_evicted"] == 1

    def test_worker_holding_a_lease_is_never_evicted(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, worker_ttl=5.0, lease_ttl=100.0)
        coordinator.create_run(make_plan(with_measures=False))
        lease = coordinator.lease("busy")
        clock.advance(50.0)
        coordinator.heartbeat("busy", lease["lease_id"])
        assert "busy" in coordinator.snapshot()["workers"]
        assert coordinator.counters["workers_evicted"] == 0

    def test_eviction_disabled_with_zero_ttl(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, worker_ttl=0.0)
        coordinator.lease("w1")                      # registers the worker
        clock.advance(1e6)
        coordinator.lease("w2")
        assert "w1" in coordinator.snapshot()["workers"]


class TestRunGC:
    def _finish_run(self, coordinator, plan, run_id):
        while True:
            lease = coordinator.lease("w")
            if lease["status"] != "lease":
                break
            coordinator.complete(
                "w", lease["lease_id"], run_id, lease["group_index"],
                rows_for_group(plan, lease["group_index"]),
            )

    def test_finished_run_is_gced_by_age(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, run_gc_age=100.0)
        plan = make_plan(with_measures=False)
        run_id = coordinator.create_run(plan)
        self._finish_run(coordinator, plan, run_id)
        assert coordinator.run_status(run_id)["completed"] is True
        clock.advance(50.0)
        coordinator.lease("w")                       # sweeps; too young to GC
        assert coordinator.run_status(run_id) is not None
        clock.advance(51.0)
        coordinator.lease("w")
        assert coordinator.run_status(run_id) is None
        assert coordinator.counters["runs_gced"] == 1

    def test_attached_consumer_pins_a_finished_run_against_gc(self):
        clock = FakeClock()
        coordinator = make_coordinator(clock, run_gc_age=100.0)
        plan = make_plan(with_measures=False)
        run_id = coordinator.create_run(plan)
        self._finish_run(coordinator, plan, run_id)
        stream = coordinator.records(run_id, poll_interval=0.01)
        first = next(stream)
        assert first is not None
        clock.advance(1000.0)
        coordinator.lease("w")                       # sweep: run is pinned
        assert coordinator.run_status(run_id) is not None
        remaining = list(stream)                     # detach cleanly
        assert len(remaining) == plan.n_cells - 1
        coordinator.lease("w")                       # now collectable
        assert coordinator.run_status(run_id) is None

    def test_ready_records_drop_when_the_last_consumer_detaches(self):
        coordinator = make_coordinator(run_gc_age=0.0)
        plan = make_plan(with_measures=False)
        run_id = coordinator.create_run(plan)
        self._finish_run(coordinator, plan, run_id)
        records = list(coordinator.records(run_id, poll_interval=0.01))
        assert len(records) == plan.n_cells
        assert coordinator.counters["ready_records_dropped"] == plan.n_cells
        # The dropped stream cannot be replayed from memory; a re-attach is
        # told so instead of silently yielding nothing.
        with pytest.raises(KeyError, match="already released"):
            next(coordinator.records(run_id, poll_interval=0.01))
