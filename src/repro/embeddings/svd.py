"""PPMI-SVD embeddings.

A deterministic baseline: factor the PPMI matrix with a truncated SVD and use
``U * S**0.5`` as the word vectors.  Not one of the paper's three headline
algorithms, but useful as (a) a fast, nearly-deterministic reference point in
tests and (b) the embedding flavour studied in Hellrich et al. (2019), cited
by the paper for SVD-embedding stability.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.corpus.cooccurrence import build_cooccurrence, ppmi_matrix
from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import EMBEDDING_ALGORITHMS, Embedding, EmbeddingAlgorithm
from repro.linalg import default_policy, randomized_svd

__all__ = ["PPMISVDModel"]


@EMBEDDING_ALGORITHMS.register("svd")
class PPMISVDModel(EmbeddingAlgorithm):
    """Truncated SVD of the PPMI matrix.

    Parameters
    ----------
    dim:
        Embedding dimension (number of singular vectors kept).
    window_size:
        Co-occurrence window.
    eigenvalue_weighting:
        Exponent ``p`` in ``U diag(S)**p``; 0.5 is the common choice.
    seed:
        Seed for the sparse-SVD starting vector (exact path) or for the
        randomized range finder's test matrix; the factorization is a
        deterministic function of the seed either way.
    kernel_policy:
        ``"exact"``, ``"randomized"`` or ``"auto"`` selection of the truncated
        SVD kernel; ``None`` uses the process-wide default policy (exact
        unless configured).  ``auto`` keeps small vocabularies on the exact
        (Lanczos) path and switches to the randomized kernel once the PPMI
        matrix is large and ``dim`` is a small fraction of it.
    """

    name = "svd"

    def __init__(
        self,
        dim: int = 50,
        *,
        window_size: int = 8,
        eigenvalue_weighting: float = 0.5,
        seed: int = 0,
        kernel_policy: str | None = None,
    ) -> None:
        super().__init__(dim, seed=seed)
        self.window_size = int(window_size)
        self.eigenvalue_weighting = float(eigenvalue_weighting)
        self.kernel_policy = kernel_policy

    def fit(self, corpus: Corpus, *, vocab: Vocabulary | None = None) -> Embedding:
        vocab = self._resolve_vocab(corpus, vocab)
        docs = corpus.encode_documents(vocab)
        counts = build_cooccurrence(docs, len(vocab), window_size=self.window_size)
        ppmi = ppmi_matrix(counts)
        k = min(self.dim, len(vocab) - 1)
        if k < 1:
            raise ValueError("vocabulary too small for the requested dimension")
        policy = default_policy().with_overrides(svd=self.kernel_policy)
        if policy.resolve_method(ppmi.shape, k) == "randomized":
            # The (sparse) PPMI matrix is factored directly; the range finder
            # only needs matrix-vector products.
            U, S, _ = randomized_svd(
                ppmi, k,
                n_oversamples=policy.n_oversamples,
                n_power_iter=policy.n_power_iter,
                seed=self.seed,
            )
        else:
            rng = np.random.default_rng(self.seed)
            v0 = rng.standard_normal(min(ppmi.shape))
            U, S, _ = spla.svds(sp.csr_matrix(ppmi), k=k, v0=v0)
            # svds returns singular values in ascending order; flip to descending.
            order = np.argsort(-S)
            U, S = U[:, order], S[order]
        vectors = U * (S[np.newaxis, :] ** self.eigenvalue_weighting)
        if vectors.shape[1] < self.dim:
            pad = np.zeros((vectors.shape[0], self.dim - vectors.shape[1]))
            vectors = np.hstack([vectors, pad])
        return Embedding(vocab=vocab, vectors=vectors, metadata=self._metadata(corpus))
