"""Table 1 (and Figure 9, Table 9a): measure vs downstream-instability correlation.

For every (task, algorithm), compute the Spearman correlation between each of
the five embedding distance measures and the downstream prediction
disagreement across all dimension-precision pairs.  The paper's finding: the
eigenspace instability measure and the k-NN measure are the two strongest
measures, well ahead of semantic displacement, PIP loss and the eigenspace
overlap score.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import measure_correlations
from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.instability.grid import GridRecord
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run", "summarize", "MEASURE_ORDER"]

#: Row order used by the paper's tables.
MEASURE_ORDER = ("eis", "1-knn", "semantic-displacement", "pip", "1-eigenspace-overlap")


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    tasks: tuple[str, ...] | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce Table 1 on the pipeline's grid."""
    pipe = resolve_pipeline(pipeline)
    records = resolve_engine(pipe, n_workers=n_workers).run(tasks=tasks, with_measures=True)
    return summarize(records)


def summarize(records: list[GridRecord]) -> ExperimentResult:
    """Build the Table 1 rows (one per task/algorithm/measure) from records."""
    correlations = measure_correlations(records)
    rows = []
    for (task, algorithm, measure), rho in sorted(correlations.items()):
        rows.append(
            {
                "task": task,
                "algorithm": algorithm,
                "measure": measure,
                "spearman_rho": rho,
            }
        )

    # Shape check: are EIS and 1-kNN the top-2 measures on average, as in the paper?
    per_measure: dict[str, list[float]] = {}
    for row in rows:
        per_measure.setdefault(row["measure"], []).append(row["spearman_rho"])
    mean_rho = {m: float(np.mean(v)) for m, v in per_measure.items()}
    ranked = sorted(mean_rho, key=lambda m: -mean_rho[m])
    summary = {
        "mean_rho_by_measure": mean_rho,
        "top_two_measures": ranked[:2],
        "eis_and_knn_are_top_two": set(ranked[:2]) == {"eis", "1-knn"} if len(ranked) >= 2 else False,
    }
    return ExperimentResult(name="table-1-spearman-correlation", rows=rows, summary=summary)
