"""Incremental corpus ingestion: growing vocabulary + co-occurrence deltas.

The paper's scenario is a corpus that *accumulates* -- Wiki'17 grows into
Wiki'18 -- and :class:`CorpusIngestor` is that accumulation made online.
Document batches arrive as tokenised text; the ingestor maintains

* a growing :class:`~repro.corpus.vocabulary.Vocabulary` (frequency-ordered,
  so ids are re-derived as counts change -- **stable id remapping** migrates
  all accumulated state across each re-ordering), and
* an incrementally-updated sparse
  :class:`~repro.corpus.cooccurrence.CooccurrenceAccumulator` whose
  materialisation is bit-identical to a from-scratch
  :func:`~repro.corpus.cooccurrence.build_cooccurrence` over the concatenated
  corpus (the accumulator keeps exact integer counts per window offset, so
  delta merges and id remaps are exact).

:meth:`snapshot_corpus` freezes the ingested state into a
:class:`~repro.corpus.synthetic.Corpus` whose word list is the current
vocabulary; the monitor's scheduler stores it content-addressed
(:mod:`repro.corpus.snapshots`) and retrains embedding versions over
successive snapshot pairs.

The ingestor's vocabulary uses ``min_count=1``: every ingested token is
in-vocabulary, so encoding a document at batch time and remapping its ids
later is exactly the same as encoding it against the final vocabulary --
the invariant the bit-identity guarantee rests on.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

import numpy as np

from repro.corpus.cooccurrence import CooccurrenceAccumulator
from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary

__all__ = ["CorpusIngestor"]


class CorpusIngestor:
    """Accumulates tokenised document batches into monitored corpus state.

    Parameters
    ----------
    window_size, distance_weighting, symmetric:
        Co-occurrence accumulation knobs (see
        :func:`~repro.corpus.cooccurrence.build_cooccurrence`).
    corpus_name:
        ``name`` of every cut corpus.  Constant on purpose: the snapshot key
        is a content hash, so an unchanged corpus cuts to the same key and
        the scheduler can skip no-op snapshots.
    """

    def __init__(
        self,
        *,
        window_size: int = 8,
        distance_weighting: bool = True,
        symmetric: bool = True,
        corpus_name: str = "monitor",
    ) -> None:
        self.window_size = int(window_size)
        self.distance_weighting = bool(distance_weighting)
        self.symmetric = bool(symmetric)
        self.corpus_name = str(corpus_name)
        self.vocab = Vocabulary(min_count=1)
        self._accumulator: CooccurrenceAccumulator | None = None
        self._documents: list[list[str]] = []
        self._lock = threading.Lock()
        self.batches_ingested = 0

    # -- ingestion -----------------------------------------------------------

    def add_batch(self, documents: Sequence[Sequence[str]]) -> dict:
        """Merge one batch of tokenised documents; returns ingest stats.

        The vocabulary grows (and re-orders) first; the co-occurrence
        accumulator is remapped onto the new id space through the stable
        old-id -> new-id table, then the batch's documents are encoded in the
        *new* vocabulary and delta-merged in.
        """
        batch = [[str(token) for token in doc] for doc in documents]
        if not batch or any(not doc for doc in batch):
            raise ValueError("documents must be a non-empty list of non-empty token lists")
        with self._lock:
            old_words = self.vocab.words
            self.vocab.update(token for doc in batch for token in doc)
            if self._accumulator is None:
                self._accumulator = CooccurrenceAccumulator(
                    len(self.vocab),
                    window_size=self.window_size,
                    distance_weighting=self.distance_weighting,
                    symmetric=self.symmetric,
                )
            elif old_words:
                old_to_new = np.array(
                    [self.vocab[word] for word in old_words], dtype=np.int64
                )
                self._accumulator.remap(old_to_new, len(self.vocab))
            encoded = [self.vocab.encode(doc) for doc in batch]
            self._accumulator.add(encoded)
            self._documents.extend(batch)
            self.batches_ingested += 1
            return {
                "batch_documents": len(batch),
                "batch_tokens": int(sum(len(doc) for doc in batch)),
                **self._stats_locked(),
            }

    # -- snapshots -----------------------------------------------------------

    def snapshot_corpus(self) -> Corpus:
        """Freeze everything ingested so far as a :class:`Corpus`.

        The word list is the current vocabulary in id order and every
        document is encoded against it, so the corpus is self-contained --
        exactly what :func:`repro.corpus.snapshots.store_snapshot` needs.
        Topic labels are zeros: ingested corpora carry no generator topics
        (downstream task structure comes from the pipeline's config-derived
        lexicons, not from the corpus).
        """
        with self._lock:
            if not self._documents:
                raise ValueError("no documents ingested yet")
            documents = [self.vocab.encode(doc) for doc in self._documents]
            return Corpus(
                word_list=self.vocab.words,
                documents=documents,
                document_topics=np.zeros(len(documents), dtype=np.int64),
                name=self.corpus_name,
            )

    def cooccurrence(self):
        """Materialised co-occurrence matrix of everything ingested (csr)."""
        with self._lock:
            if self._accumulator is None:
                raise ValueError("no documents ingested yet")
            return self._accumulator.materialize()

    # -- observability ---------------------------------------------------------

    def _stats_locked(self) -> dict:
        accumulator = self._accumulator
        return {
            "batches": self.batches_ingested,
            "documents": len(self._documents),
            "tokens": 0 if accumulator is None else accumulator.tokens_added,
            "vocab_size": len(self.vocab),
            "cooccurrence_nnz": 0 if accumulator is None else accumulator.nnz,
        }

    def stats(self) -> dict:
        with self._lock:
            return self._stats_locked()
