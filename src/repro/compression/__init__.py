"""Embedding compression: uniform quantization and memory accounting."""

from repro.compression.memory import (
    bits_per_word,
    dimension_precision_grid,
    memory_of,
    pairs_for_budget,
)
from repro.compression.uniform_quantization import (
    UniformQuantizer,
    compress_embedding,
    compress_pair,
    optimal_clip_threshold,
    uniform_quantize,
)

__all__ = [
    "UniformQuantizer",
    "bits_per_word",
    "compress_embedding",
    "compress_pair",
    "dimension_precision_grid",
    "memory_of",
    "optimal_clip_threshold",
    "pairs_for_budget",
    "uniform_quantize",
]
