"""word2vec continuous bag-of-words (CBOW) with negative sampling.

CBOW predicts a word from the average of its context-word vectors, trained
with negative sampling (Mikolov et al., 2013).  The implementation here builds
the (context-window, target) training examples for a corpus once and then runs
mini-batched, fully vectorised SGD updates -- the same objective the word2vec
C implementation optimises, at the scale of our synthetic corpora.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import EMBEDDING_ALGORITHMS, Embedding, EmbeddingAlgorithm
from repro.utils.logging import get_logger
from repro.utils.rng import check_random_state

logger = get_logger(__name__)

__all__ = ["CBOWModel", "build_cbow_examples"]


def build_cbow_examples(
    documents: list[np.ndarray], window_size: int, pad_id: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Construct CBOW training examples from id-encoded documents.

    Returns
    -------
    contexts:
        ``(N, 2 * window_size)`` int64 array of context ids, padded with
        ``pad_id`` where the window extends past the document boundary.
    context_sizes:
        ``(N,)`` number of real (non-pad) context words per example.
    targets:
        ``(N,)`` target word ids.
    """
    ctx_rows: list[np.ndarray] = []
    size_rows: list[np.ndarray] = []
    tgt_rows: list[np.ndarray] = []
    width = 2 * window_size

    for doc in documents:
        doc = np.asarray(doc, dtype=np.int64)
        length = len(doc)
        if length < 2:
            continue
        padded = np.concatenate(
            [np.full(window_size, pad_id), doc, np.full(window_size, pad_id)]
        )
        # For target position t (0-based in doc), the context window covers
        # padded[t : t + 2w + 1] minus the centre element.
        windows = np.lib.stride_tricks.sliding_window_view(padded, width + 1)
        contexts = np.concatenate(
            [windows[:, :window_size], windows[:, window_size + 1 :]], axis=1
        )
        ctx_rows.append(contexts)
        size_rows.append((contexts != pad_id).sum(axis=1))
        tgt_rows.append(doc)

    if not ctx_rows:
        empty = np.empty((0, width), dtype=np.int64)
        return empty, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    contexts = np.concatenate(ctx_rows, axis=0)
    sizes = np.concatenate(size_rows, axis=0)
    targets = np.concatenate(tgt_rows, axis=0)
    keep = sizes > 0
    return contexts[keep], sizes[keep], targets[keep]


@EMBEDDING_ALGORITHMS.register("cbow")
class CBOWModel(EmbeddingAlgorithm):
    """CBOW with negative sampling.

    Parameters
    ----------
    dim:
        Embedding dimension.
    window_size:
        Symmetric context window.
    negative_samples:
        Number of negative samples per positive example (paper default: 5).
    learning_rate:
        Initial SGD step size, linearly decayed to 10% over training
        (word2vec convention).
    epochs:
        Passes over the corpus.
    subsample_threshold:
        Frequent-word subsampling threshold ``t`` (probability of keeping a
        word with corpus frequency ``f`` is ``min(1, sqrt(t/f) + t/f)``);
        ``None`` disables subsampling.
    batch_size:
        Mini-batch size.
    """

    name = "cbow"

    def __init__(
        self,
        dim: int = 50,
        *,
        window_size: int = 8,
        negative_samples: int = 5,
        learning_rate: float = 0.05,
        epochs: int = 10,
        subsample_threshold: float | None = 1e-3,
        batch_size: int = 1024,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, seed=seed)
        if negative_samples < 1:
            raise ValueError("negative_samples must be >= 1")
        if learning_rate <= 0 or epochs <= 0:
            raise ValueError("learning_rate and epochs must be positive")
        self.window_size = int(window_size)
        self.negative_samples = int(negative_samples)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.subsample_threshold = subsample_threshold
        self.batch_size = int(batch_size)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))

    def _subsample(self, docs: list[np.ndarray], vocab: Vocabulary, rng) -> list[np.ndarray]:
        if self.subsample_threshold is None:
            return docs
        counts = vocab.counts.astype(np.float64)
        total = counts.sum()
        if total == 0:
            return docs
        freq = counts / total
        with np.errstate(divide="ignore", invalid="ignore"):
            keep_prob = np.sqrt(self.subsample_threshold / freq) + self.subsample_threshold / freq
        keep_prob = np.clip(np.nan_to_num(keep_prob, nan=1.0, posinf=1.0), 0.0, 1.0)
        out = []
        for doc in docs:
            if len(doc) == 0:
                out.append(doc)
                continue
            mask = rng.random(len(doc)) < keep_prob[doc]
            out.append(doc[mask])
        return out

    def _negative_table(self, vocab: Vocabulary) -> np.ndarray:
        """Unigram^0.75 sampling distribution over the vocabulary."""
        counts = vocab.counts.astype(np.float64)
        probs = counts**0.75
        total = probs.sum()
        if total == 0:
            return np.full(len(vocab), 1.0 / max(len(vocab), 1))
        return probs / total

    # -- training ------------------------------------------------------------

    def fit(self, corpus: Corpus, *, vocab: Vocabulary | None = None) -> Embedding:
        vocab = self._resolve_vocab(corpus, vocab)
        rng = check_random_state(self.seed)
        docs = corpus.encode_documents(vocab)
        docs = self._subsample(docs, vocab, rng)
        vectors = self._train(docs, vocab, rng)
        return Embedding(vocab=vocab, vectors=vectors, metadata=self._metadata(corpus))

    def _train(
        self, docs: list[np.ndarray], vocab: Vocabulary, rng: np.random.Generator
    ) -> np.ndarray:
        n_words = len(vocab)
        pad_id = n_words  # one extra all-zero row used for padding
        contexts, sizes, targets = build_cbow_examples(docs, self.window_size, pad_id)
        n_examples = len(targets)

        # Input (context) vectors W_in with an extra frozen pad row; output
        # vectors W_out start at zero as in word2vec.
        W_in = (rng.random((n_words + 1, self.dim)) - 0.5) / self.dim
        W_in[pad_id] = 0.0
        W_out = np.zeros((n_words, self.dim))

        if n_examples == 0:
            logger.warning("CBOW received no training examples; returning init")
            return W_in[:n_words]

        neg_probs = self._negative_table(vocab)
        total_steps = self.epochs * int(np.ceil(n_examples / self.batch_size))
        step = 0

        for _epoch in range(self.epochs):
            order = rng.permutation(n_examples)
            for start in range(0, n_examples, self.batch_size):
                lr = self.learning_rate * max(1e-1, 1.0 - step / max(total_steps, 1))
                step += 1
                batch = order[start : start + self.batch_size]
                ctx = contexts[batch]                       # (B, 2w)
                size = sizes[batch].astype(np.float64)      # (B,)
                tgt = targets[batch]                        # (B,)
                B = len(batch)

                # Mean of context vectors (pad rows are zero so the sum is fine).
                hidden = W_in[ctx].sum(axis=1) / size[:, None]   # (B, d)

                # One positive target plus `negative_samples` negatives.
                negs = rng.choice(n_words, size=(B, self.negative_samples), p=neg_probs)
                samples = np.concatenate([tgt[:, None], negs], axis=1)   # (B, 1+k)
                labels = np.zeros((B, 1 + self.negative_samples))
                labels[:, 0] = 1.0

                out_vecs = W_out[samples]                   # (B, 1+k, d)
                scores = np.einsum("bkd,bd->bk", out_vecs, hidden)
                probs = self._sigmoid(scores)
                delta = probs - labels                      # (B, 1+k)

                grad_hidden = np.einsum("bk,bkd->bd", delta, out_vecs)
                grad_out = delta[:, :, None] * hidden[:, None, :]

                np.add.at(W_out, samples.ravel(), (-lr * grad_out).reshape(-1, self.dim))
                # Each context word receives grad_hidden / context_size.
                ctx_grad = (-lr) * grad_hidden / size[:, None]
                expanded = np.repeat(ctx_grad, ctx.shape[1], axis=0)
                np.add.at(W_in, ctx.ravel(), expanded)
                W_in[pad_id] = 0.0

        return W_in[:n_words]
