"""Tests shared across the embedding training algorithms (CBOW, GloVe, MC, SVD, fastText)."""

import numpy as np
import pytest

from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.fasttext import SubwordEmbeddingModel, character_ngrams, hash_ngram
from repro.embeddings.glove import GloVeModel
from repro.embeddings.matrix_completion import MatrixCompletionModel
from repro.embeddings.svd import PPMISVDModel
from repro.embeddings.word2vec import CBOWModel, build_cbow_examples

FAST_KWARGS = {
    "svd": {},
    "mc": {"epochs": 4},
    "glove": {"epochs": 4},
    "cbow": {"epochs": 2},
    "fasttext": {"epochs": 2, "num_buckets": 100},
}

ALGORITHMS = {
    "svd": PPMISVDModel,
    "mc": MatrixCompletionModel,
    "glove": GloVeModel,
    "cbow": CBOWModel,
    "fasttext": SubwordEmbeddingModel,
}


@pytest.fixture(scope="module")
def two_group_corpus():
    """Words 0-9 and 10-19 co-occur only within their group (trivially separable)."""
    rng = np.random.default_rng(0)
    word_list = [f"w{i}" for i in range(20)]
    docs, topics = [], []
    for i in range(200):
        group = i % 2
        docs.append(rng.integers(10 * group, 10 * (group + 1), size=15).astype(np.int64))
        topics.append(group)
    return Corpus(word_list=word_list, documents=docs, document_topics=np.array(topics))


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestCommonBehaviour:
    def _fit(self, name, corpus, vocab, dim=8, seed=0):
        model = ALGORITHMS[name](dim=dim, seed=seed, **FAST_KWARGS[name])
        return model.fit(corpus, vocab=vocab)

    def test_output_shape_and_finite(self, name, corpus, vocab):
        emb = self._fit(name, corpus, vocab)
        assert emb.vectors.shape == (len(vocab), 8)
        assert np.all(np.isfinite(emb.vectors))

    def test_metadata_populated(self, name, corpus, vocab):
        emb = self._fit(name, corpus, vocab)
        assert emb.metadata["algorithm"] == name
        assert emb.metadata["dim"] == 8
        assert emb.metadata["precision"] == 32

    def test_same_seed_is_deterministic(self, name, corpus, vocab):
        emb1 = self._fit(name, corpus, vocab, seed=3)
        emb2 = self._fit(name, corpus, vocab, seed=3)
        np.testing.assert_allclose(emb1.vectors, emb2.vectors)

    def test_invalid_dim_raises(self, name, corpus, vocab):
        with pytest.raises(ValueError):
            ALGORITHMS[name](dim=0)

    def test_learns_group_structure(self, name, two_group_corpus):
        """Within-group cosine similarity should exceed across-group similarity."""
        vocab = two_group_corpus.build_vocabulary()
        emb = self._fit(name, two_group_corpus, vocab)
        normed = emb.normalized_vectors()
        sims = normed @ normed.T
        group0 = [vocab[w] for w in two_group_corpus.word_list[:10] if w in vocab]
        group1 = [vocab[w] for w in two_group_corpus.word_list[10:] if w in vocab]
        within = 0.5 * (
            np.mean(sims[np.ix_(group0, group0)]) + np.mean(sims[np.ix_(group1, group1)])
        )
        across = np.mean(sims[np.ix_(group0, group1)])
        assert within > across


class TestCBOWExamples:
    def test_window_and_padding(self):
        contexts, sizes, targets = build_cbow_examples([np.array([1, 2, 3])], 2, pad_id=99)
        assert contexts.shape == (3, 4)
        np.testing.assert_array_equal(targets, [1, 2, 3])
        # The first position has only right-context words; pads fill the rest.
        assert sizes[0] == 2 and sizes[1] == 2 and sizes[2] == 2
        assert (contexts[0] == 99).sum() == 2

    def test_short_documents_skipped(self):
        contexts, sizes, targets = build_cbow_examples([np.array([5])], 2, pad_id=9)
        assert len(targets) == 0

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            CBOWModel(dim=8, negative_samples=0)
        with pytest.raises(ValueError):
            CBOWModel(dim=8, learning_rate=-1)


class TestSubwordSpecifics:
    def test_character_ngrams_have_boundaries(self):
        grams = character_ngrams("cat", 3, 4)
        assert "<ca" in grams and "at>" in grams and "<cat" in grams

    def test_hash_is_stable_and_bounded(self):
        assert hash_ngram("abc", 50) == hash_ngram("abc", 50)
        assert 0 <= hash_ngram("abc", 50) < 50

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            SubwordEmbeddingModel(dim=4, num_buckets=0)


class TestGloVeSpecifics:
    def test_combine_word_only(self, corpus, vocab):
        emb = GloVeModel(dim=4, epochs=2, combine="word", seed=0).fit(corpus, vocab=vocab)
        assert emb.vectors.shape == (len(vocab), 4)

    def test_invalid_combine(self):
        with pytest.raises(ValueError):
            GloVeModel(dim=4, combine="bad")


class TestMCSpecifics:
    def test_fit_from_entries_handles_empty(self):
        model = MatrixCompletionModel(dim=4, epochs=2)
        X = model.fit_from_entries(
            rows=np.array([]), cols=np.array([]), values=np.array([]), n_words=5
        )
        assert X.shape == (5, 4)

    def test_mismatched_entries_raise(self):
        model = MatrixCompletionModel(dim=4)
        with pytest.raises(ValueError):
            model.fit_from_entries(
                rows=np.array([0]), cols=np.array([0, 1]), values=np.array([1.0]), n_words=3
            )


class TestSVDSpecifics:
    def test_dim_larger_than_vocab_is_padded(self):
        word_list = ["a", "b", "c", "d"]
        docs = [np.array([0, 1, 2, 3, 0, 1])]
        corpus = Corpus(word_list=word_list, documents=docs, document_topics=np.array([0]))
        vocab = corpus.build_vocabulary()
        emb = PPMISVDModel(dim=10).fit(corpus, vocab=vocab)
        assert emb.vectors.shape == (4, 10)
