"""Knowledge-graph embedding stability (Section 6.1 / Figure 3).

Trains TransE on a synthetic FB15K-like knowledge graph and on a 95% subsample
of its training triplets, then measures how link-prediction ranks and triplet
classification predictions change across dimensions and precisions.

Run with: ``python examples/knowledge_graph_stability.py``
"""

from repro.experiments import fig3_kge
from repro.experiments.fig3_kge import KGEExperimentConfig
from repro.kge import SyntheticKGConfig, generate_knowledge_graph
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()

    # Peek at the graph the experiment uses.
    graph_config = SyntheticKGConfig(n_entities=200, n_relations=10, n_triplets=2500)
    kg = generate_knowledge_graph(graph_config)
    print(f"knowledge graph: {kg.n_entities} entities, {kg.n_relations} relations, "
          f"{kg.n_train} train / {len(kg.valid)} valid / {len(kg.test)} test triplets")
    kg95 = kg.subsample_train(0.95)
    print(f"FB15K-95 analogue keeps {kg95.n_train} training triplets")
    print()

    config = KGEExperimentConfig(
        graph=graph_config,
        dimensions=(4, 8, 16),
        precisions=(1, 4, 32),
        epochs=40,
    )
    result = fig3_kge.run(config)
    print(result.to_table())
    print()
    print("summary:", result.summary)


if __name__ == "__main__":
    main()
