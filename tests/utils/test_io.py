"""Tests for I/O helpers."""

from dataclasses import dataclass

import numpy as np

from repro.utils.io import ensure_dir, load_arrays, load_json, save_arrays, save_json, to_jsonable


class TestToJsonable:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True

    def test_arrays_become_lists(self):
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_nested_structures(self):
        data = {"a": [np.float32(1.5), {"b": np.arange(2)}]}
        assert to_jsonable(data) == {"a": [1.5, {"b": [0, 1]}]}

    def test_dataclass(self):
        @dataclass
        class Point:
            x: int
            y: float

        assert to_jsonable(Point(1, 2.0)) == {"x": 1, "y": 2.0}


class TestJsonRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "sub" / "data.json"
        save_json({"value": np.float64(1.25), "items": [1, 2]}, path)
        assert load_json(path) == {"items": [1, 2], "value": 1.25}


class TestArrayRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "arrays.npz"
        save_arrays(path, a=np.arange(4), b=np.eye(2))
        loaded = load_arrays(path)
        np.testing.assert_array_equal(loaded["a"], np.arange(4))
        np.testing.assert_array_equal(loaded["b"], np.eye(2))


class TestEnsureDir:
    def test_creates_nested(self, tmp_path):
        target = tmp_path / "x" / "y"
        assert ensure_dir(target).is_dir()
        # Idempotent.
        assert ensure_dir(target).is_dir()
