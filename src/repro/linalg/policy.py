"""Kernel selection and precision policy of the numerical-kernel layer.

A :class:`KernelPolicy` decides, for every decomposition the measures and the
pipeline take, (a) whether to use the exact LAPACK path or the randomized
range-finder (:mod:`repro.linalg.svd`) and (b) which floating-point precision
to compute in.  The policy is threaded from the experiment runner's
``--kernel-policy`` / ``--dtype`` flags through
:class:`~repro.instability.pipeline.PipelineConfig` into the
:class:`~repro.measures.base.DecompositionCache`, the measure batch and the
anchor factorization, so one flag flips the whole stack.

The default policy is ``exact`` / ``float64``: every result is bit-identical
to the seed repository until a caller opts in -- either by selecting a policy
(config field, CLI flag, process default) or by handing the measures matrices
that are already float32, which the validation layer deliberately preserves.  ``auto`` (opt-in) picks the
randomized path only where it provably pays: when a truncated rank is
requested that is small relative to the matrix (at most
``auto_max_rank_fraction`` of the short side) and the matrix is large enough
(short side at least ``auto_min_side``) for the constant factors to matter.
Full-rank thin decompositions -- the shape every measure SVD has -- stay on
the exact LAPACK path even under ``auto``, which is already optimal there.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "KernelPolicy",
    "configure_default_policy",
    "default_policy",
    "SVD_METHODS",
    "KERNEL_DTYPES",
]

#: Valid values of ``KernelPolicy.svd``.
SVD_METHODS = ("exact", "randomized", "auto")
#: Valid values of ``KernelPolicy.dtype``.
KERNEL_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class KernelPolicy:
    """How the linalg layer computes decompositions and at which precision.

    Attributes
    ----------
    svd:
        ``"exact"`` (LAPACK, the default), ``"randomized"`` (Halko range
        finder, seeded and deterministic) or ``"auto"`` (randomized only for
        truncated ranks on large matrices, see :meth:`resolve_method`).
    dtype:
        ``"float64"`` (bit-identical to the seed repository) or ``"float32"``
        (roughly halves SVD and GEMM time at a documented accuracy cost; see
        ``tests/measures/test_precision_policy.py`` for the pinned tolerances).
    n_oversamples, n_power_iter:
        Randomized-SVD accuracy knobs (Halko et al., 2011 defaults).
    seed:
        Seed of the randomized range finder's test matrix; the decomposition
        is a deterministic function of ``(matrix, rank, knobs, seed)``.
    auto_min_side, auto_max_rank_fraction:
        Thresholds of the ``auto`` method choice.
    """

    svd: str = "exact"
    dtype: str = "float64"
    n_oversamples: int = 10
    n_power_iter: int = 2
    seed: int = 0
    auto_min_side: int = 512
    auto_max_rank_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.svd not in SVD_METHODS:
            raise ValueError(f"svd must be one of {SVD_METHODS}, got {self.svd!r}")
        if self.dtype not in KERNEL_DTYPES:
            raise ValueError(f"dtype must be one of {KERNEL_DTYPES}, got {self.dtype!r}")
        if self.n_oversamples < 0 or self.n_power_iter < 0:
            raise ValueError("n_oversamples and n_power_iter must be non-negative")

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.dtype == "float32" else np.float64)

    def cast(self, X: np.ndarray) -> np.ndarray:
        """``X`` in this policy's dtype (no copy when it already matches)."""
        X = np.asarray(X)
        return X if X.dtype == self.np_dtype else X.astype(self.np_dtype)

    def resolve_method(self, shape: tuple[int, ...], rank: int | None = None) -> str:
        """The concrete method (``"exact"``/``"randomized"``) for one matrix.

        The randomized kernel only ever applies to *truncated* decompositions:
        with ``rank=None`` (full-rank thin SVD) a randomized factorization is
        strictly slower and less accurate than LAPACK, so every policy
        resolves it to exact.  ``svd="randomized"`` forces the randomized
        kernel for any truncated rank; ``auto`` additionally requires the rank
        to be at most ``auto_max_rank_fraction`` of the short side and the
        short side to be at least ``auto_min_side``.
        """
        if rank is None or self.svd == "exact":
            return "exact"
        if self.svd == "randomized":
            return "randomized"
        short_side = min(shape)
        if short_side < self.auto_min_side:
            return "exact"
        return "randomized" if rank <= self.auto_max_rank_fraction * short_side else "exact"

    def with_overrides(self, **overrides) -> "KernelPolicy":
        """A copy with ``None``-valued overrides dropped."""
        kept = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **kept) if kept else self

    def key_fields(self) -> dict:
        """The policy fields that can change a decomposition's *values*.

        Used inside artifact-store keys: under ``exact`` only the method name
        matters, while ``randomized``/``auto`` results also depend on the
        range-finder knobs (and, for ``auto``, on the dispatch thresholds) --
        so changing any of those can never serve stale cached artifacts.
        """
        if self.svd == "exact":
            return {"svd": "exact"}
        fields = {
            "svd": self.svd,
            "n_oversamples": self.n_oversamples,
            "n_power_iter": self.n_power_iter,
            "seed": self.seed,
        }
        if self.svd == "auto":
            fields.update(
                auto_min_side=self.auto_min_side,
                auto_max_rank_fraction=self.auto_max_rank_fraction,
            )
        return fields


# -- process-wide default policy ------------------------------------------------
#
# Mirrors ``repro.engine.store.configure_default_store``: the experiment
# runner's ``--kernel-policy`` / ``--dtype`` flags configure the default once,
# and every pipeline constructed without explicit policy fields picks it up.
# The grid scheduler ships the parent's default to worker processes so spawned
# workers resolve policies identically.

_DEFAULT_POLICY = KernelPolicy()


def configure_default_policy(
    policy: KernelPolicy | None = None, **overrides
) -> KernelPolicy:
    """Set the process-wide default kernel policy.

    Pass a full :class:`KernelPolicy`, keyword overrides of the current
    default (``None`` values are ignored, so CLI flags can be forwarded
    directly), or nothing to reset to the built-in default.
    """
    global _DEFAULT_POLICY
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if policy is None and not overrides:
        _DEFAULT_POLICY = KernelPolicy()
    else:
        base = policy if policy is not None else _DEFAULT_POLICY
        _DEFAULT_POLICY = replace(base, **overrides) if overrides else base
    return _DEFAULT_POLICY


def default_policy() -> KernelPolicy:
    """The process-wide default kernel policy."""
    return _DEFAULT_POLICY
