"""Fault injection for storage backends: :class:`FaultyBackend`.

Replication is only trustworthy if it is exercised against the failures it
claims to survive.  ``FaultyBackend`` wraps any
:class:`~repro.engine.backends.StoreBackend` and injects faults on the way
through:

* **scripted errors** -- :meth:`fail_next` makes the next N matching
  operations fail deterministically (the workhorse for unit tests);
* **probabilistic errors** -- ``error_rate`` fails a seeded-random fraction
  of operations (soak/chaos style);
* **latency** -- ``latency`` sleeps before every operation (slow-disk /
  slow-network emulation; ``sleep`` is injectable so tests stay instant);
* **corruption** -- :meth:`corrupt_next` / ``corrupt_rate`` bit-flip the
  payload returned by ``get``, emulating a torn write or rotted disk block;
* **partition** -- :meth:`partition` makes the backend unreachable (every
  operation fails and :attr:`available` reports ``False``, like a remote
  peer with an open circuit breaker) until :meth:`heal`.

Failure semantics mirror the real degraded backends: a failed ``get``
answers ``None`` and counts an error, a failed ``put`` drops the write and
counts an error, a failed ``contains`` answers ``False`` -- faults never
raise into the caller, because the production backends never do either.

Every operation is appended to :attr:`log` as ``(time, op, kind, name,
outcome)`` with the injectable ``clock`` (monotonic by default), so chaos
tests can assert *when* faults fired relative to the run timeline.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque

from repro.engine.backends import StoreBackend
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["FaultyBackend"]

#: Operations a scripted failure can target; ``*`` matches any of them.
_OPS = ("get", "put", "contains", "delete", "*")


class FaultyBackend(StoreBackend):
    """Wrap a backend and inject scripted or probabilistic faults."""

    def __init__(
        self,
        inner: StoreBackend,
        *,
        error_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        latency: float = 0.0,
        rng: random.Random | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.name = f"faulty({inner.name})"
        self.persistent = inner.persistent
        self.remote_capable = inner.remote_capable
        self.error_rate = float(error_rate)
        self.corrupt_rate = float(corrupt_rate)
        self.latency = float(latency)
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._partitioned = False
        self._scripted_failures: deque[str] = deque()
        self._scripted_corruptions = 0
        self.log: list[tuple[float, str, str, str, str]] = []

    # -- fault scripting -------------------------------------------------------

    def fail_next(self, op: str = "*", times: int = 1) -> None:
        """Fail the next ``times`` operations matching ``op`` (or any, ``*``)."""
        if op not in _OPS:
            raise ValueError(f"unknown op {op!r}; expected one of {_OPS}")
        with self._lock:
            self._scripted_failures.extend([op] * times)

    def corrupt_next(self, times: int = 1) -> None:
        """Bit-flip the payload of the next ``times`` successful ``get``\\ s."""
        with self._lock:
            self._scripted_corruptions += times

    def partition(self) -> None:
        """Cut the backend off: every operation fails until :meth:`heal`."""
        with self._lock:
            self._partitioned = True
        logger.info("fault injection: %s partitioned", self.name)

    def heal(self) -> None:
        """End a partition; operations flow through to the inner backend again."""
        with self._lock:
            self._partitioned = False
        logger.info("fault injection: %s healed", self.name)

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    @property
    def available(self) -> bool:
        return not self.partitioned and self.inner.available

    # -- fault evaluation ------------------------------------------------------

    def _inject(self, op: str, kind: str, name: str) -> bool:
        """Decide one operation's fate; ``True`` means it must fail."""
        if self.latency > 0:
            self._sleep(self.latency)
        with self._lock:
            if self._partitioned:
                outcome = "partitioned"
            else:
                outcome = "ok"
                for index, target in enumerate(self._scripted_failures):
                    if target == op or target == "*":
                        del self._scripted_failures[index]
                        outcome = "error"
                        break
                if outcome == "ok" and self.error_rate > 0:
                    if self._rng.random() < self.error_rate:
                        outcome = "error"
            self.log.append((self._clock(), op, kind, name, outcome))
        return outcome != "ok"

    def _maybe_corrupt(self, kind: str, name: str, payload: bytes) -> bytes:
        with self._lock:
            corrupt = self._scripted_corruptions > 0
            if corrupt:
                self._scripted_corruptions -= 1
            elif self.corrupt_rate > 0 and self._rng.random() < self.corrupt_rate:
                corrupt = True
        if not corrupt:
            return payload
        with self._lock:
            self.log.append((self._clock(), "corrupt", kind, name, "injected"))
        # Invert the leading bytes: garbles a JSON document and destroys a
        # zip local-file header, so payload validation is guaranteed to trip.
        prefix = bytes(byte ^ 0xFF for byte in payload[:64])
        return prefix + payload[64:]

    # -- raw operations --------------------------------------------------------

    def _get(self, kind: str, name: str) -> bytes | None:
        if self._inject("get", kind, name):
            self.stats.errors += 1
            return None
        payload = self.inner.get(kind, name)
        if payload is None:
            return None
        return self._maybe_corrupt(kind, name, payload)

    def _put(self, kind: str, name: str, payload: bytes) -> None:
        if self._inject("put", kind, name):
            self.stats.errors += 1
            return
        self.inner.put(kind, name, payload)

    def _contains(self, kind: str, name: str) -> bool:
        if self._inject("contains", kind, name):
            self.stats.errors += 1
            return False
        return self.inner.contains(kind, name)

    def _delete(self, kind: str, name: str) -> None:
        if self._inject("delete", kind, name):
            self.stats.errors += 1
            return
        self.inner.delete(kind, name)

    # -- observability ---------------------------------------------------------

    def spec(self) -> dict | None:
        # A fault layer is a test harness; it is never rebuilt in another
        # process, so the spec degrades to "not reconstructable".
        return None

    def describe(self) -> dict:
        return {
            **super().describe(),
            "partitioned": self.partitioned,
            "error_rate": self.error_rate,
            "corrupt_rate": self.corrupt_rate,
            "latency": self.latency,
            "inner": self.inner.describe(),
        }
