"""CorpusIngestor: growing vocabulary, exact co-occurrence deltas, snapshots."""

import numpy as np
import pytest

from repro.corpus.cooccurrence import build_cooccurrence
from repro.corpus.snapshots import snapshot_key
from repro.monitor.ingest import CorpusIngestor

BATCH_1 = [["the", "cat", "sat"], ["the", "dog", "sat", "down"]]
BATCH_2 = [["a", "cat", "and", "a", "dog"], ["the", "the", "the"]]


class TestAddBatch:
    def test_stats_accumulate(self):
        ingestor = CorpusIngestor(window_size=2)
        first = ingestor.add_batch(BATCH_1)
        assert first["batch_documents"] == 2
        assert first["batch_tokens"] == 7
        second = ingestor.add_batch(BATCH_2)
        assert second["documents"] == 4
        assert second["batches"] == 2
        assert second["vocab_size"] == len({"the", "cat", "sat", "dog", "down", "a", "and"})

    def test_rejects_empty(self):
        ingestor = CorpusIngestor()
        with pytest.raises(ValueError):
            ingestor.add_batch([])
        with pytest.raises(ValueError):
            ingestor.add_batch([["ok"], []])

    def test_empty_ingestor_has_no_snapshot(self):
        ingestor = CorpusIngestor()
        with pytest.raises(ValueError):
            ingestor.snapshot_corpus()
        with pytest.raises(ValueError):
            ingestor.cooccurrence()


class TestBitIdentity:
    def test_accumulated_cooccurrence_equals_from_scratch(self):
        # The accumulator's matrix -- built across batches, through vocabulary
        # growth and id remaps -- must be bit-identical to building from
        # scratch over the snapshot's final encoding.
        ingestor = CorpusIngestor(window_size=3)
        ingestor.add_batch(BATCH_1)
        ingestor.add_batch(BATCH_2)
        corpus = ingestor.snapshot_corpus()
        expected = build_cooccurrence(
            corpus.documents, len(corpus.word_list), window_size=3
        )
        actual = ingestor.cooccurrence()
        np.testing.assert_array_equal(actual.indptr, expected.indptr)
        np.testing.assert_array_equal(actual.indices, expected.indices)
        assert actual.data.tobytes() == expected.data.tobytes()

    def test_batched_equals_single_batch(self):
        split = CorpusIngestor(window_size=2)
        split.add_batch(BATCH_1)
        split.add_batch(BATCH_2)
        whole = CorpusIngestor(window_size=2)
        whole.add_batch(BATCH_1 + BATCH_2)
        a, b = split.cooccurrence(), whole.cooccurrence()
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        assert a.data.tobytes() == b.data.tobytes()


class TestSnapshots:
    def test_snapshot_key_stable_when_unchanged(self):
        ingestor = CorpusIngestor()
        ingestor.add_batch(BATCH_1)
        assert snapshot_key(ingestor.snapshot_corpus()) == snapshot_key(
            ingestor.snapshot_corpus()
        )

    def test_snapshot_key_changes_with_content(self):
        ingestor = CorpusIngestor()
        ingestor.add_batch(BATCH_1)
        before = snapshot_key(ingestor.snapshot_corpus())
        ingestor.add_batch(BATCH_2)
        assert snapshot_key(ingestor.snapshot_corpus()) != before

    def test_snapshot_encodes_all_documents_in_final_vocab(self):
        ingestor = CorpusIngestor()
        ingestor.add_batch(BATCH_1)
        ingestor.add_batch(BATCH_2)
        corpus = ingestor.snapshot_corpus()
        assert len(corpus.documents) == 4
        decoded = [[corpus.word_list[i] for i in doc] for doc in corpus.documents]
        assert decoded == BATCH_1 + BATCH_2
