"""Figure 9: downstream disagreement vs each embedding distance measure (NER)."""

from repro.analysis.correlation import measure_correlations


def test_fig9_measure_scatter(benchmark, grid_records):
    ner_records = [r for r in grid_records if r.task == "conll"]

    def build():
        rows = [
            {
                "algorithm": r.algorithm,
                "dim": r.dim,
                "precision": r.precision,
                "disagreement_pct": r.disagreement,
                **{f"measure_{k}": v for k, v in r.measures.items()},
            }
            for r in ner_records
        ]
        return rows, measure_correlations(ner_records)

    rows, correlations = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    for (task, algorithm, measure), rho in sorted(correlations.items()):
        print(f"  {task} {algorithm} {measure}: rho={rho:.3f}")
    assert len(rows) == len(ner_records)
    assert correlations, "expected at least one correlation series"
