"""Proposition 1 (Appendix B): Monte-Carlo verification of the EIS theory.

Proposition 1 states that for full-rank embeddings ``X`` and ``X~`` and a
random label vector ``y`` with covariance ``Sigma``, the normalised expected
squared difference between the linear-regression predictions of the two
models equals ``EI_Sigma(X, X~)``.  This experiment draws many label vectors,
trains the two closed-form linear regressions, and compares the empirical
ratio against both the exact and the efficient EIS implementations.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.measures.eigenspace_instability import (
    eigenspace_instability,
    eigenspace_instability_exact,
    sigma_from_anchors,
)
from repro.utils.rng import check_random_state

__all__ = ["run", "monte_carlo_disagreement"]


def monte_carlo_disagreement(
    X: np.ndarray, X_tilde: np.ndarray, sigma: np.ndarray, *, n_samples: int, seed: int = 0
) -> float:
    """Empirical E[sum_i (f(x_i) - f~(x~_i))^2] / E[||y||^2] over sampled labels."""
    rng = check_random_state(seed)
    n = X.shape[0]
    # Sample y ~ N(0, Sigma) via the (symmetrised) Cholesky-like square root.
    evals, evecs = np.linalg.eigh((sigma + sigma.T) / 2.0)
    evals = np.clip(evals, 0.0, None)
    sqrt_sigma = evecs * np.sqrt(evals)[np.newaxis, :]

    proj_x = X @ np.linalg.pinv(X)
    proj_xt = X_tilde @ np.linalg.pinv(X_tilde)

    total_diff = 0.0
    total_norm = 0.0
    for _ in range(n_samples):
        y = sqrt_sigma @ rng.standard_normal(n)
        diff = proj_x @ y - proj_xt @ y
        total_diff += float(diff @ diff)
        total_norm += float(y @ y)
    return total_diff / total_norm


def run(
    *,
    n_words: int = 60,
    dims: tuple[int, int] = (8, 12),
    anchor_dim: int = 20,
    alpha: float = 2.0,
    n_samples: int = 2000,
    seed: int = 0,
) -> ExperimentResult:
    """Verify Proposition 1 numerically on random embedding matrices."""
    rng = check_random_state(seed)
    X = rng.standard_normal((n_words, dims[0]))
    X_tilde = rng.standard_normal((n_words, dims[1]))
    E = rng.standard_normal((n_words, anchor_dim))
    E_tilde = E + 0.3 * rng.standard_normal((n_words, anchor_dim))

    sigma = sigma_from_anchors(E, E_tilde, alpha=alpha)
    exact = eigenspace_instability_exact(X, X_tilde, sigma)
    efficient = eigenspace_instability(X, X_tilde, E, E_tilde, alpha=alpha)
    empirical = monte_carlo_disagreement(X, X_tilde, sigma, n_samples=n_samples, seed=seed + 1)

    rows = [
        {"quantity": "eis_exact_definition", "value": exact},
        {"quantity": "eis_efficient_formula", "value": efficient},
        {"quantity": "monte_carlo_disagreement", "value": empirical},
    ]
    summary = {
        "exact_vs_efficient_abs_diff": abs(exact - efficient),
        "exact_vs_monte_carlo_rel_diff": abs(exact - empirical) / max(exact, 1e-12),
        "proposition_holds_within_5pct": bool(
            abs(exact - empirical) / max(exact, 1e-12) < 0.05
        ),
    }
    return ExperimentResult(name="proposition-1-verification", rows=rows, summary=summary)
