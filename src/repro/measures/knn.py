"""The k-nearest-neighbour embedding distance measure.

Used in prior intrinsic-stability work (Hellrich & Hahn, 2016; Antoniak &
Mimno, 2018; Wendlandt et al., 2018): sample ``Q`` query words, compare the
sets of ``k`` most-cosine-similar words in the two embeddings, and average the
overlap fraction.  We expose the *distance* form ``1 - overlap`` so that
larger values mean more instability, as in the "1 - k-NN" rows of the paper's
tables.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import cosine_top_k, row_set_overlap
from repro.measures.base import MEASURES, EmbeddingDistanceMeasure
from repro.utils.rng import check_random_state
from repro.utils.validation import check_embedding_pair

__all__ = ["knn_overlap", "KNNDistance"]


def _top_k_neighbors(X: np.ndarray, queries: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` nearest rows (cosine) to each query row, excluding itself.

    Delegates to the blocked GEMM kernel, which never materialises more than a
    ``(block, n)`` similarity slice; exact ordering inside the top-k does not
    matter because the measure only uses set overlap.
    """
    return cosine_top_k(X, queries, min(k, X.shape[0] - 1))


def knn_overlap(
    X: np.ndarray,
    X_tilde: np.ndarray,
    *,
    k: int = 5,
    num_queries: int = 1000,
    seed: int = 0,
) -> float:
    """Average fraction of shared ``k``-nearest neighbours over sampled queries.

    Parameters
    ----------
    X, X_tilde:
        Row-aligned embedding matrices (dimensions may differ).
    k:
        Neighbourhood size (the paper selects ``k = 5`` by validation).
    num_queries:
        Number of randomly sampled query words ``Q`` (paper: 1000); capped at
        the vocabulary size.
    seed:
        Seed of the query sample.

    Returns
    -------
    float in [0, 1]; 1 means identical neighbourhoods.
    """
    X, X_tilde = check_embedding_pair(X, X_tilde)
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least two words to compute k-NN overlap")
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = check_random_state(seed)
    q = min(int(num_queries), n)
    queries = rng.choice(n, size=q, replace=False)

    top_a = _top_k_neighbors(X, queries, k)
    top_b = _top_k_neighbors(X_tilde, queries, k)
    k_eff = top_a.shape[1]

    # Vectorised row-wise set intersection (one searchsorted for all queries)
    # replaces the former per-row np.intersect1d loop; equivalence is pinned
    # in tests/measures/test_other_measures.py.
    overlaps = row_set_overlap(top_a, top_b)
    return float(np.mean(overlaps, dtype=np.float64) / k_eff)


@MEASURES.register("1-knn")
class KNNDistance(EmbeddingDistanceMeasure):
    """``1 - (k-NN overlap)``: larger means less stable neighbourhoods."""

    name = "1-knn"

    def __init__(self, *, k: int = 5, num_queries: int = 1000, seed: int = 0) -> None:
        self.k = int(k)
        self.num_queries = int(num_queries)
        self.seed = int(seed)

    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        overlap = knn_overlap(
            X, X_tilde, k=self.k, num_queries=self.num_queries, seed=self.seed
        )
        return 1.0 - overlap
