"""Stability queries as a service: measure, select, and stream a grid online.

The offline path (see ``select_dimension_precision.py``) sweeps a batch grid
and analyses it afterwards.  This example drives the same machinery through
the serving layer instead -- the way a production embedding platform would
ask the questions:

1. boot a warm :class:`~repro.serving.service.StabilityService` (one corpus
   generation, one vocabulary; everything else computes lazily per query);
2. ask for the stability measures of one cell, twice -- the repeat is pure
   cache (zero new trainings, visible in the metrics);
3. ask which dimension/precision to ship under a memory budget;
4. stream a small grid, acting on each record the moment its cell finishes;
5. read the service's counters (the same payload ``GET /metrics`` serves).

Run with: ``python examples/stability_service.py``

The HTTP equivalent (same service behind ``repro-serve``)::

    repro-serve --quick --port 8732 &
    curl 'localhost:8732/measure?algorithm=svd&dim=16&precision=4'
    curl 'localhost:8732/select?budget=128'
    curl -N 'localhost:8732/grid?dims=8,16&precisions=1,32'
"""

import time
import warnings

from repro.corpus import SyntheticCorpusConfig
from repro.instability.pipeline import PipelineConfig
from repro.serving import ServiceConfig, StabilityService
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()
    warnings.simplefilter("ignore", UserWarning)   # tiny vocab trips top-k notice

    config = PipelineConfig(
        corpus=SyntheticCorpusConfig(vocab_size=200, n_documents=150,
                                     doc_length_mean=50, seed=0),
        algorithms=("svd",),
        dimensions=(8, 16),
        precisions=(1, 4, 32),
        seeds=(0,),
        tasks=("sst2",),
        embedding_epochs=3,
        downstream_epochs=5,
    )

    with StabilityService(config, config=ServiceConfig(max_concurrency=4)) as service:
        # 1. One stability query: trains the pair on first touch.
        start = time.perf_counter()
        cold = service.measure("svd", 16, 4)
        cold_ms = 1e3 * (time.perf_counter() - start)

        # 2. The identical query again: answered from the warm store.
        start = time.perf_counter()
        warm = service.measure("svd", 16, 4)
        warm_ms = 1e3 * (time.perf_counter() - start)
        assert warm["measures"] == cold["measures"]
        print(f"measure svd d=16 b=4: eis={cold['measures']['eis']:.4f} "
              f"(cold {cold_ms:.0f}ms, warm {warm_ms:.1f}ms)")

        # 3. What should we ship under 64 bits/word?
        selection = service.select(64, criterion="eis")
        chosen = selection["selected"]
        print(f"under 64 bits/word ship: dim={chosen['dim']} "
              f"precision={chosen['precision']} "
              f"({chosen['memory_bits_per_word']} bits/word, "
              f"eis={chosen['score']:.4f})")

        # 4. Stream the grid: each record is usable as soon as its cell is done.
        print("streaming grid records as cells complete:")
        for record in service.grid_iter(with_measures=True):
            print(f"  d={record.dim:<3} b={record.precision:<3} "
                  f"disagreement={record.disagreement:.2f}% "
                  f"eis={record.measures['eis']:.4f}")

        # 5. The observability surface /metrics serves.
        metrics = service.metrics()
        print(f"metrics: {metrics['serving']}")
        print(f"trained {metrics['pipeline']['embedding_train_count']} embedding "
              f"pairs, {metrics['pipeline']['downstream_train_count']} downstream "
              f"models for the whole session")


if __name__ == "__main__":
    main()
