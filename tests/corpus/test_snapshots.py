"""Content-addressed corpus snapshots: round-trip, addressing, errors."""

import numpy as np
import pytest

from repro.corpus.snapshots import (
    load_snapshot,
    snapshot_exists,
    snapshot_key,
    store_snapshot,
)
from repro.corpus.synthetic import Corpus
from repro.engine.store import ArtifactStore


def make_corpus(name="c", shift=0):
    return Corpus(
        word_list=["alpha", "beta", "gamma"],
        documents=[
            np.array([0, 1, 2, 1], dtype=np.int64) + 0,
            np.array([(2 + shift) % 3, 0], dtype=np.int64),
        ],
        document_topics=np.array([0, 1], dtype=np.int64),
        name=name,
    )


class TestSnapshotKey:
    def test_deterministic(self):
        assert snapshot_key(make_corpus()) == snapshot_key(make_corpus())

    def test_content_sensitive(self):
        assert snapshot_key(make_corpus()) != snapshot_key(make_corpus(shift=1))
        assert snapshot_key(make_corpus()) != snapshot_key(make_corpus(name="d"))

    def test_key_shape(self):
        key = snapshot_key(make_corpus())
        assert len(key) == 24
        assert all(c in "0123456789abcdef" for c in key)


class TestStoreLoad:
    def test_round_trip(self):
        store = ArtifactStore()
        corpus = make_corpus()
        key = store_snapshot(store, corpus)
        loaded = load_snapshot(store, key)
        assert loaded.word_list == corpus.word_list
        assert loaded.name == corpus.name
        assert len(loaded.documents) == len(corpus.documents)
        for a, b in zip(loaded.documents, corpus.documents):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(loaded.document_topics, corpus.document_topics)
        # The round-tripped corpus re-addresses to the same key.
        assert snapshot_key(loaded) == key

    def test_store_is_idempotent(self):
        store = ArtifactStore()
        corpus = make_corpus()
        assert store_snapshot(store, corpus) == store_snapshot(store, corpus)

    def test_exists(self):
        store = ArtifactStore()
        key = store_snapshot(store, make_corpus())
        assert snapshot_exists(store, key)
        assert not snapshot_exists(store, "0" * 24)

    def test_missing_key_raises(self):
        store = ArtifactStore()
        with pytest.raises(KeyError):
            load_snapshot(store, "0" * 24)

    def test_empty_corpus_round_trips(self):
        store = ArtifactStore()
        corpus = Corpus(
            word_list=["only"], documents=[],
            document_topics=np.zeros(0, dtype=np.int64), name="empty",
        )
        key = store_snapshot(store, corpus)
        loaded = load_snapshot(store, key)
        assert loaded.documents == []
        assert loaded.word_list == ["only"]
