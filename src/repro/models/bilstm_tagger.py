"""Single-layer BiLSTM tagger for NER, with an optional CRF decoding layer.

The paper's NER model (Akbik et al., 2018): fixed word embeddings, a one-layer
BiLSTM, and a per-token linear projection to tag scores.  The CRF is disabled
in the main experiments for computational efficiency and re-enabled in
Appendix E.2; both modes are supported via ``use_crf``.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import Embedding as WordEmbedding
from repro.models.trainer import EarlyStopper, TrainingConfig
from repro.nn import functional as F
from repro.nn.crf import LinearChainCRF
from repro.nn.data import BatchIterator
from repro.nn.layers import Embedding as EmbeddingLayer, Linear, Module
from repro.nn.optim import SGD, Adam
from repro.nn.recurrent import BiLSTM
from repro.nn.tensor import Tensor, no_grad
from repro.tasks.datasets import SequenceTaggingDataset

__all__ = ["BiLSTMTagger"]


class BiLSTMTagger(Module):
    """BiLSTM (+ optional CRF) sequence tagger over fixed embeddings.

    Parameters
    ----------
    embedding:
        Trained embedding (or raw matrix) indexed by the dataset's word ids.
    num_tags:
        Number of output tags.
    hidden_dim:
        Total BiLSTM hidden size (split between directions; paper: 256).
    use_crf:
        Train/decode with a linear-chain CRF instead of per-token softmax.
    config:
        Training configuration (the paper uses plain SGD with annealing).
    """

    def __init__(
        self,
        embedding: WordEmbedding | np.ndarray,
        num_tags: int,
        *,
        hidden_dim: int = 32,
        use_crf: bool = False,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config or TrainingConfig(optimizer="sgd", learning_rate=0.1)
        matrix = embedding.vectors if isinstance(embedding, WordEmbedding) else np.asarray(embedding)
        self.embedding = EmbeddingLayer(matrix, trainable=self.config.fine_tune_embeddings)
        seed = self.config.init_seed
        self.encoder = BiLSTM(self.embedding.dim, hidden_dim, seed=seed)
        self.projection = Linear(hidden_dim, num_tags, seed=seed + 7)
        self.use_crf = bool(use_crf)
        self.crf = LinearChainCRF(num_tags, seed=seed + 13) if use_crf else None
        self.num_tags = int(num_tags)

    # -- forward -------------------------------------------------------------------

    def emissions(self, sentences: np.ndarray) -> Tensor:
        """Tag scores for a batch of equal-length sentences.

        Parameters
        ----------
        sentences:
            ``(batch, seq_len)`` int64 matrix of word ids.

        Returns
        -------
        Tensor of shape ``(batch, seq_len, num_tags)``.
        """
        sentences = np.asarray(sentences, dtype=np.int64)
        tokens = self.embedding(sentences)                  # (batch, seq_len, dim)
        inputs = tokens.transpose(1, 0, 2)                  # (seq_len, batch, dim)
        hidden = self.encoder(inputs)                       # (seq_len, batch, hidden)
        scores = self.projection(hidden)                    # (seq_len, batch, tags)
        return scores.transpose(1, 0, 2)

    # -- training ---------------------------------------------------------------------

    def _batch_loss(self, sentences: np.ndarray, tags: np.ndarray) -> Tensor:
        emissions = self.emissions(sentences)
        if self.use_crf:
            losses = [
                self.crf.neg_log_likelihood(emissions[i], tags[i])
                for i in range(len(sentences))
            ]
            total = losses[0]
            for loss in losses[1:]:
                total = total + loss
            return total / len(losses)
        batch, seq_len = tags.shape
        flat_logits = emissions.reshape(batch * seq_len, self.num_tags)
        return F.cross_entropy(flat_logits, tags.reshape(-1))

    def fit(
        self,
        train: SequenceTaggingDataset,
        val: SequenceTaggingDataset | None = None,
    ) -> dict:
        cfg = self.config
        params = list(self.parameters())
        optimizer = (
            SGD(params, lr=cfg.learning_rate)
            if cfg.optimizer == "sgd"
            else Adam(params, lr=cfg.learning_rate)
        )
        stopper = EarlyStopper(cfg.patience)
        history: dict[str, list[float]] = {"train_loss": [], "val_accuracy": []}
        sentences = np.stack(train.sentences)
        tags = np.stack(train.tags)

        for epoch in range(cfg.epochs):
            self.train()
            iterator = BatchIterator(len(train), cfg.batch_size, seed=cfg.sampling_seed + epoch)
            epoch_loss, n_batches = 0.0, 0
            for batch_idx in iterator:
                loss = self._batch_loss(sentences[batch_idx], tags[batch_idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            history["train_loss"].append(epoch_loss / max(n_batches, 1))

            if val is not None and len(val):
                val_acc = self.token_accuracy(val)
                history["val_accuracy"].append(val_acc)
                if cfg.anneal_factor is not None and stopper.should_anneal:
                    optimizer.set_lr(max(optimizer.lr * cfg.anneal_factor, 1e-5))
                if stopper.update(val_acc, self.state_dict()):
                    break

        if stopper.best_state is not None:
            self.load_state_dict(stopper.best_state)
        return history

    # -- inference -----------------------------------------------------------------------

    def predict(self, dataset: SequenceTaggingDataset) -> list[np.ndarray]:
        """Per-sentence arrays of predicted tag ids."""
        self.eval()
        predictions: list[np.ndarray] = []
        sentences = np.stack(dataset.sentences)
        with no_grad():
            emissions = self.emissions(sentences)
        for i in range(len(dataset)):
            if self.use_crf:
                predictions.append(self.crf.viterbi_decode(emissions.data[i]))
            else:
                predictions.append(np.argmax(emissions.data[i], axis=-1))
        return predictions

    def token_accuracy(self, dataset: SequenceTaggingDataset) -> float:
        preds = self.predict(dataset)
        correct = total = 0
        for pred, gold in zip(preds, dataset.tags):
            correct += int(np.sum(pred == gold))
            total += len(gold)
        return correct / total if total else 0.0

    def entity_f1(self, dataset: SequenceTaggingDataset) -> float:
        """Micro-F1 over entity tokens (token-level, which suffices at this scale)."""
        preds = self.predict(dataset)
        outside = dataset.outside_tag_id
        tp = fp = fn = 0
        for pred, gold in zip(preds, dataset.tags):
            pred = np.asarray(pred)
            gold = np.asarray(gold)
            pred_ent = pred != outside
            gold_ent = gold != outside
            tp += int(np.sum(pred_ent & gold_ent & (pred == gold)))
            fp += int(np.sum(pred_ent & ((~gold_ent) | (pred != gold))))
            fn += int(np.sum(gold_ent & ((~pred_ent) | (pred != gold))))
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)
