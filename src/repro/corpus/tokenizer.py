"""Tokenisation of raw text into word tokens.

The paper pre-processes Wikipedia with a Facebook script (keeping letter
cases).  Our synthetic corpora are generated directly as token sequences, but
the examples and tests also exercise the path from raw strings, so we provide
a small regex tokenizer compatible with that preprocessing style.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

__all__ = ["SimpleTokenizer"]


class SimpleTokenizer:
    """Regex word tokenizer.

    Parameters
    ----------
    lowercase:
        Whether to lowercase tokens.  The paper keeps cases (important for NER
        entities), so the default is ``False``.
    keep_numbers:
        Whether numeric tokens are kept or replaced with the ``<num>`` symbol.
    """

    _TOKEN_RE = re.compile(r"[A-Za-z]+|[0-9]+|[^\sA-Za-z0-9]")
    NUM_TOKEN = "<num>"

    def __init__(self, *, lowercase: bool = False, keep_numbers: bool = True) -> None:
        self.lowercase = bool(lowercase)
        self.keep_numbers = bool(keep_numbers)

    def tokenize(self, text: str) -> list[str]:
        """Split a string into word/number/punctuation tokens."""
        if not isinstance(text, str):
            raise TypeError(f"text must be a string, got {type(text).__name__}")
        tokens = self._TOKEN_RE.findall(text)
        out: list[str] = []
        for tok in tokens:
            if tok.isdigit() and not self.keep_numbers:
                tok = self.NUM_TOKEN
            if self.lowercase:
                tok = tok.lower()
            out.append(tok)
        return out

    def tokenize_documents(self, texts: Iterable[str]) -> list[list[str]]:
        """Tokenize an iterable of documents."""
        return [self.tokenize(t) for t in texts]

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)
