"""Quantized-first ("fast") evaluation of the measure suite with error bounds.

The serving layer's dominant cost is the float64 decomposition work behind
each measure evaluation.  This module trades precision for latency *soundly*:
the aligned top-k pair is re-quantized once to a low bit width, cached as its
own content-addressed artifact together with exactly-computed residual
statistics, and every measure is then evaluated from the quantized float32
representation together with a **conservative error bound** derived from
classical matrix perturbation theory:

* **pip loss** -- ``| ||AA^T - BB^T|| - ||XaXa^T - XbXb^T|| |`` is bounded via
  ``||XX^T - AA^T||_F <= ||X - A||_F (||X||_2 + ||A||_2)`` per side;
* **1 - eigenspace overlap** -- Wedin's ``sin(theta)`` theorem bounds the
  Frobenius perturbation of each rank-restricted projector by
  ``2 delta / gap`` (``gap`` = singular gap at the cut, Weyl-deflated);
* **eis** -- the trace form ``tr((Pi_a + Pi_b - 2 Pi_b Pi_a) Sigma)/tr(Sigma)``
  is ``3(||dPi_a||_2 + ||dPi_b||_2)``-Lipschitz in the projectors
  (``|tr(M Sigma)| <= ||M||_2 tr(Sigma)`` for psd ``Sigma``), with
  ``||dPi||_2 <= delta / gap`` by Davis--Kahan; anchor-truncation residuals
  (:meth:`~repro.measures.eigenspace_instability.AnchorFactors.sigma_trace_error`)
  add their share of spectral-trace mass;
* **semantic displacement** -- Soederkvist's perturbation bound on the
  orthogonal Procrustes rotation plus the 2-Lipschitz continuity of cosine
  similarity under normalisation, applied per row with the exact per-row
  quantization residuals;
* **1 - knn** -- a margin argument: a query's top-k *set* is provably
  unchanged when its k/(k+1) similarity margin exceeds twice the worst-case
  cosine perturbation, so the unstable-query fraction bounds the overlap
  change.

All bounds hold against exact arithmetic and are inflated by a small relative
and absolute slack covering float32 evaluation rounding; each is clipped to
the measure's value range, so a meaningless bound degrades into "escalate",
never into a false certificate.  Soundness (``|fast - exact| <= bound``) is
pinned across the grid in ``tests/measures/test_fastpath.py``.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import Embedding
from repro.compression.uniform_quantization import optimal_clip_threshold, uniform_quantize
from repro.linalg import normalize_rows, row_set_overlap
from repro.measures.base import aligned_top_k_pair, rank_restricted
from repro.measures.eigenspace_instability import AnchorFactors, _instability_from_factors
from repro.utils.rng import check_random_state
from repro.utils.validation import check_embedding_pair

__all__ = ["FAST_MEASURES", "build_fast_pair", "evaluate_fast"]

#: Measures the fast path can evaluate, in suite order.
FAST_MEASURES = ("eis", "1-knn", "semantic-displacement", "pip", "1-eigenspace-overlap")

#: Relative inflation applied to every analytic bound, covering float32
#: evaluation rounding on top of the exact-arithmetic perturbation bounds.
_REL_SLACK = 1.001
#: Absolute cosine slack for float32 GEMMs over unit-normalised rows (the
#: practical rounding of a length-d float32 dot product is ~sqrt(d) * eps).
_COS_SLACK = 1e-4


def _factorize_pair(xa: np.ndarray, xb: np.ndarray) -> dict[str, np.ndarray]:
    """Build-time factorization of a quantized pair, in float64.

    One SVD per side plus the Procrustes solve of the (d, d) cross product,
    computed once when the fast pair is built so that
    :func:`evaluate_fast` never runs an (n, d) factorization on the serving
    path.  Left factors are stored in float32 (their storage rounding is
    covered by the :func:`_fp_delta` allowance); singular values and the
    rotation stay float64 because the pip trace expansion cancels.
    """
    xa64 = xa.astype(np.float64)
    xb64 = xb.astype(np.float64)
    Ua, Sa, _ = np.linalg.svd(xa64, full_matrices=False)
    Ub, Sb, _ = np.linalg.svd(xb64, full_matrices=False)
    M = xb64.T @ xa64
    Um, Sm, Vmt = np.linalg.svd(M, full_matrices=False)
    return {
        "ua": Ua.astype(np.float32),
        "ub": Ub.astype(np.float32),
        "sa": Sa,
        "sb": Sb,
        "procrustes_r": Um @ Vmt,
        "procrustes_s": Sm,
    }


def build_fast_pair(
    emb_a: Embedding,
    emb_b: Embedding,
    *,
    top_k: int | None,
    bits: int = 8,
    share_threshold: bool = True,
    knn_k: int | None = None,
    knn_num_queries: int | None = None,
) -> dict[str, np.ndarray]:
    """Quantized float32 snapshot of an aligned pair plus exact residual stats.

    The pair is restricted to its common top-``k`` vocabulary (exactly like
    the exact measure path), uniformly quantized to ``bits`` with a clipping
    threshold fitted on the first embedding (shared with the second when
    ``share_threshold``, mirroring
    :func:`~repro.compression.uniform_quantization.compress_pair`), and cast
    to float32.  The returned arrays are everything the values and bounds
    need:

    - ``xa``/``xb``: the float32 quantized matrices;
    - ``rowres_a``/``rowres_b``: exact per-row ``||row - fast row||_2`` in
      float64 (quantization *and* float32 cast error together);
    - ``fro_residuals``: ``[||A - Xa||_F, ||B - Xb||_F]``;
    - ``ua``/``ub``/``sa``/``sb``: per-side SVD factors of the quantized
      matrices, and ``procrustes_r``/``procrustes_s`` the rotation and
      singular values of their cross product (see :func:`_factorize_pair`);
    - ``knn_stats`` (only when ``knn_k`` and ``knn_num_queries`` are given):
      the precomputed ``1 - knn`` value and margin bound together with the
      parameters they were computed under, so :func:`evaluate_fast` can skip
      the similarity pass when its request matches.

    Building is the slow part (it reads the full-precision pair and runs the
    factorizations); it happens once per (pair, bits) and is
    content-addressed by the pipeline, so serving amortises it across every
    subsequent fast request.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    ra, rb = aligned_top_k_pair(emb_a, emb_b, top_k=top_k)
    A, B = check_embedding_pair(ra.vectors, rb.vectors, same_dim=True)

    clip_a = optimal_clip_threshold(A, bits)
    clip_b = clip_a if share_threshold else optimal_clip_threshold(B, bits)
    xa = uniform_quantize(A, bits, clip=clip_a).astype(np.float32)
    xb = uniform_quantize(B, bits, clip=clip_b).astype(np.float32)

    res_a = A - xa.astype(np.float64)
    res_b = B - xb.astype(np.float64)
    rowres_a = np.linalg.norm(res_a, axis=1)
    rowres_b = np.linalg.norm(res_b, axis=1)
    data = {
        "xa": xa,
        "xb": xb,
        "rowres_a": rowres_a,
        "rowres_b": rowres_b,
        "fro_residuals": np.array(
            [np.linalg.norm(res_a), np.linalg.norm(res_b)], dtype=np.float64
        ),
    }
    data.update(_factorize_pair(xa, xb))
    if knn_k is not None and knn_num_queries is not None:
        value, bound = _knn_value_and_bound(
            xa, xb, rowres_a, rowres_b, k=knn_k, num_queries=knn_num_queries, seed=0
        )
        data["knn_stats"] = np.array(
            [value, bound, float(knn_k), float(knn_num_queries)], dtype=np.float64
        )
    return data


def _inflate(bound: float, cap: float) -> float:
    """Apply the shared relative slack and clip to the measure's value range."""
    if not np.isfinite(bound):
        return float(cap)
    return float(min(cap, bound * _REL_SLACK + 1e-9))


def _fp_delta(S: np.ndarray, shape: tuple[int, ...]) -> float:
    """Backward-error allowance of a float32 SVD: ``c * min(shape) * eps * s1``."""
    if S.size == 0:
        return 0.0
    return float(S[0]) * min(shape) * float(np.finfo(np.float32).eps) * 8.0


def _projector_perturbations(
    S: np.ndarray, n_kept: int, delta: float
) -> tuple[float, float]:
    """Spectral and Frobenius bounds on the rank-``n_kept`` projector change.

    Davis--Kahan / Wedin with the singular gap at the cut, deflated by
    ``delta`` (Weyl: exact singular values live within ``delta`` of the fast
    ones).  A closed gap means the subspace is not identifiable at this
    precision; ``inf`` is returned and the caller's range cap turns it into
    an escalation.
    """
    s_in = float(S[n_kept - 1])
    s_out = float(S[n_kept]) if n_kept < S.size else 0.0
    gap = s_in - s_out - delta
    if gap <= 0.0:
        return np.inf, np.inf
    spectral = min(delta / gap, 1.0)
    frobenius = 2.0 * delta / gap
    return spectral, frobenius


def _knn_value_and_bound(
    xa: np.ndarray,
    xb: np.ndarray,
    rowres_a: np.ndarray,
    rowres_b: np.ndarray,
    *,
    k: int,
    num_queries: int,
    seed: int,
) -> tuple[float, float]:
    """``1 - knn overlap`` of the fast pair plus its margin-argument bound.

    Replicates :func:`~repro.measures.knn.knn_overlap`'s query sample exactly
    (same rng construction, same draw), then derives *both* outputs from one
    cosine-similarity pass per side: a single ``argpartition`` at the
    ``(k, k+1)`` boundary yields the top-k neighbour set (the value) and the
    k/(k+1) similarity margin (the bound) together, instead of partitioning
    the same similarities twice.

    A query counts as unstable unless, on both sides, its margin exceeds
    twice the worst-case cosine perturbation ``2 rr_q/||x_q|| + 2 max_w
    rr_w/||x_w||`` (the normalisation Lipschitz bound applied to both
    arguments) plus a float32 GEMM slack.  Stable queries keep their
    neighbour set verbatim under the exact computation, so only unstable ones
    can move the mean overlap -- and a tie (zero margin) is always unstable,
    making the bound independent of ``argpartition`` tie-breaking.
    """
    n = xa.shape[0]
    rng = check_random_state(seed)
    q = min(int(num_queries), n)
    queries = rng.choice(n, size=q, replace=False)
    k_eff = min(int(k), n - 1)

    tops = []
    unstable = np.zeros(q, dtype=bool)
    rows = np.arange(q)
    for x, rowres in ((xa, rowres_a), (xb, rowres_b)):
        norms = np.linalg.norm(x.astype(np.float64), axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            per_row = np.where(norms > 0, 2.0 * rowres / norms, np.inf)
        eps_q = per_row[queries] + float(np.max(per_row)) + _COS_SLACK

        xn = normalize_rows(x)
        sims = xn[queries] @ xn.T
        sims[rows, queries] = -np.inf
        if k_eff < n - 1:
            # One single-kth introselect per side (same partition work as the
            # exact path); the k-th largest similarity is recovered from a
            # (q, k) gather instead of a second partition pass.
            idx = np.argpartition(sims, n - k_eff - 1, axis=1)
            top = idx[:, n - k_eff:]
            margin = (
                np.min(np.take_along_axis(sims, top, axis=1), axis=1)
                - sims[rows, idx[:, n - k_eff - 1]]
            )
            tops.append(top)
        else:
            # Every other word is a neighbour; the set is trivially stable.
            margin = np.full(q, np.inf)
            all_idx = np.broadcast_to(np.arange(n), (q, n))
            tops.append(all_idx[all_idx != queries[:, None]].reshape(q, n - 1))
        unstable |= ~(margin > 2.0 * eps_q)

    overlap = float(np.mean(row_set_overlap(tops[0], tops[1]), dtype=np.float64) / k_eff)
    return 1.0 - overlap, float(np.mean(unstable))


def evaluate_fast(
    data: dict[str, np.ndarray],
    *,
    measures: tuple[str, ...] | None = None,
    factors: AnchorFactors | None = None,
    alpha: float = 3.0,
    knn_k: int = 5,
    knn_num_queries: int = 300,
) -> tuple[dict[str, float], dict[str, float]]:
    """Evaluate measures from a fast pair, returning ``(values, bounds)``.

    ``data`` is a :func:`build_fast_pair` artifact; ``factors`` are the anchor
    SVD factors the exact EIS evaluation of the same cell would use (required
    when ``"eis"`` is selected -- using the *same* ``Sigma`` is what makes the
    fast-vs-exact bound a pure subspace-perturbation statement).  Each bound
    satisfies ``|values[m] - exact value of m| <= bounds[m]`` and is clipped
    to the measure's value range, so the caller can always compare it against
    a tolerance to decide escalation.

    Evaluation is factorization-free: the per-side SVDs and the Procrustes
    rotation are read from the artifact (legacy artifacts without them are
    factorized on the fly), leaving only small GEMMs, partitions and O(n)
    reductions on the serving path.
    """
    selected = FAST_MEASURES if measures is None else tuple(measures)
    unknown = [m for m in selected if m not in FAST_MEASURES]
    if unknown:
        raise KeyError(f"fast path cannot evaluate {unknown!r}; known: {FAST_MEASURES}")
    xa = np.ascontiguousarray(data["xa"], dtype=np.float32)
    xb = np.ascontiguousarray(data["xb"], dtype=np.float32)
    rowres_a = np.asarray(data["rowres_a"], dtype=np.float64)
    rowres_b = np.asarray(data["rowres_b"], dtype=np.float64)
    delta_a, delta_b = (float(v) for v in np.asarray(data["fro_residuals"]))
    n, d = xa.shape

    if "ua" in data:
        fac = data
    else:  # legacy artifact: factorize here, exactly as the builder would
        fac = _factorize_pair(xa, xb)
    Sa = np.asarray(fac["sa"], dtype=np.float64)
    Sb = np.asarray(fac["sb"], dtype=np.float64)
    Sm = np.asarray(fac["procrustes_s"], dtype=np.float64)
    s1a = float(Sa[0]) if Sa.size else 0.0
    s1b = float(Sb[0]) if Sb.size else 0.0

    values: dict[str, float] = {}
    bounds: dict[str, float] = {}

    if "pip" in selected:
        # ||XaXa^T - XbXb^T||_F^2 = sum(sa^4) + sum(sb^4) - 2 ||Xb^T Xa||_F^2,
        # and ||Xb^T Xa||_F^2 is exactly sum(sm^2) of the stored Procrustes
        # singular values -- O(d) arithmetic on build-time float64 spectra.
        pip_sq = (
            float(np.sum(Sa**4) + np.sum(Sb**4)) - 2.0 * float(np.sum(Sm**2))
        )
        values["pip"] = float(np.sqrt(max(pip_sq, 0.0)))
        bound = delta_a * (2.0 * s1a + delta_a) + delta_b * (2.0 * s1b + delta_b)
        # pip is unbounded above, so its bound is never range-clipped.  The
        # absolute slack floors at the sqrt-scale of float64 cancellation in
        # both this trace expansion and the exact path's (their terms are of
        # order ||X||_F^4 and cancel to the tiny result).
        fro2 = float(np.sum(Sa**2) + np.sum(Sb**2))
        bounds["pip"] = _inflate(bound + 1e-6 * fro2, cap=np.inf)

    need_subspaces = "1-eigenspace-overlap" in selected or "eis" in selected
    if need_subspaces:
        Ua = np.asarray(fac["ua"], dtype=np.float32)
        Ub = np.asarray(fac["ub"], dtype=np.float32)
        Ua_k = rank_restricted(Ua, Sa, xa.shape)
        Ub_k = rank_restricted(Ub, Sb, xb.shape)
        ka, kb = Ua_k.shape[1], Ub_k.shape[1]
        eff_a = delta_a + _fp_delta(Sa, xa.shape)
        eff_b = delta_b + _fp_delta(Sb, xb.shape)
        spec_a, frob_a = _projector_perturbations(Sa, ka, eff_a)
        spec_b, frob_b = _projector_perturbations(Sb, kb, eff_b)

    if "1-eigenspace-overlap" in selected:
        cross = Ua_k.T @ Ub_k
        overlap = float(np.sum(cross.astype(np.float64) ** 2) / max(ka, kb))
        values["1-eigenspace-overlap"] = 1.0 - float(np.clip(overlap, 0.0, 1.0))
        bound = (frob_a * np.sqrt(kb) + frob_b * np.sqrt(ka)) / max(ka, kb)
        bounds["1-eigenspace-overlap"] = _inflate(bound, cap=1.0)

    if "eis" in selected:
        if factors is None:
            raise ValueError("the fast eis evaluation requires anchor factors")
        if factors.n_words != n:
            raise ValueError(
                f"anchor factors cover {factors.n_words} words but the fast pair has {n}"
            )
        values["eis"] = _instability_from_factors(Ua_k, Ub_k, factors)
        trace = float(
            np.sum(np.asarray(factors.Ra, dtype=np.float64) ** 2)
            + np.sum(np.asarray(factors.Ra_t, dtype=np.float64) ** 2)
        )
        bound = 3.0 * (spec_a + spec_b)
        if trace > 0:
            bound += factors.sigma_trace_error(alpha) / trace
        bounds["eis"] = _inflate(bound, cap=2.0)

    if "semantic-displacement" in selected:
        # The Procrustes rotation of the fast pair was solved at build time in
        # float64 (so it only carries the quantization error, not GEMM
        # rounding); here it is just applied.
        R = np.asarray(fac["procrustes_r"], dtype=np.float64)
        aligned = xb.astype(np.float64) @ R
        norm_a = np.linalg.norm(xa.astype(np.float64), axis=1)
        norm_al = np.linalg.norm(aligned, axis=1)
        denom = norm_a * norm_al
        safe = denom > 0
        cos_sim = np.zeros(n)
        cos_sim[safe] = (
            np.einsum("nd,nd->n", xa.astype(np.float64)[safe], aligned[safe]) / denom[safe]
        )
        values["semantic-displacement"] = float(np.mean(1.0 - cos_sim))

        dM = delta_b * (s1a + delta_a) + s1b * delta_a
        if d == 1:
            rbound = 0.0 if dM < float(Sm[0]) else 2.0
        else:
            sep = float(Sm[-2] + Sm[-1]) - 2.0 * dM
            rbound = 2.0 * dM / sep if sep > 0 else 2.0 * np.sqrt(d)
        rot = min(2.0, rbound)
        with np.errstate(divide="ignore", invalid="ignore"):
            term_a = np.where(norm_a > 0, 2.0 * rowres_a / norm_a, np.inf)
            norm_b = norm_al  # ||xb_i R|| = ||xb_i||: R is exactly orthogonal
            term_b = np.where(
                norm_b > 0, 2.0 * (rowres_b + norm_b * rot) / norm_b, np.inf
            )
        per_row = np.minimum(term_a + term_b + _COS_SLACK, 2.0)
        bounds["semantic-displacement"] = _inflate(float(np.mean(per_row)), cap=2.0)

    if "1-knn" in selected:
        stats = np.asarray(data["knn_stats"]) if "knn_stats" in data else None
        if stats is not None and (
            float(stats[2]) == float(knn_k) and float(stats[3]) == float(knn_num_queries)
        ):
            value, bound = float(stats[0]), float(stats[1])
        else:  # artifact built without (or with different) knn parameters
            value, bound = _knn_value_and_bound(
                xa, xb, rowres_a, rowres_b, k=knn_k, num_queries=knn_num_queries, seed=0
            )
        values["1-knn"] = value
        bounds["1-knn"] = _inflate(bound, cap=1.0)

    return values, bounds
