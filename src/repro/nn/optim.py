"""Optimisers: plain SGD (with decay) and Adam.

The paper trains the sentiment models with Adam and the NER BiLSTM with
vanilla SGD plus learning-rate annealing on validation plateaus; both are
provided here.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, parameters, lr: float) -> None:
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and gradient clipping."""

    def __init__(self, parameters, lr: float, *, momentum: float = 0.0, clip_norm: float | None = 5.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.clip_norm = clip_norm
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        if self.clip_norm is not None:
            _clip_gradients(self.parameters, self.clip_norm)
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        clip_norm: float | None = None,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.clip_norm = clip_norm
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        if self.clip_norm is not None:
            _clip_gradients(self.parameters, self.clip_norm)
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (p.grad**2)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _clip_gradients(parameters: list[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for p in parameters:
        if p.grad is not None:
            total += float(np.sum(p.grad**2))
    norm = np.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in parameters:
            if p.grad is not None:
                p.grad *= scale
    return float(norm)
