"""Tests for the downstream models (BOW, CNN, BiLSTM tagger) and training config."""

import numpy as np
import pytest

from repro.models.bilstm_tagger import BiLSTMTagger
from repro.models.bow_classifier import BowClassifier
from repro.models.cnn_classifier import CNNClassifier
from repro.models.trainer import EarlyStopper, TrainingConfig
from repro.tasks.datasets import train_val_test_split


@pytest.fixture(scope="module")
def sentiment_splits(sentiment_dataset):
    return train_val_test_split(sentiment_dataset, val_fraction=0.15, test_fraction=0.25, seed=0)


@pytest.fixture(scope="module")
def ner_splits(ner_dataset):
    return train_val_test_split(ner_dataset, val_fraction=0.2, test_fraction=0.2, seed=0)


class TestTrainingConfig:
    def test_with_seed_ties_both_seeds(self):
        cfg = TrainingConfig().with_seed(9)
        assert cfg.init_seed == 9 and cfg.sampling_seed == 9

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)

    def test_early_stopper(self):
        stopper = EarlyStopper(patience=2)
        assert not stopper.update(0.5, {"w": 1})
        assert not stopper.update(0.4, {"w": 2})
        assert stopper.update(0.3, {"w": 3})
        assert stopper.best_state == {"w": 1}
        assert stopper.best_score == 0.5

    def test_early_stopper_none_patience_never_stops(self):
        stopper = EarlyStopper(patience=None)
        for score in (0.5, 0.4, 0.3, 0.2):
            assert not stopper.update(score, {})


class TestBowClassifier:
    def test_learns_sentiment(self, embedding, sentiment_splits):
        cfg = TrainingConfig(learning_rate=0.05, epochs=12, patience=4).with_seed(0)
        model = BowClassifier(embedding, config=cfg)
        history = model.fit(sentiment_splits.train, sentiment_splits.val)
        assert model.accuracy(sentiment_splits.test) > 0.7
        assert len(history["train_loss"]) >= 1

    def test_predictions_deterministic_given_seeds(self, embedding, sentiment_splits):
        cfg = TrainingConfig(learning_rate=0.05, epochs=4, patience=None).with_seed(1)
        preds = []
        for _ in range(2):
            model = BowClassifier(embedding, config=cfg)
            model.fit(sentiment_splits.train, sentiment_splits.val)
            preds.append(model.predict(sentiment_splits.test))
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_different_init_seed_changes_model(self, embedding, sentiment_splits):
        base = TrainingConfig(learning_rate=0.05, epochs=2, patience=None)
        m1 = BowClassifier(embedding, config=base.with_seed(0))
        m2 = BowClassifier(embedding, config=base.with_seed(1))
        assert not np.allclose(m1.output.weight.data, m2.output.weight.data)

    def test_predict_proba_rows_sum_to_one(self, embedding, sentiment_splits):
        cfg = TrainingConfig(learning_rate=0.05, epochs=2, patience=None).with_seed(0)
        model = BowClassifier(embedding, config=cfg)
        model.fit(sentiment_splits.train)
        probs = model.predict_proba(sentiment_splits.test)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_fine_tuning_updates_embedding_table(self, embedding, sentiment_splits):
        cfg = TrainingConfig(
            learning_rate=0.05, epochs=2, patience=None, fine_tune_embeddings=True
        ).with_seed(0)
        model = BowClassifier(embedding, config=cfg)
        before = model.embedding.weight.data.copy()
        model.fit(sentiment_splits.train.subset(np.arange(60)))
        assert not np.allclose(before, model.embedding.weight.data)

    def test_frozen_embedding_table_unchanged(self, embedding, sentiment_splits):
        cfg = TrainingConfig(learning_rate=0.05, epochs=2, patience=None).with_seed(0)
        model = BowClassifier(embedding, config=cfg)
        before = model.embedding.weight.data.copy()
        model.fit(sentiment_splits.train.subset(np.arange(60)))
        np.testing.assert_allclose(before, model.embedding.weight.data)

    def test_accepts_raw_matrix(self, embedding, sentiment_splits):
        model = BowClassifier(embedding.vectors, config=TrainingConfig(epochs=1, patience=None))
        model.fit(sentiment_splits.train.subset(np.arange(40)))
        assert model.predict(sentiment_splits.test).shape == (len(sentiment_splits.test),)


class TestCNNClassifier:
    def test_trains_and_predicts(self, embedding, sentiment_splits):
        cfg = TrainingConfig(learning_rate=0.01, epochs=2, patience=None).with_seed(0)
        model = CNNClassifier(embedding, channels=4, kernel_widths=(2, 3), config=cfg)
        small_train = sentiment_splits.train.subset(np.arange(80))
        model.fit(small_train, sentiment_splits.val)
        preds = model.predict(sentiment_splits.test)
        assert preds.shape == (len(sentiment_splits.test),)
        assert set(np.unique(preds)) <= {0, 1}

    def test_empty_document_handled(self, embedding, vocab):
        from repro.tasks.datasets import TextClassificationDataset

        cfg = TrainingConfig(epochs=1, patience=None).with_seed(0)
        model = CNNClassifier(embedding, channels=2, kernel_widths=(2,), config=cfg)
        data = TextClassificationDataset(
            documents=[np.array([], dtype=np.int64), np.array([1, 2, 3])],
            labels=np.array([0, 1]),
            vocab=vocab,
        )
        model.fit(data)
        assert model.predict(data).shape == (2,)


class TestBiLSTMTagger:
    def test_trains_and_beats_majority_baseline(self, embedding, ner_splits):
        cfg = TrainingConfig(learning_rate=0.02, epochs=10, optimizer="adam", patience=None).with_seed(0)
        tagger = BiLSTMTagger(embedding, num_tags=ner_splits.train.num_tags,
                              hidden_dim=12, config=cfg)
        tagger.fit(ner_splits.train, ner_splits.val)
        majority = np.mean([
            np.mean(np.asarray(t) == ner_splits.test.outside_tag_id) for t in ner_splits.test.tags
        ])
        assert tagger.token_accuracy(ner_splits.test) > majority

    def test_predictions_shapes(self, embedding, ner_splits):
        cfg = TrainingConfig(learning_rate=0.02, epochs=1, optimizer="adam", patience=None).with_seed(0)
        tagger = BiLSTMTagger(embedding, num_tags=5, hidden_dim=8, config=cfg)
        tagger.fit(ner_splits.train)
        preds = tagger.predict(ner_splits.test)
        assert len(preds) == len(ner_splits.test)
        assert all(len(p) == len(s) for p, s in zip(preds, ner_splits.test.sentences))

    def test_crf_mode_runs(self, embedding, ner_splits):
        cfg = TrainingConfig(learning_rate=0.02, epochs=1, optimizer="adam", patience=None).with_seed(0)
        tagger = BiLSTMTagger(embedding, num_tags=5, hidden_dim=8, use_crf=True, config=cfg)
        small = ner_splits.train.subset(np.arange(16))
        tagger.fit(small)
        preds = tagger.predict(ner_splits.test.subset(np.arange(5)))
        assert len(preds) == 5

    def test_entity_f1_bounds(self, embedding, ner_splits):
        cfg = TrainingConfig(learning_rate=0.02, epochs=2, optimizer="adam", patience=None).with_seed(0)
        tagger = BiLSTMTagger(embedding, num_tags=5, hidden_dim=8, config=cfg)
        tagger.fit(ner_splits.train.subset(np.arange(30)))
        f1 = tagger.entity_f1(ner_splits.test)
        assert 0.0 <= f1 <= 1.0
