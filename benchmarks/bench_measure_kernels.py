"""Benchmark the linalg kernel layer: SVD kernels, precision, k-NN overlap.

Three comparisons, each reported as wall-clock plus accuracy-vs-exact:

1. ``svd``      -- exact (LAPACK) vs randomized truncated SVD, float64 and
                   float32, on tall matrices with a truncated target rank
                   (the PPMI-factorization / anchor-decomposition regime);
2. ``measures`` -- the full measure batch on a vocab >= 5k embedding pair
                   under the float64/exact policy vs the float32 policy,
                   with per-measure value deltas;
3. ``knn``      -- the vectorised searchsorted k-NN set overlap vs the seed
                   repository's per-row ``np.intersect1d`` loop.

The script exits non-zero if the randomized SVD is slower than exact on the
large smoke shape, if the k-NN kernels disagree, or if float32 measure values
leave the documented tolerance -- so CI can smoke the perf claims::

    PYTHONPATH=src python benchmarks/bench_measure_kernels.py --quick
    PYTHONPATH=src python benchmarks/bench_measure_kernels.py --output BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.reporting import format_table  # noqa: E402
from repro.corpus.vocabulary import Vocabulary  # noqa: E402
from repro.embeddings.base import Embedding  # noqa: E402
from repro.linalg import KernelPolicy, exact_svd, randomized_svd  # noqa: E402
from repro.measures.batch import compute_measure_batch  # noqa: E402
from repro.measures.eigenspace_instability import EigenspaceInstability  # noqa: E402
from repro.measures.eigenspace_overlap import EigenspaceOverlapDistance  # noqa: E402
from repro.measures.knn import KNNDistance, _top_k_neighbors, knn_overlap  # noqa: E402
from repro.measures.pip_loss import PIPLoss  # noqa: E402
from repro.measures.semantic_displacement import SemanticDisplacement  # noqa: E402

from conftest import write_benchmark_results  # noqa: E402

#: Float32 tolerance contract, mirrored from tests/measures/test_precision_policy.py.
FLOAT32_ABS_TOL = {
    "eis": 1e-4,
    "1-eigenspace-overlap": 1e-4,
    "semantic-displacement": 1e-4,
    "1-knn": 0.05,
}
FLOAT32_REL_TOL = {"pip": 1e-3}


def timed(fn, *, repeats: int = 3):
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def synthetic_embedding_pair(n: int, d: int, *, seed: int = 0, noise: float = 0.05):
    """A correlated (base, drifted) embedding pair with clustered geometry."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((16, d)) * 3.0
    assignment = rng.integers(0, len(centers), size=n)
    base = centers[assignment] + rng.standard_normal((n, d))
    drifted = base + noise * rng.standard_normal((n, d))
    vocab = Vocabulary({f"w{i:06d}": n - i for i in range(n)})
    return (
        Embedding(vocab=vocab, vectors=base),
        Embedding(vocab=vocab, vectors=drifted),
    )


# -- 1. SVD kernels --------------------------------------------------------------


def bench_svd(shapes: list[tuple[int, int, int]], repeats: int) -> list[dict]:
    rows = []
    for n, d, rank in shapes:
        rng = np.random.default_rng(0)
        # Decaying spectrum: the regime where truncation is meaningful.
        U, _ = np.linalg.qr(rng.standard_normal((n, min(n, d))))
        V, _ = np.linalg.qr(rng.standard_normal((d, min(n, d))))
        S = np.geomspace(100.0, 0.01, min(n, d))
        X = (U * S) @ V.T
        X32 = X.astype(np.float32)

        (_, S_exact, _), t_exact = timed(lambda: exact_svd(X, rank), repeats=repeats)
        (_, S_rand, _), t_rand = timed(lambda: randomized_svd(X, rank, seed=0), repeats=repeats)
        (_, S_rand32, _), t_rand32 = timed(
            lambda: randomized_svd(X32, rank, seed=0), repeats=repeats
        )
        rows.append({
            "shape": f"{n}x{d}", "rank": rank,
            "exact_s": round(t_exact, 4),
            "randomized_s": round(t_rand, 4),
            "randomized_f32_s": round(t_rand32, 4),
            "speedup": round(t_exact / t_rand, 2),
            "speedup_f32": round(t_exact / t_rand32, 2),
            "sv_rel_err": float(np.max(np.abs(S_rand - S_exact) / S_exact)),
            "sv_rel_err_f32": float(np.max(np.abs(S_rand32 - S_exact) / S_exact)),
        })
    return rows


# -- 2. Measure suite under precision policies -----------------------------------


def bench_measures(n: int, d: int, anchor_dim: int, num_queries: int) -> dict:
    emb_a, emb_b = synthetic_embedding_pair(n, d, seed=0)
    anchor_a, anchor_b = synthetic_embedding_pair(n, anchor_dim, seed=1)

    def suite():
        return {
            "eis": EigenspaceInstability(anchor_a, anchor_b, alpha=3.0),
            "1-knn": KNNDistance(k=5, num_queries=num_queries, seed=0),
            "semantic-displacement": SemanticDisplacement(),
            "pip": PIPLoss(),
            "1-eigenspace-overlap": EigenspaceOverlapDistance(),
        }

    start = time.perf_counter()
    exact = compute_measure_batch(
        suite(), emb_a, emb_b, top_k=None, policy=KernelPolicy(dtype="float64")
    )
    t_exact = time.perf_counter() - start

    start = time.perf_counter()
    fast = compute_measure_batch(
        suite(), emb_a, emb_b, top_k=None, policy=KernelPolicy(dtype="float32")
    )
    t_fast = time.perf_counter() - start

    deltas, in_tolerance = {}, True
    for name, result in exact.results.items():
        delta = abs(fast[name].value - result.value)
        deltas[name] = delta
        if name in FLOAT32_REL_TOL:
            in_tolerance &= delta <= FLOAT32_REL_TOL[name] * max(abs(result.value), 1e-12)
        else:
            in_tolerance &= delta <= FLOAT32_ABS_TOL[name]
    return {
        "vocab": n, "dim": d,
        "float64_s": round(t_exact, 3),
        "float32_s": round(t_fast, 3),
        "float32_speedup": round(t_exact / t_fast, 2),
        "max_abs_delta": max(deltas.values()),
        "deltas": deltas,
        "within_tolerance": bool(in_tolerance),
    }


# -- 3. k-NN overlap: vectorised vs per-row loop ---------------------------------


def knn_overlap_loop(X, Y, *, k: int, num_queries: int, seed: int) -> float:
    """The seed repository's per-row intersect1d implementation (reference)."""
    rng = np.random.default_rng(seed)
    queries = rng.choice(X.shape[0], size=min(num_queries, X.shape[0]), replace=False)
    top_a = _top_k_neighbors(X, queries, k)
    top_b = _top_k_neighbors(Y, queries, k)
    overlaps = np.empty(len(queries))
    for row in range(len(queries)):
        overlaps[row] = len(np.intersect1d(top_a[row], top_b[row]))
    return float(np.mean(overlaps) / top_a.shape[1])


def bench_knn(n: int, d: int, num_queries: int) -> dict:
    from repro.linalg import row_set_overlap

    emb_a, emb_b = synthetic_embedding_pair(n, d, seed=2)
    X, Y = emb_a.vectors, emb_b.vectors
    kwargs = dict(k=5, num_queries=num_queries, seed=0)
    vec_value, t_vec = timed(lambda: knn_overlap(X, Y, **kwargs))
    loop_value, t_loop = timed(lambda: knn_overlap_loop(X, Y, **kwargs))

    # Isolate the overlap-count stage (the part the vectorisation replaced):
    # end-to-end numbers above are dominated by the neighbour GEMM.
    rng = np.random.default_rng(0)
    queries = rng.choice(n, size=min(num_queries, n), replace=False)
    top_a = _top_k_neighbors(X, queries, 5)
    top_b = _top_k_neighbors(Y, queries, 5)
    _, t_stage_vec = timed(lambda: row_set_overlap(top_a, top_b))
    _, t_stage_loop = timed(
        lambda: [len(np.intersect1d(top_a[i], top_b[i])) for i in range(len(queries))]
    )
    return {
        "vocab": n, "queries": num_queries,
        "vectorized_s": round(t_vec, 4),
        "loop_s": round(t_loop, 4),
        "speedup": round(t_loop / t_vec, 2),
        "overlap_stage_speedup": round(t_stage_loop / t_stage_vec, 2),
        "values_equal": vec_value == loop_value,
    }


def run_benchmark(quick: bool):
    if quick:
        svd_shapes = [(1500, 128, 16), (5000, 256, 32)]
        measure_args = (5000, 64, 96, 500)
        knn_args = (5000, 64, 500)
        repeats = 2
    else:
        svd_shapes = [(1500, 128, 16), (5000, 256, 32), (8000, 512, 64)]
        measure_args = (8000, 96, 128, 1000)
        knn_args = (8000, 96, 1000)
        repeats = 3

    svd_rows = bench_svd(svd_shapes, repeats)
    measure_row = bench_measures(*measure_args)
    knn_row = bench_knn(*knn_args)

    summary = {
        "svd": svd_rows,
        "measures": measure_row,
        "knn": knn_row,
        "large_shape_randomized_speedup": svd_rows[-1]["speedup"],
    }

    failures = []
    # CI smoke contract: the randomized kernel must beat exact on the large shape.
    if svd_rows[-1]["randomized_s"] >= svd_rows[-1]["exact_s"]:
        failures.append(
            f"randomized SVD slower than exact on {svd_rows[-1]['shape']}: "
            f"{svd_rows[-1]['randomized_s']}s vs {svd_rows[-1]['exact_s']}s"
        )
    if not knn_row["values_equal"]:
        failures.append("vectorised k-NN overlap diverged from the per-row loop")
    if not measure_row["within_tolerance"]:
        failures.append(f"float32 measure deltas out of tolerance: {measure_row['deltas']}")
    return summary, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller shapes (CI smoke)")
    parser.add_argument("--output", default=None, help="write the summary JSON here")
    args = parser.parse_args(argv)

    summary, failures = run_benchmark(args.quick)

    print(format_table(summary["svd"], title="SVD kernels (exact vs randomized)"))
    print()
    measures = summary["measures"]
    print(format_table(
        [{k: v for k, v in measures.items() if k != "deltas"}],
        title="measure batch (float64 vs float32)",
    ))
    print(format_table(
        [{"measure": name, "abs_delta": f"{delta:.3e}"}
         for name, delta in measures["deltas"].items()],
        title="float32 measure deltas",
    ))
    print()
    print(format_table([summary["knn"]], title="k-NN overlap (vectorised vs loop)"))

    results = write_benchmark_results("kernels", summary=summary, output=args.output)
    print(f"results -> {results}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
