"""Tests for the MiniBERT contextual feature extractor."""

import numpy as np
import pytest

from repro.embeddings.contextual import MiniBertConfig, MiniBertEncoder


@pytest.fixture(scope="module")
def fitted_encoder(corpus_pair, vocab):
    config = MiniBertConfig(hidden_dim=16, output_dim=12, n_layers=2, n_heads=2,
                            ffn_dim=24, token_dim=8, max_len=64)
    return MiniBertEncoder(config, cbow_epochs=1, seed=0).fit(corpus_pair.base, vocab=vocab)


class TestConfig:
    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError):
            MiniBertConfig(hidden_dim=10, n_heads=3)

    def test_positive_fields(self):
        with pytest.raises(ValueError):
            MiniBertConfig(n_layers=0)


class TestEncoder:
    def test_requires_fit(self):
        encoder = MiniBertEncoder(MiniBertConfig(hidden_dim=8, output_dim=8, n_heads=2,
                                                 n_layers=1, ffn_dim=8, token_dim=4))
        assert not encoder.is_fitted
        with pytest.raises(RuntimeError):
            encoder.encode_tokens(np.array([0, 1]))

    def test_output_shape(self, fitted_encoder):
        features = fitted_encoder.encode_tokens(np.array([0, 1, 2, 3]))
        assert features.shape == (4, 12)
        assert np.all(np.isfinite(features))

    def test_empty_sequence(self, fitted_encoder):
        assert fitted_encoder.encode_tokens(np.array([], dtype=np.int64)).shape == (0, 12)

    def test_unknown_ids_embed_as_zero_tokens(self, fitted_encoder):
        out = fitted_encoder.encode_tokens(np.array([-1, -1]))
        assert out.shape == (2, 12)
        assert np.all(np.isfinite(out))

    def test_max_len_truncation(self, fitted_encoder):
        long_ids = np.zeros(500, dtype=np.int64)
        out = fitted_encoder.encode_tokens(long_ids)
        assert out.shape[0] == fitted_encoder.config.max_len

    def test_contextual_features_depend_on_context(self, fitted_encoder):
        """The same token gets different features in different contexts."""
        a = fitted_encoder.encode_tokens(np.array([5, 1, 2]))[0]
        b = fitted_encoder.encode_tokens(np.array([5, 7, 9]))[0]
        assert not np.allclose(a, b)

    def test_encode_document_is_mean_pooled(self, fitted_encoder):
        ids = np.array([1, 2, 3])
        doc = fitted_encoder.encode_document(ids)
        np.testing.assert_allclose(doc, fitted_encoder.encode_tokens(ids).mean(axis=0))

    def test_encode_documents_stacks(self, fitted_encoder):
        out = fitted_encoder.encode_documents([np.array([0, 1]), np.array([2])])
        assert out.shape == (2, 12)

    def test_encode_words(self, fitted_encoder, vocab):
        words = vocab.words[:3] + ["<unknown-word>"]
        out = fitted_encoder.encode_words(words)
        assert out.shape == (4, 12)

    def test_shared_architecture_across_corpora(self, corpus_pair, vocab):
        """Two encoders fit on different corpora share their transformer weights."""
        config = MiniBertConfig(hidden_dim=8, output_dim=8, n_layers=1, n_heads=2,
                                ffn_dim=8, token_dim=4)
        enc_a = MiniBertEncoder(config, cbow_epochs=1, seed=0).fit(corpus_pair.base, vocab=vocab)
        enc_b = MiniBertEncoder(config, cbow_epochs=1, seed=0).fit(corpus_pair.drifted, vocab=vocab)
        np.testing.assert_allclose(enc_a._weights["proj_out"], enc_b._weights["proj_out"])
        # But the corpus-trained token embeddings differ.
        assert not np.allclose(enc_a.token_embedding.vectors, enc_b.token_embedding.vectors)
