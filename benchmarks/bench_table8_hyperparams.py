"""Table 8: hyperparameter sweeps for the EIS alpha and the k-NN k."""

from repro.experiments import table8_hyperparams


def test_table8_hyperparams(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: table8_hyperparams.run(
            pipeline, alphas=(0.0, 1.0, 3.0), ks=(1, 5, 50), tasks=("sst2", "conll")
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 6
    assert all(-1.0 <= r["mean_spearman_rho"] <= 1.0 for r in result.rows)
