"""DriftEvaluator: aggregation, thresholds, history, serialisation."""

import math

import pytest

from repro.instability.grid import GridRecord
from repro.monitor.drift import DISAGREEMENT, DriftEvaluator, DriftReport


def record(measures, disagreement=float("nan")):
    return GridRecord(
        algorithm="svd", task="sst2", dim=4, precision=1, seed=0,
        disagreement=disagreement, accuracy_a=0.5, accuracy_b=0.5,
        measures=measures,
    )


PAIR = ("a" * 24, "b" * 24)


class TestAggregation:
    def test_means_over_cells(self):
        evaluator = DriftEvaluator()
        report = evaluator.evaluate(
            [record({"eis": 0.1}), record({"eis": 0.3})],
            base_version=1, version=2, snapshot_pair=PAIR,
        )
        assert report.measures["eis"] == pytest.approx(0.2)
        assert report.cells == 2
        assert math.isnan(report.disagreement)

    def test_nan_measures_skipped(self):
        evaluator = DriftEvaluator()
        report = evaluator.evaluate(
            [record({"eis": 0.4, "pip": float("nan")}), record({"eis": float("nan")})],
            base_version=1, version=2, snapshot_pair=PAIR,
        )
        assert report.measures["eis"] == pytest.approx(0.4)
        assert "pip" not in report.measures

    def test_disagreement_mean(self):
        evaluator = DriftEvaluator()
        report = evaluator.evaluate(
            [record({}, disagreement=0.2), record({}, disagreement=0.4)],
            base_version=1, version=2, snapshot_pair=PAIR,
        )
        assert report.disagreement == pytest.approx(0.3)


class TestAlerts:
    def test_threshold_exceeded_raises_alert(self):
        evaluator = DriftEvaluator({"eis": 0.15})
        report = evaluator.evaluate(
            [record({"eis": 0.2})], base_version=1, version=2, snapshot_pair=PAIR
        )
        assert report.drifted
        (alert,) = report.alerts
        assert alert == {"measure": "eis", "value": pytest.approx(0.2), "threshold": 0.15}

    def test_below_threshold_is_quiet(self):
        evaluator = DriftEvaluator({"eis": 0.5})
        report = evaluator.evaluate(
            [record({"eis": 0.2})], base_version=1, version=2, snapshot_pair=PAIR
        )
        assert not report.drifted and report.alerts == ()

    def test_disagreement_threshold(self):
        evaluator = DriftEvaluator({DISAGREEMENT: 0.1})
        report = evaluator.evaluate(
            [record({}, disagreement=0.3)],
            base_version=1, version=2, snapshot_pair=PAIR,
        )
        (alert,) = report.alerts
        assert alert["measure"] == DISAGREEMENT

    def test_absent_measure_never_alerts(self):
        evaluator = DriftEvaluator({"pip": 0.0, DISAGREEMENT: 0.0})
        report = evaluator.evaluate(
            [record({"eis": 1.0})], base_version=1, version=2, snapshot_pair=PAIR
        )
        assert report.alerts == ()

    def test_no_thresholds_observe_only(self):
        evaluator = DriftEvaluator()
        report = evaluator.evaluate(
            [record({"eis": 99.0})], base_version=1, version=2, snapshot_pair=PAIR
        )
        assert report.alerts == ()


class TestHistoryAndSerialisation:
    def test_bounded_history(self):
        evaluator = DriftEvaluator(history=2)
        for version in range(2, 6):
            evaluator.evaluate(
                [record({"eis": 0.1})],
                base_version=version - 1, version=version, snapshot_pair=PAIR,
            )
        assert [r.version for r in evaluator.reports] == [4, 5]
        assert evaluator.last_report.version == 5

    def test_jsonable_round_trip(self):
        evaluator = DriftEvaluator({"eis": 0.05})
        report = evaluator.evaluate(
            [record({"eis": 0.2}, disagreement=0.1)],
            base_version=3, version=4, snapshot_pair=PAIR,
        )
        restored = DriftReport.from_jsonable(report.to_jsonable())
        assert restored == report

    def test_jsonable_round_trip_nan_disagreement(self):
        report = DriftReport(
            base_version=1, version=2, snapshot_pair=PAIR, cells=1,
            measures={"eis": 0.1},
        )
        payload = report.to_jsonable()
        assert payload["disagreement"] is None
        restored = DriftReport.from_jsonable(payload)
        assert math.isnan(restored.disagreement)

    def test_alerts_raised_counter(self):
        evaluator = DriftEvaluator({"eis": 0.0})
        for version in (2, 3):
            evaluator.evaluate(
                [record({"eis": 0.5})],
                base_version=version - 1, version=version, snapshot_pair=PAIR,
            )
        assert evaluator.alerts_raised == 2
