"""Mini-batching utilities for the downstream model trainers."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["BatchIterator", "pad_sequences"]


def pad_sequences(sequences: Sequence[np.ndarray], pad_value: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Pad variable-length id sequences into a dense matrix.

    Returns
    -------
    padded:
        ``(batch, max_len)`` int64 matrix.
    lengths:
        ``(batch,)`` original lengths.
    """
    if not sequences:
        return np.empty((0, 0), dtype=np.int64), np.empty(0, dtype=np.int64)
    lengths = np.asarray([len(s) for s in sequences], dtype=np.int64)
    max_len = max(int(lengths.max()), 1)
    padded = np.full((len(sequences), max_len), pad_value, dtype=np.int64)
    for i, seq in enumerate(sequences):
        padded[i, : len(seq)] = np.asarray(seq, dtype=np.int64)
    return padded, lengths


class BatchIterator:
    """Shuffled mini-batch index iterator with a reproducible sampling order.

    Appendix E.3 of the paper studies the effect of the *sampling-order seed*
    on downstream instability, so the shuffling seed is independent from the
    model-initialisation seed and is threaded explicitly.
    """

    def __init__(self, n_items: int, batch_size: int, *, shuffle: bool = True, seed: int = 0):
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.n_items = int(n_items)
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.rng = check_random_state(seed)

    def __iter__(self) -> Iterator[np.ndarray]:
        order = np.arange(self.n_items)
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, self.n_items, self.batch_size):
            yield order[start : start + self.batch_size]

    def __len__(self) -> int:
        return int(np.ceil(self.n_items / self.batch_size)) if self.n_items else 0
