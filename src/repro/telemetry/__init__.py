"""Stdlib-only distributed tracing and latency telemetry.

Two halves, both zero-dependency and cheap enough to leave compiled in:

- :mod:`repro.telemetry.trace` — ``span(...)`` context managers collected
  into per-request traces with unique ids, a bounded :class:`TraceBuffer`
  ring with a slow-trace keep-policy, and W3C-ish header propagation
  (``X-Trace-Id`` / ``X-Parent-Span``) so spans recorded in another
  process stitch into the originating trace.
- :mod:`repro.telemetry.metrics` — fixed-bucket mergeable latency
  histograms with p50/p95/p99 estimates and a Prometheus text exposition
  of the whole ``engine.stats()`` counter surface.

When no trace is active a ``span(...)`` costs two clock reads and a
context-variable lookup; histogram observation is a bisect plus an
integer increment under a lock.  Nothing in here touches artifact keys
or numeric code paths, so enabling telemetry can never change
bit-identity.
"""

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS_MS,
    LatencyHistogram,
    MetricsRegistry,
    REGISTRY,
    render_prometheus,
    telemetry_snapshot,
)
from repro.telemetry.trace import (
    PARENT_HEADER,
    REQUEST_ID_HEADER,
    TRACE_HEADER,
    NullTrace,
    Trace,
    TraceBuffer,
    annotate,
    bind,
    context_from_headers,
    current_context,
    current_trace_id,
    new_trace_id,
    propagation_headers,
    remote_context,
    span,
    use_context,
)

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullTrace",
    "PARENT_HEADER",
    "REGISTRY",
    "REQUEST_ID_HEADER",
    "TRACE_HEADER",
    "Trace",
    "TraceBuffer",
    "annotate",
    "bind",
    "context_from_headers",
    "current_context",
    "current_trace_id",
    "new_trace_id",
    "propagation_headers",
    "remote_context",
    "render_prometheus",
    "span",
    "telemetry_snapshot",
    "use_context",
]
