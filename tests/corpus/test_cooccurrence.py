"""Tests for co-occurrence counting and the PPMI transform."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.cooccurrence import build_cooccurrence, ppmi_matrix


class TestBuildCooccurrence:
    def test_simple_pair_counts(self):
        # "0 1 0": with window 1 and no distance weighting, (0,1) appears twice
        # in each direction.
        mat = build_cooccurrence([[0, 1, 0]], 2, window_size=1, distance_weighting=False)
        dense = mat.toarray()
        assert dense[0, 1] == 2
        assert dense[1, 0] == 2
        assert dense[0, 0] == 0

    def test_symmetry(self):
        docs = [np.array([0, 1, 2, 1, 0])]
        mat = build_cooccurrence(docs, 3, window_size=2).toarray()
        np.testing.assert_allclose(mat, mat.T)

    def test_distance_weighting_halves_far_pairs(self):
        mat = build_cooccurrence([[0, 2, 1]], 3, window_size=2, distance_weighting=True)
        dense = mat.toarray()
        assert dense[0, 1] == pytest.approx(0.5)
        assert dense[0, 2] == pytest.approx(1.0)

    def test_out_of_range_ids_are_skipped(self):
        mat = build_cooccurrence([[0, 99, 1]], 2, window_size=1)
        assert mat.shape == (2, 2)
        # 99 is ignored entirely, but 0 and 1 are now adjacent-with-gap.
        assert mat.nnz >= 0

    def test_empty_documents(self):
        mat = build_cooccurrence([[], [5]], 6, window_size=2)
        assert mat.nnz == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_cooccurrence([[0, 1]], 0)
        with pytest.raises(ValueError):
            build_cooccurrence([[0, 1]], 2, window_size=0)

    def test_window_larger_than_document(self):
        mat = build_cooccurrence([[0, 1]], 2, window_size=10, distance_weighting=False)
        assert mat[0, 1] == 1


class TestPPMI:
    def test_nonnegative(self):
        counts = build_cooccurrence([[0, 1, 2, 0, 1]], 3, window_size=2)
        ppmi = ppmi_matrix(counts)
        assert (ppmi.data >= 0).all()

    def test_zero_entries_stay_zero(self):
        counts = sp.csr_matrix(np.array([[0.0, 4.0], [4.0, 0.0]]))
        ppmi = ppmi_matrix(counts).toarray()
        assert ppmi[0, 0] == 0 and ppmi[1, 1] == 0

    def test_independent_words_have_zero_pmi(self):
        # Uniform co-occurrence: P(i,j) = P(i)P(j) exactly, so PMI = 0.
        counts = np.ones((3, 3))
        ppmi = ppmi_matrix(counts)
        assert ppmi.nnz == 0

    def test_shift_reduces_entries(self):
        counts = build_cooccurrence([[0, 1, 0, 1, 2]], 3, window_size=1)
        base = ppmi_matrix(counts).sum()
        shifted = ppmi_matrix(counts, shift=1.0).sum()
        assert shifted <= base

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            ppmi_matrix(np.array([[-1.0, 1.0], [1.0, 0.0]]))

    def test_all_zero_matrix(self):
        ppmi = ppmi_matrix(sp.csr_matrix((4, 4)))
        assert ppmi.nnz == 0


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=30),
        min_size=1,
        max_size=5,
    )
)
def test_property_cooccurrence_symmetric_and_ppmi_nonnegative(docs):
    counts = build_cooccurrence(docs, 10, window_size=3)
    dense = counts.toarray()
    np.testing.assert_allclose(dense, dense.T)
    assert (dense >= 0).all()
    ppmi = ppmi_matrix(counts)
    assert (ppmi.data >= 0).all()
    # PPMI keeps only entries that were observed.
    assert set(zip(*ppmi.nonzero())) <= set(zip(*counts.nonzero()))
