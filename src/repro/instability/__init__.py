"""Downstream instability: Definition 1, the end-to-end pipeline, and the grid runner."""

from repro.instability.downstream import (
    classification_disagreement,
    downstream_instability,
    prediction_disagreement,
    tagging_disagreement,
    unstable_rank_at_k,
)
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig, DownstreamResult
from repro.instability.grid import GridRecord, GridRunner, records_to_rows

__all__ = [
    "DownstreamResult",
    "GridRecord",
    "GridRunner",
    "InstabilityPipeline",
    "PipelineConfig",
    "classification_disagreement",
    "downstream_instability",
    "prediction_disagreement",
    "records_to_rows",
    "tagging_disagreement",
    "unstable_rank_at_k",
]
