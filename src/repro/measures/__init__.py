"""Embedding distance measures (Section 2.4 and Section 4 of the paper).

All measures are *dissimilarities*: larger values should indicate more
downstream instability, so measures the paper reports as similarities
(k-NN overlap, eigenspace overlap) are exposed here in their ``1 - x`` form,
matching the rows "1 - k-NN" / "1 - Eigenspace Overlap" of Tables 1-3.
"""

from repro.measures.base import (
    MEASURES,
    DecompositionCache,
    EmbeddingDistanceMeasure,
    MeasureResult,
)
from repro.measures.batch import MeasureBatchResult, compute_measure_batch
from repro.measures.eigenspace_instability import (
    AnchorFactors,
    EigenspaceInstability,
    anchor_factors,
    eigenspace_instability,
    eigenspace_instability_exact,
)
from repro.measures.eigenspace_overlap import EigenspaceOverlapDistance, eigenspace_overlap
from repro.measures.fastpath import FAST_MEASURES, build_fast_pair, evaluate_fast
from repro.measures.knn import KNNDistance, knn_overlap
from repro.measures.pip_loss import PIPLoss, pip_loss
from repro.measures.semantic_displacement import SemanticDisplacement, semantic_displacement

__all__ = [
    "AnchorFactors",
    "DecompositionCache",
    "EigenspaceInstability",
    "EigenspaceOverlapDistance",
    "EmbeddingDistanceMeasure",
    "FAST_MEASURES",
    "KNNDistance",
    "MEASURES",
    "MeasureBatchResult",
    "MeasureResult",
    "PIPLoss",
    "SemanticDisplacement",
    "anchor_factors",
    "build_fast_pair",
    "compute_measure_batch",
    "evaluate_fast",
    "eigenspace_instability",
    "eigenspace_instability_exact",
    "eigenspace_overlap",
    "knn_overlap",
    "pip_loss",
    "semantic_displacement",
]
