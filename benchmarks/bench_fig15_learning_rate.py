"""Figure 15: the effect of the downstream learning rate on instability."""

from repro.experiments import fig15_learning_rate


def test_fig15_learning_rate(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: fig15_learning_rate.run(
            pipeline, learning_rates=(1e-4, 1e-2, 2e-1), dimensions=(32,)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 3
    assert all(0.0 <= r["disagreement_pct"] <= 100.0 for r in result.rows)
