"""Tests for the synthetic corpus generator and corpus containers."""

import numpy as np
import pytest

from repro.corpus.synthetic import (
    Corpus,
    SyntheticCorpusConfig,
    SyntheticCorpusGenerator,
)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        SyntheticCorpusConfig()

    def test_vocab_smaller_than_topics_raises(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(vocab_size=2, n_topics=5)

    def test_negative_documents_raises(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(n_documents=0)

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(drift_doc_replace_fraction=1.5)


class TestGeneration:
    def test_document_count_and_types(self, generator):
        corpus = generator.generate(seed=1, n_documents=10)
        assert len(corpus) == 10
        assert all(doc.dtype == np.int64 for doc in corpus.documents)
        assert corpus.num_tokens > 0

    def test_word_ids_in_range(self, generator):
        corpus = generator.generate(seed=1, n_documents=5)
        upper = generator.config.vocab_size
        for doc in corpus.documents:
            assert doc.min() >= 0 and doc.max() < upper

    def test_determinism(self, generator):
        a = generator.generate(seed=5, n_documents=5)
        b = generator.generate(seed=5, n_documents=5)
        for da, db in zip(a.documents, b.documents):
            np.testing.assert_array_equal(da, db)

    def test_different_seeds_differ(self, generator):
        a = generator.generate(seed=1, n_documents=5)
        b = generator.generate(seed=2, n_documents=5)
        assert any(
            len(da) != len(db) or not np.array_equal(da, db)
            for da, db in zip(a.documents, b.documents)
        )

    def test_topic_prior_shape_validated(self, generator):
        with pytest.raises(ValueError, match="topic_prior"):
            generator.generate(topic_prior=[1.0, 2.0])

    def test_topic_words_are_known_words(self, generator):
        words = generator.topic_words(0)
        assert words
        assert set(words) <= set(generator.word_list)

    def test_with_config_override(self, generator):
        other = generator.with_config(n_documents=3)
        assert other.config.n_documents == 3
        assert generator.config.n_documents != 3


class TestCorpusPair:
    def test_pair_names(self, corpus_pair):
        assert corpus_pair.base.name == "wiki17"
        assert corpus_pair.drifted.name == "wiki18"

    def test_drifted_corpus_grows(self, corpus_pair, generator):
        cfg = generator.config
        expected = len(corpus_pair.base) + round(cfg.drift_new_doc_fraction * len(corpus_pair.base))
        assert len(corpus_pair.drifted) == expected

    def test_pair_shares_documents(self, corpus_pair, generator):
        base_docs = {doc.tobytes() for doc in corpus_pair.base.documents}
        drifted_docs = {doc.tobytes() for doc in corpus_pair.drifted.documents}
        shared = len(base_docs & drifted_docs)
        # Roughly (1 - replace_fraction) of documents should be carried over.
        assert shared >= 0.3 * len(base_docs)
        assert shared < len(drifted_docs)

    def test_shared_vocabulary_subset_of_both(self, corpus_pair):
        vocab = corpus_pair.shared_vocabulary(min_count=1)
        base_vocab = corpus_pair.base.build_vocabulary()
        drifted_vocab = corpus_pair.drifted.build_vocabulary()
        for word in vocab.words[:50]:
            assert word in base_vocab and word in drifted_vocab


class TestCorpusContainer:
    def test_build_vocabulary_counts_match_tokens(self, corpus):
        vocab = corpus.build_vocabulary(min_count=1)
        assert vocab.total_count == corpus.num_tokens

    def test_encode_documents_drop_oov(self, corpus):
        vocab = corpus.build_vocabulary(min_count=5)
        encoded = corpus.encode_documents(vocab)
        assert len(encoded) == len(corpus)
        for doc in encoded:
            if len(doc):
                assert doc.max() < len(vocab)

    def test_iter_token_documents(self, corpus):
        first = next(iter(corpus.iter_token_documents()))
        assert all(isinstance(tok, str) for tok in first)
        assert len(first) == len(corpus.documents[0])

    def test_mismatched_topics_raises(self):
        with pytest.raises(ValueError):
            Corpus(word_list=["a"], documents=[np.array([0])], document_topics=np.array([0, 1]))
