"""Lightweight I/O helpers for saving experiment artifacts.

Experiment results are written as JSON (records of scalars) and ``.npz``
(arrays).  Keeping this in one place lets the experiment harness and the
benchmarks share consistent file layouts under a results directory.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = ["to_jsonable", "save_json", "load_json", "save_arrays", "load_arrays", "ensure_dir"]


def ensure_dir(path: str | Path) -> Path:
    """Create ``path`` (and parents) if needed and return it as a Path."""
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    return p


def to_jsonable(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays and dataclasses to JSON types."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return to_jsonable(asdict(obj))
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    return obj


def save_json(data: Any, path: str | Path) -> Path:
    """Serialise ``data`` to JSON at ``path`` (creating parent directories)."""
    p = Path(path)
    ensure_dir(p.parent)
    p.write_text(json.dumps(to_jsonable(data), indent=2, sort_keys=True))
    return p


def load_json(path: str | Path) -> Any:
    return json.loads(Path(path).read_text())


def save_arrays(path: str | Path, **arrays: np.ndarray) -> Path:
    """Save named arrays to a compressed ``.npz`` file."""
    p = Path(path)
    ensure_dir(p.parent)
    np.savez_compressed(p, **arrays)
    return p if p.suffix == ".npz" else p.with_suffix(p.suffix + ".npz")


def load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    with np.load(Path(path)) as data:
        return {k: data[k] for k in data.files}
