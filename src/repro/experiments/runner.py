"""Experiment registry and a small command-line runner.

``python -m repro.experiments.runner figure-2-memory`` runs one experiment
with quick settings and prints its table; ``--all`` runs the full suite and
writes one CSV per experiment under ``results/``.  ``--serve`` boots the
online stability-query service instead (see :mod:`repro.serving.api`),
reusing the runner's engine flags (``--workers``, ``--cache-dir``,
``--kernel-policy``, ``--dtype``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import Callable

from repro.engine.store import configure_default_store
from repro.linalg import KERNEL_DTYPES, SVD_METHODS, configure_default_policy

from repro.experiments import (
    fig1_dimension,
    fig1_precision,
    fig2_memory,
    fig3_kge,
    fig4_6_sentiment,
    fig7_8_quality,
    fig11_contextual,
    fig12_subword,
    fig13_complex_models,
    fig14_finetune,
    fig15_learning_rate,
    proposition1,
    table1_correlation,
    table2_selection,
    table3_budget,
    table8_hyperparams,
    table13_randomness,
)
from repro.experiments.base import ExperimentResult
from repro.utils.io import save_json
from repro.utils.logging import configure_logging

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

#: Registry: experiment name -> zero/one-argument callable returning an ExperimentResult.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "figure-1-dimension": fig1_dimension.run,
    "figure-1-precision": fig1_precision.run,
    "figure-2-memory": fig2_memory.run,
    "figure-3-kge": fig3_kge.run,
    "figures-4-6-sentiment": fig4_6_sentiment.run,
    "figures-7-8-quality": fig7_8_quality.run,
    "figure-11-contextual": fig11_contextual.run,
    "figure-12-subword": fig12_subword.run,
    "figure-13-complex-models": fig13_complex_models.run,
    "figure-14b-finetune": fig14_finetune.run,
    "figure-15-learning-rate": fig15_learning_rate.run,
    "table-1-correlation": table1_correlation.run,
    "table-2-selection": table2_selection.run,
    "table-3-budget": table3_budget.run,
    "table-8-hyperparameters": table8_hyperparams.run,
    "table-13-randomness": table13_randomness.run,
    "proposition-1": proposition1.run,
}


#: Engine-wide settings the CLI applies to every experiment; experiments that
#: don't sweep the grid (and so don't accept them) get them dropped.  All
#: other unknown kwargs still raise ``TypeError`` as usual.
_OPTIONAL_ENGINE_KWARGS = frozenset({"n_workers"})


def run_experiment(name: str, *args, **kwargs) -> ExperimentResult:
    """Run a registered experiment by name."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    func = EXPERIMENTS[name]
    accepted = set(inspect.signature(func).parameters)
    passed = {
        k: v for k, v in kwargs.items()
        if k in accepted or k not in _OPTIONAL_ENGINE_KWARGS
    }
    return func(*args, **passed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Run reproduction experiments")
    parser.add_argument("experiment", nargs="?", help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--output-dir", default="results", help="directory for CSV/JSON output")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="process fan-out for grid sweeps (0 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persist the engine's artifact store here; reruns skip retraining",
    )
    parser.add_argument(
        "--store-shards", type=int, default=None,
        help="split the local artifact store into N consistent-hashed shard "
             "directories under --cache-dir",
    )
    parser.add_argument(
        "--store-url", default=None,
        help="peer repro-serve base URL used as a remote artifact-store tier; "
             "warm artifacts are fetched instead of recomputed",
    )
    parser.add_argument(
        "--store-replicas", default=None,
        help="comma-separated replica targets (peer URLs and/or directories) "
             "used as one N-way replicated store tier with read-repair and "
             "hinted handoff; mutually exclusive with --store-url",
    )
    parser.add_argument(
        "--store-mmap", action="store_true",
        help="memory-map disk-tier npz artifacts on read instead of copying "
             "them into private memory (warm reruns share page-cache pages)",
    )
    parser.add_argument(
        "--coordinator", default=None,
        help="cluster coordinator base URL (a repro-serve instance); grid "
             "sweeps are executed by its repro-worker fleet instead of "
             "locally, streaming back bit-identical records",
    )
    parser.add_argument(
        "--kernel-policy", choices=SVD_METHODS, default=None,
        help="SVD kernel selection for every decomposition (default: exact; "
             "'auto' switches large truncated decompositions to randomized)",
    )
    parser.add_argument(
        "--dtype", choices=KERNEL_DTYPES, default=None,
        help="working precision of the measure kernels (default: float64)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="boot the stability-query HTTP service instead of running experiments",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address for --serve")
    parser.add_argument("--port", type=int, default=8732, help="port for --serve (0 = ephemeral)")
    parser.add_argument(
        "--resume-runs", action="store_true",
        help="with --serve: rebuild cluster runs from store checkpoints at boot",
    )
    parser.add_argument(
        "--monitor", action="store_true",
        help="with --serve: enable the online instability monitor "
             "(/monitor/ingest, /monitor/status, /monitor/events)",
    )
    parser.add_argument(
        "--monitor-distributed", action="store_true",
        help="with --serve: lease monitor retrains to the repro-worker fleet "
             "(implies --monitor)",
    )
    args = parser.parse_args(argv)
    if args.store_shards is not None and args.cache_dir is None:
        parser.error("--store-shards requires --cache-dir (it shards the local store)")
    if args.store_url and args.store_replicas:
        parser.error("--store-url and --store-replicas are mutually exclusive")
    if args.store_mmap and not (args.cache_dir or args.store_url or args.store_replicas):
        parser.error("--store-mmap requires a store to map (--cache-dir or replicas)")
    replicas = [entry for entry in (args.store_replicas or "").split(",") if entry]

    configure_logging()
    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.serve:
        from repro.serving.api import main as serve_main

        serve_argv = ["--host", args.host, "--port", str(args.port),
                      "--workers", str(args.workers)]
        if args.cache_dir is not None:
            serve_argv += ["--cache-dir", args.cache_dir]
        if args.store_shards is not None:
            serve_argv += ["--store-shards", str(args.store_shards)]
        if args.store_url is not None:
            serve_argv += ["--store-url", args.store_url]
        if args.store_replicas is not None:
            serve_argv += ["--store-replicas", args.store_replicas]
        if args.store_mmap:
            serve_argv += ["--store-mmap"]
        if args.kernel_policy is not None:
            serve_argv += ["--kernel-policy", args.kernel_policy]
        if args.dtype is not None:
            serve_argv += ["--dtype", args.dtype]
        if args.resume_runs:
            serve_argv += ["--resume-runs"]
        if args.monitor:
            serve_argv += ["--monitor"]
        if args.monitor_distributed:
            serve_argv += ["--monitor-distributed"]
        return serve_main(serve_argv)

    names = sorted(EXPERIMENTS) if args.all else ([args.experiment] if args.experiment else [])
    if not names:
        parser.print_help()
        return 1

    if args.cache_dir is not None or args.store_url is not None or replicas:
        configure_default_store(
            args.cache_dir,
            shards=args.store_shards,
            remote_url=args.store_url,
            replicas=replicas or None,
            mmap=args.store_mmap,
        )
    if args.kernel_policy is not None or args.dtype is not None:
        configure_default_policy(svd=args.kernel_policy, dtype=args.dtype)
    if args.coordinator is not None:
        from repro.cluster import configure_default_coordinator

        configure_default_coordinator(args.coordinator)

    out_dir = Path(args.output_dir)
    for name in names:
        result = run_experiment(name, n_workers=args.workers)
        print(result.to_table())
        print()
        result.to_csv(out_dir / f"{name}.csv")
        save_json(result.summary, out_dir / f"{name}.summary.json")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
