"""Tests for the knowledge-graph substrate: graph generation, TransE, evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instability.downstream import unstable_rank_at_k
from repro.kge.evaluation import (
    generate_negative_triplets,
    link_prediction_ranks,
    relation_thresholds,
    triplet_classification,
)
from repro.kge.graph import KnowledgeGraph, SyntheticKGConfig, generate_knowledge_graph
from repro.kge.transe import KGEmbedding, TransEModel, quantize_kg_embedding


@pytest.fixture(scope="module")
def kg():
    return generate_knowledge_graph(
        SyntheticKGConfig(n_entities=80, n_relations=6, n_triplets=800, seed=0)
    )


@pytest.fixture(scope="module")
def trained(kg):
    return TransEModel(dim=8, epochs=25, learning_rate=0.02, seed=0).fit(kg)


class TestGraphGeneration:
    def test_splits_are_disjoint_and_well_formed(self, kg):
        all_triplets = np.vstack([kg.train, kg.valid, kg.test])
        assert all_triplets[:, 0].max() < kg.n_entities
        assert all_triplets[:, 1].max() < kg.n_relations
        assert all_triplets[:, 2].max() < kg.n_entities
        as_tuples = {tuple(t) for t in all_triplets.tolist()}
        assert len(as_tuples) == len(all_triplets)  # no duplicates anywhere

    def test_no_self_loops(self, kg):
        assert np.all(kg.train[:, 0] != kg.train[:, 2])

    def test_subsample_train(self, kg):
        sub = kg.subsample_train(0.95, seed=1)
        assert sub.n_train == round(0.95 * kg.n_train)
        np.testing.assert_array_equal(sub.valid, kg.valid)
        np.testing.assert_array_equal(sub.test, kg.test)
        train_set = {tuple(t) for t in kg.train.tolist()}
        assert all(tuple(t) in train_set for t in sub.train.tolist())

    def test_deterministic_generation(self):
        cfg = SyntheticKGConfig(n_entities=40, n_relations=4, n_triplets=200, seed=3)
        a = generate_knowledge_graph(cfg)
        b = generate_knowledge_graph(cfg)
        np.testing.assert_array_equal(a.train, b.train)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticKGConfig(n_entities=2, n_entity_types=5)
        with pytest.raises(ValueError):
            SyntheticKGConfig(valid_fraction=0.6, test_fraction=0.5)

    def test_bad_triplet_shape_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph(n_entities=5, n_relations=2,
                           train=np.zeros((3, 2)), valid=np.zeros((0, 3)), test=np.zeros((0, 3)))


class TestTransE:
    def test_output_shapes_and_norms(self, kg, trained):
        assert trained.entities.shape == (kg.n_entities, 8)
        assert trained.relations.shape == (kg.n_relations, 8)
        # Entities are renormalised into the unit ball during training.
        assert np.linalg.norm(trained.entities, axis=1).max() <= 1.5

    def test_training_beats_random_embedding_on_mean_rank(self, kg, trained):
        random_emb = KGEmbedding(
            entities=np.random.default_rng(1).standard_normal(trained.entities.shape),
            relations=np.random.default_rng(2).standard_normal(trained.relations.shape),
            metadata={},
        )
        trained_rank = link_prediction_ranks(trained, kg).mean_rank
        random_rank = link_prediction_ranks(random_emb, kg).mean_rank
        assert trained_rank < random_rank

    def test_positive_triplets_score_lower_than_corrupted(self, kg, trained):
        positives = kg.test
        negatives = generate_negative_triplets(positives, kg, seed=0)
        assert trained.score(positives).mean() < trained.score(negatives).mean()

    def test_determinism(self, kg):
        a = TransEModel(dim=4, epochs=3, seed=5).fit(kg)
        b = TransEModel(dim=4, epochs=3, seed=5).fit(kg)
        np.testing.assert_allclose(a.entities, b.entities)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            TransEModel(dim=0)
        with pytest.raises(ValueError):
            TransEModel(dim=4, norm=3)

    def test_quantization(self, trained):
        q = quantize_kg_embedding(trained, 2)
        assert len(np.unique(q.entities)) <= 4
        assert q.metadata["precision"] == 2
        full = quantize_kg_embedding(trained, 32)
        assert full is trained


class TestEvaluation:
    def test_link_prediction_rank_bounds(self, kg, trained):
        result = link_prediction_ranks(trained, kg)
        assert result.ranks.min() >= 1
        assert result.ranks.max() <= kg.n_entities
        assert 0.0 <= result.hits_at_10 <= 1.0

    def test_both_sides_corruption(self, kg, trained):
        both = link_prediction_ranks(trained, kg, corrupt="both")
        assert both.ranks.shape == (len(kg.test),)
        with pytest.raises(ValueError):
            link_prediction_ranks(trained, kg, corrupt="neither")

    def test_unstable_rank_between_quantized_versions(self, kg, trained):
        coarse = quantize_kg_embedding(trained, 1)
        ranks_full = link_prediction_ranks(trained, kg).ranks
        ranks_coarse = link_prediction_ranks(coarse, kg).ranks
        value = unstable_rank_at_k(ranks_full, ranks_coarse, k=10)
        assert 0.0 <= value <= 100.0

    def test_negative_triplets_avoid_known_positives(self, kg):
        negatives = generate_negative_triplets(kg.test, kg, seed=0)
        known = kg.all_true_triplets()
        clash = sum(tuple(t) in known for t in negatives.tolist())
        assert clash <= len(negatives) * 0.1

    def test_relation_thresholds_shape(self, kg, trained):
        thresholds = relation_thresholds(trained, kg, seed=0)
        assert thresholds.shape == (kg.n_relations,)
        assert np.all(np.isfinite(thresholds))

    def test_triplet_classification_beats_chance(self, kg, trained):
        result = triplet_classification(trained, kg, seed=0)
        assert result.predictions.shape == result.labels.shape
        assert result.accuracy > 0.5

    def test_shared_thresholds_protocol(self, kg, trained):
        thresholds = relation_thresholds(trained, kg, seed=0)
        shared = triplet_classification(trained, kg, thresholds=thresholds, seed=0)
        np.testing.assert_allclose(shared.thresholds, thresholds)
        with pytest.raises(ValueError):
            triplet_classification(trained, kg, thresholds=np.ones(3), seed=0)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=50))
def test_property_unstable_rank_threshold_monotone(k):
    rng = np.random.default_rng(0)
    a = rng.integers(1, 100, size=50).astype(float)
    b = rng.integers(1, 100, size=50).astype(float)
    # Larger k can only reduce (or keep) the fraction of unstable ranks.
    assert unstable_rank_at_k(a, b, k=k) >= unstable_rank_at_k(a, b, k=k + 10)
