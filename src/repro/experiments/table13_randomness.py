"""Table 13 / Figure 14a (Appendix E.3): other sources of downstream randomness.

The paper compares the instability caused by (a) changing the downstream
model-initialisation seed, (b) changing the mini-batch sampling-order seed,
and (c) changing the embedding training data, with the embedding fixed for (a)
and (b).  It also re-runs the memory sweep with the downstream seeds no longer
tied between the two models ("relaxed seed constraint", Figure 14a).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_pipeline
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    tasks: tuple[str, ...] = ("sst2",),
    algorithm: str = "mc",
    dim: int | None = None,
    seed: int = 0,
    alternate_seed: int = 17,
) -> ExperimentResult:
    """Compare init-seed, sampling-seed, and embedding-data sources of instability."""
    pipe = resolve_pipeline(pipeline)
    dim = dim or max(pipe.config.dimensions)
    emb_a, emb_b = pipe.embedding_pair(algorithm, dim, seed)

    rows = []
    for task in tasks:
        # (a) fixed embedding, different model-initialisation seed.
        init_only = pipe.downstream_result(
            task, emb_a, emb_a, seed, init_seed_b=alternate_seed
        )
        # (b) fixed embedding, different sampling-order seed.
        sampling_only = pipe.downstream_result(
            task, emb_a, emb_a, seed, sampling_seed_b=alternate_seed
        )
        # (c) different embedding training data, tied downstream seeds.
        embedding_change = pipe.downstream_result(task, emb_a, emb_b, seed)
        # Figure 14a: embedding change *and* untied downstream seeds.
        relaxed = pipe.downstream_result(
            task, emb_a, emb_b, seed,
            init_seed_b=alternate_seed, sampling_seed_b=alternate_seed,
        )
        rows.extend(
            [
                {"task": task, "source": "model-initialization-seed",
                 "disagreement_pct": init_only.disagreement},
                {"task": task, "source": "sampling-order-seed",
                 "disagreement_pct": sampling_only.disagreement},
                {"task": task, "source": "embedding-training-data",
                 "disagreement_pct": embedding_change.disagreement},
                {"task": task, "source": "embedding-data+relaxed-seeds",
                 "disagreement_pct": relaxed.disagreement},
            ]
        )

    by_source = {}
    for row in rows:
        by_source.setdefault(row["source"], []).append(row["disagreement_pct"])
    means = {s: sum(v) / len(v) for s, v in by_source.items()}
    summary = {
        "mean_disagreement_by_source": means,
        "embedding_change_is_comparable_or_larger": bool(
            means.get("embedding-training-data", 0.0)
            >= 0.5 * max(means.get("model-initialization-seed", 0.0),
                         means.get("sampling-order-seed", 0.0), 1e-9)
        ),
    }
    return ExperimentResult(name="table-13-randomness-sources", rows=rows, summary=summary)
