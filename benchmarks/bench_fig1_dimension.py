"""Figure 1 (top): % disagreement vs embedding dimension at full precision."""

from repro.experiments import fig1_dimension


def test_fig1_dimension(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: fig1_dimension.run(pipeline), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) > 0
    # Paper shape: in most series the smallest dimension is the least stable.
    assert result.summary["series_where_smallest_dim_is_least_stable"] >= (
        result.summary["series_total"] / 2
    )
