"""Tests for the autograd Tensor, including finite-difference gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor, no_grad


def finite_difference(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = f()
        flat[i] = orig - eps
        minus = f()
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, params: list[np.ndarray], atol=1e-5):
    tensors = [Tensor(p, requires_grad=True) for p in params]
    loss = build_loss(*tensors)
    loss.backward()
    for tensor, raw in zip(tensors, params):
        numeric = finite_difference(lambda: build_loss(*[Tensor(q) for q in params]).item(), raw)
        np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_mul_grad(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((3, 4))
        check_gradient(lambda x, y: (x * y + x).sum(), [a, b])

    def test_broadcast_add_grad(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal(4)
        check_gradient(lambda x, y: (x + y).sum(), [a, b])

    def test_div_pow_grad(self, rng):
        a = np.abs(rng.standard_normal((3, 3))) + 1.0
        b = np.abs(rng.standard_normal((3, 3))) + 1.0
        check_gradient(lambda x, y: (x / y).sum() + (x**2).sum(), [a, b])

    def test_matmul_grad(self, rng):
        a, b = rng.standard_normal((4, 3)), rng.standard_normal((3, 5))
        check_gradient(lambda x, y: (x @ y).sum(), [a, b])

    def test_batched_matmul_grad(self, rng):
        a, b = rng.standard_normal((2, 3, 4)), rng.standard_normal((4, 5))
        check_gradient(lambda x, y: (x @ y).sum(), [a, b])

    def test_nonlinearities_grad(self, rng):
        a = rng.standard_normal((4, 4))
        check_gradient(lambda x: (x.tanh() + x.sigmoid() + x.relu()).sum(), [a])
        check_gradient(lambda x: (x * x).exp().sum(), [a * 0.1])
        check_gradient(lambda x: ((x * x) + 1.0).log().sum(), [a])

    def test_reductions_grad(self, rng):
        a = rng.standard_normal((3, 5))
        check_gradient(lambda x: x.mean(axis=0).sum() + x.sum(axis=1).sum(), [a])
        check_gradient(lambda x: x.max(axis=1).sum(), [a])

    def test_indexing_grad(self, rng):
        a = rng.standard_normal((6, 3))
        idx = np.array([0, 2, 2, 5])
        check_gradient(lambda x: x[idx].sum(), [a])

    def test_reshape_transpose_grad(self, rng):
        a = rng.standard_normal((2, 6))
        check_gradient(lambda x: (x.reshape(3, 4).T @ np.ones((3, 2))).sum(), [a])

    def test_concat_stack_grad(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        check_gradient(lambda x, y: Tensor.concatenate([x, y], axis=0).sum(), [a, b])
        check_gradient(lambda x, y: Tensor.stack([x, y], axis=0).sum(), [a, b])


class TestGraphMechanics:
    def test_gradient_accumulates_over_multiple_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x.detach() * 5.0
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_shapes_and_item(self):
        x = Tensor(np.ones((2, 3)))
        assert x.shape == (2, 3) and x.ndim == 2 and x.size == 6
        assert Tensor(3.5).item() == 3.5

    def test_scalar_exponent_only(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            x ** np.ones(2)

    def test_radd_rsub_rtruediv(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (1.0 + x) - 1.0
        z = 4.0 / x
        (y + z).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0 - 1.0])  # d/dx (x) + d/dx (4/x) = 1 - 4/x^2 = 0


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float64, (3, 3), elements=st.floats(-3, 3)))
def test_property_sum_gradient_is_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=20, deadline=None)
@given(hnp.arrays(np.float64, (4,), elements=st.floats(-2, 2)))
def test_property_tanh_gradient_bounded(data):
    x = Tensor(data, requires_grad=True)
    x.tanh().sum().backward()
    assert np.all(np.abs(x.grad) <= 1.0 + 1e-9)
