"""Engine equivalence and determinism tests.

The acceptance bar of the engine: the parallel scheduler is bit-identical to
the serial path, a warm artifact store performs zero retrainings, and tied
seeds reproduce identical downstream results.
"""

import warnings

import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.engine import ArtifactStore, GridEngine, plan_groups, stats
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

TINY_GRID_CONFIG = PipelineConfig(
    corpus=SyntheticCorpusConfig(vocab_size=120, n_documents=60, doc_length_mean=30, seed=7),
    algorithms=("svd",),
    dimensions=(4, 6),
    precisions=(1, 32),
    seeds=(0,),
    tasks=("sst2",),
    embedding_epochs=2,
    downstream_epochs=3,
    ner_epochs=2,
)


@pytest.fixture(scope="module")
def serial_records():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return GridEngine(TINY_GRID_CONFIG).run(with_measures=True)


class TestPlanGroups:
    def test_one_group_per_embedding_pair(self):
        groups = plan_groups(
            ("svd", "mc"), (4, 8), (1, 32), (0, 1), ("sst2",), anchor_dim=8
        )
        assert len(groups) == 2 * 2 * 2
        assert all(g.precisions == (1, 32) for g in groups)
        assert all(g.n_cells == 2 for g in groups)

    def test_anchor_groups_scheduled_first(self):
        groups = plan_groups(
            ("svd",), (4, 8, 6), (1,), (0,), ("sst2",), anchor_dim=8, with_measures=True
        )
        # The dim-8 group is every other group's EIS-anchor ancestor.
        assert groups[0].dim == 8

    def test_no_reorder_without_measures(self):
        groups = plan_groups(("svd",), (4, 8), (1,), (0,), ("sst2",), anchor_dim=8)
        assert [g.dim for g in groups] == [4, 8]


class TestParallelEquivalence:
    def test_parallel_bit_identical_to_serial(self, serial_records):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            parallel = GridEngine(TINY_GRID_CONFIG).run(with_measures=True, n_workers=2)
        assert parallel == serial_records  # dataclass equality: exact floats

    def test_record_order_is_axis_product_order(self, serial_records):
        keys = [(r.algorithm, r.dim, r.precision, r.seed, r.task) for r in serial_records]
        expected = [
            ("svd", d, p, 0, "sst2") for d in (4, 6) for p in (1, 32)
        ]
        assert keys == expected

    def test_custom_corpus_falls_back_to_serial(self):
        from repro.corpus.synthetic import SyntheticCorpusGenerator

        generator = SyntheticCorpusGenerator(TINY_GRID_CONFIG.corpus)
        pair = generator.generate_pair(seed=7)
        pipeline = InstabilityPipeline(TINY_GRID_CONFIG, corpus_pair=pair)
        assert not pipeline.reconstructible
        engine = GridEngine(pipeline)
        with pytest.warns(UserWarning, match="custom corpus"):
            records = engine.run(with_measures=False, n_workers=2, precisions=(32,))
        assert len(records) == 2


class TestWarmStore:
    def test_warm_rerun_trains_nothing(self, tmp_path, serial_records):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            cold = GridEngine(TINY_GRID_CONFIG, store=ArtifactStore(tmp_path))
            cold_records = cold.run(with_measures=True)
            assert cold.pipeline.embedding_train_count > 0
            assert cold.pipeline.downstream_train_count > 0

            warm = GridEngine(TINY_GRID_CONFIG, store=ArtifactStore(tmp_path))
            warm_records = warm.run(with_measures=True)

        # Zero retraining, asserted via the engine's aggregate stats() surface
        # (the same snapshot the serving layer's /metrics endpoint exposes)...
        snapshot = stats(warm)
        assert snapshot["pipeline"]["embedding_train_count"] == 0
        assert snapshot["pipeline"]["downstream_train_count"] == 0
        # ... whose store counters show every downstream/measure lookup hit
        # and no embedding pair ever missed -- the warm run is lazy enough
        # never to look one up, so the kind is absent from the snapshot
        # (stats() only reports kinds that saw traffic).
        assert snapshot["store"].get("embedding_pair", {}).get("misses", 0) == 0
        assert snapshot["store"]["downstream"]["misses"] == 0
        assert snapshot["store"]["downstream"]["hits"] > 0
        assert snapshot["store"]["measures"]["misses"] == 0
        assert snapshot["store"]["measures"]["hits"] > 0
        # The warm records are bit-identical to both the cold and in-memory runs.
        assert warm_records == cold_records == serial_records

    def test_sharded_store_warm_rerun_trains_nothing_bit_identical(
        self, tmp_path, serial_records
    ):
        """The acceptance bar of the sharded store: a warm rerun against N
        consistent-hashed shard directories performs zero retrainings and
        zero new decompositions, and its records match the single-local-store
        run exactly."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            cold = GridEngine(TINY_GRID_CONFIG, store=ArtifactStore(tmp_path, shards=3))
            cold_records = cold.run(with_measures=True)

            warm = GridEngine(TINY_GRID_CONFIG, store=ArtifactStore(tmp_path, shards=3))
            warm_records = warm.run(with_measures=True)

        snapshot = stats(warm)
        assert snapshot["pipeline"]["embedding_train_count"] == 0
        assert snapshot["pipeline"]["downstream_train_count"] == 0
        assert snapshot["store"]["measures"]["puts"] == 0
        assert snapshot["store"].get("decomposition", {}).get("puts", 0) == 0
        (sharded,) = snapshot["store_tiers"]
        assert sharded["name"] == "sharded" and sharded["hits"] > 0
        # Artifacts really spread over more than one shard directory.
        assert sum(1 for shard in sharded["shards"] if shard["hits"]) > 1
        assert warm_records == cold_records == serial_records

    def test_sharded_store_parallel_warm_rerun_bit_identical(
        self, tmp_path, serial_records
    ):
        """Workers rebuild the sharded tier stack from the store's spec and
        route every key to the same shard the parent would."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            GridEngine(
                TINY_GRID_CONFIG, store=ArtifactStore(tmp_path, shards=3)
            ).run(with_measures=True)
            warm = GridEngine(TINY_GRID_CONFIG, store=ArtifactStore(tmp_path, shards=3))
            records = warm.run(with_measures=True, n_workers=2)
        assert records == serial_records
        assert warm.pipeline.embedding_train_count == 0

    def test_repeated_cells_hit_the_cache_in_one_run(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            engine = GridEngine(TINY_GRID_CONFIG)
            engine.run(with_measures=False)
            first_train_count = engine.pipeline.embedding_train_count
            engine.run(with_measures=False)  # same grid again, same process
        assert engine.pipeline.embedding_train_count == first_train_count


class TestDeterminism:
    def test_tied_seeds_reproduce_identical_downstream_results(self):
        results = []
        for _ in range(2):
            pipeline = InstabilityPipeline(TINY_GRID_CONFIG)
            results.append(pipeline.evaluate("sst2", "svd", 4, 1, 0))
        assert results[0] == results[1]  # exact float equality

    def test_measures_reproduce_exactly(self):
        values = []
        for _ in range(2):
            pipeline = InstabilityPipeline(TINY_GRID_CONFIG)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)
                values.append(pipeline.compute_measures("svd", 4, 1, 0))
        assert values[0] == values[1]


class TestGridPlan:
    """The extracted group plan shared by local and distributed execution."""

    def test_axes_default_to_the_config(self):
        from repro.engine import plan_grid
        from repro.instability.pipeline import PipelineConfig

        config = PipelineConfig(
            algorithms=("svd",), dimensions=(4, 8), precisions=(1, 32),
            seeds=(0, 1), tasks=("sst2",),
        )
        plan = plan_grid(config, with_measures=True)
        assert plan.dimensions == (4, 8) and plan.seeds == (0, 1)
        assert plan.anchor_dim == 8
        assert plan.n_cells == 2 * 2 * 2        # dims x precisions x seeds
        assert len(plan.groups) == 4

    def test_explicit_axes_override_and_coerce(self):
        from repro.engine import plan_grid
        from repro.instability.pipeline import PipelineConfig

        plan = plan_grid(
            PipelineConfig(algorithms=("svd",), dimensions=(4,), precisions=(1,),
                           seeds=(0,), tasks=("sst2",)),
            dimensions=("4", "6"), precisions=("32",),
        )
        assert plan.dimensions == (4, 6) and plan.precisions == (32,)

    def test_groups_match_plan_groups_and_anchor_order(self):
        from repro.engine import plan_grid, plan_groups
        from repro.instability.pipeline import PipelineConfig

        config = PipelineConfig(
            algorithms=("svd",), dimensions=(4, 8, 6), precisions=(1,),
            seeds=(0,), tasks=("sst2",),
        )
        plan = plan_grid(config, with_measures=True)
        assert list(plan.groups) == plan_groups(
            ("svd",), (4, 8, 6), (1,), (0,), ("sst2",),
            anchor_dim=8, with_measures=True,
        )
        assert plan.groups[0].dim == 8          # the anchor group leads

    def test_cell_keys_are_the_canonical_product_order(self):
        from repro.engine import canonical_cell_keys, plan_grid
        from repro.instability.pipeline import PipelineConfig

        config = PipelineConfig(
            algorithms=("svd",), dimensions=(4, 6), precisions=(1, 32),
            seeds=(0,), tasks=("sst2",),
        )
        plan = plan_grid(config)
        assert plan.cell_keys() == canonical_cell_keys(
            ("svd",), (4, 6), (1, 32), (0,), ("sst2",)
        )
