"""Tables 10-11: worst-case selection errors (pairwise and under memory budgets)."""

from repro.experiments import table2_selection, table3_budget


def test_table10_11_worstcase(benchmark, grid_records):
    def build():
        pairwise = table2_selection.summarize(grid_records)
        budget = table3_budget.summarize(grid_records)
        return pairwise, budget

    pairwise, budget = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(pairwise.to_table(headers=["measure", "task", "algorithm", "worst_case_error_pct"]))
    print()
    print(budget.to_table(headers=["criterion", "task", "algorithm", "worst_case_distance_pct"]))
    worst_pairwise = [r["worst_case_error_pct"] for r in pairwise.rows]
    worst_budget = [r["worst_case_distance_pct"] for r in budget.rows]
    assert all(w >= 0 for w in worst_pairwise + worst_budget)
