"""Table 3 (and Table 11): selection under a fixed memory budget.

For every memory budget admitting several dimension-precision combinations,
each criterion (the five measures plus the naive high-precision/low-precision
rules) picks one combination; the table reports the average absolute
difference in downstream disagreement between the pick and the most stable
("oracle") combination, plus the worst case (Table 11).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.experiments.table1_correlation import MEASURE_ORDER
from repro.instability.grid import GridRecord
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
from repro.selection.budget import budget_selection_error
from repro.selection.criteria import HIGH_PRECISION, LOW_PRECISION, measure_criterion

__all__ = ["run", "summarize"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    tasks: tuple[str, ...] | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce Table 3 on the pipeline's grid."""
    pipe = resolve_pipeline(pipeline)
    records = resolve_engine(pipe, n_workers=n_workers).run(tasks=tasks, with_measures=True)
    return summarize(records)


def summarize(records: list[GridRecord]) -> ExperimentResult:
    """Build the Table 3 / Table 11 rows from evaluated grid records."""
    criteria = [measure_criterion(m) for m in MEASURE_ORDER] + [HIGH_PRECISION, LOW_PRECISION]
    rows = []
    for criterion in criteria:
        for result in budget_selection_error(records, criterion):
            rows.append(
                {
                    "criterion": criterion.name,
                    "task": result.task,
                    "algorithm": result.algorithm,
                    "mean_distance_to_oracle_pct": result.mean_distance_to_oracle,
                    "worst_case_distance_pct": result.worst_case_distance,
                    "n_budgets": result.n_budgets,
                }
            )

    per_criterion: dict[str, list[float]] = {}
    for row in rows:
        per_criterion.setdefault(row["criterion"], []).append(
            row["mean_distance_to_oracle_pct"]
        )
    mean_distance = {c: float(np.mean(v)) for c, v in per_criterion.items()}
    ranked = sorted(mean_distance, key=lambda c: mean_distance[c])
    summary = {
        "mean_distance_by_criterion": mean_distance,
        "best_two_criteria": ranked[:2],
        "eis_or_knn_among_best_two": bool(set(ranked[:2]) & {"eis", "1-knn"}),
    }
    return ExperimentResult(name="table-3-budget-selection", rows=rows, summary=summary)
