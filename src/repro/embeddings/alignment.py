"""Orthogonal Procrustes alignment of embedding pairs.

The paper aligns each Wiki'18 embedding to its Wiki'17 counterpart with
orthogonal Procrustes (Schönemann, 1966) *before* compressing and training
downstream models, because preliminary experiments showed alignment lowers
instability (Appendix C.2).  Alignment is exposed as a flag throughout the
pipeline so the ablation can be reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import Embedding
from repro.utils.validation import check_embedding_pair

__all__ = ["orthogonal_procrustes", "align_matrices", "align_pair"]


def orthogonal_procrustes(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Solve ``min_R ||X - Y R||_F`` subject to ``R^T R = I``.

    Returns the orthogonal matrix ``R`` that rotates ``Y`` onto ``X``.  Both
    matrices must have the same shape ``(n, d)``.
    """
    X, Y = check_embedding_pair(X, Y, same_dim=True)
    # R = U V^T where Y^T X = U S V^T (standard Procrustes solution).
    M = Y.T @ X
    U, _, Vt = np.linalg.svd(M, full_matrices=False)
    return U @ Vt


def align_matrices(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Return ``Y`` rotated onto ``X`` with the Procrustes solution."""
    R = orthogonal_procrustes(X, Y)
    return Y @ R


def align_pair(reference: Embedding, other: Embedding, *, top_k: int | None = None) -> Embedding:
    """Align ``other`` to ``reference`` over their common vocabulary.

    The rotation is estimated on the common (optionally top-``k``) rows and
    then applied to *all* rows of ``other`` so the full embedding stays
    usable downstream.

    Parameters
    ----------
    reference:
        Embedding kept fixed (the paper's Wiki'17 embedding).
    other:
        Embedding to rotate (the paper's Wiki'18 embedding).
    top_k:
        Restrict the rotation estimation to the ``top_k`` most frequent common
        words (``None`` uses every common word).
    """
    if reference.dim != other.dim:
        raise ValueError(
            f"cannot align embeddings of different dimensions: {reference.dim} vs {other.dim}"
        )
    ref_common, other_common = Embedding.aligned_pair(reference, other, top_k=top_k)
    R = orthogonal_procrustes(ref_common.vectors, other_common.vectors)
    rotated = other.vectors @ R
    return other.with_vectors(rotated, aligned_to=reference.metadata.get("corpus", "reference"))
