"""Dataset containers for the downstream tasks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.vocabulary import Vocabulary
from repro.utils.rng import check_random_state

__all__ = [
    "TextClassificationDataset",
    "SequenceTaggingDataset",
    "DatasetSplits",
    "train_val_test_split",
]


@dataclass
class TextClassificationDataset:
    """A text classification dataset over a fixed vocabulary.

    Attributes
    ----------
    documents:
        List of int64 arrays of word ids into ``vocab`` (and therefore into the
        rows of any embedding trained over the same vocabulary).
    labels:
        Integer class labels, one per document.
    vocab:
        The shared vocabulary.
    name:
        Task name ("sst2", "mr", ...).
    num_classes:
        Number of classes (2 for the sentiment tasks).
    """

    documents: list[np.ndarray]
    labels: np.ndarray
    vocab: Vocabulary
    name: str = "classification"
    num_classes: int = 2

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.documents) != len(self.labels):
            raise ValueError("documents and labels must have equal length")
        if len(self.labels) and (self.labels.min() < 0 or self.labels.max() >= self.num_classes):
            raise ValueError("labels out of range for num_classes")

    def __len__(self) -> int:
        return len(self.labels)

    def subset(self, indices: np.ndarray) -> "TextClassificationDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return TextClassificationDataset(
            documents=[self.documents[i] for i in indices],
            labels=self.labels[indices],
            vocab=self.vocab,
            name=self.name,
            num_classes=self.num_classes,
        )

    def mean_embedding_features(self, vectors: np.ndarray) -> np.ndarray:
        """Per-document mean embedding (the linear BOW model's features)."""
        dim = vectors.shape[1]
        features = np.zeros((len(self.documents), dim))
        for i, doc in enumerate(self.documents):
            if len(doc):
                features[i] = vectors[doc].mean(axis=0)
        return features


@dataclass
class SequenceTaggingDataset:
    """A token-level tagging dataset (NER-style).

    Attributes
    ----------
    sentences:
        List of int64 arrays of word ids.
    tags:
        List of int64 arrays of tag ids, aligned with ``sentences``.
    tag_names:
        Names of tags in id order; by convention the "O" (outside) tag is
        last so entity tags occupy the low ids.
    vocab:
        The shared vocabulary.
    """

    sentences: list[np.ndarray]
    tags: list[np.ndarray]
    tag_names: list[str]
    vocab: Vocabulary
    name: str = "ner"

    def __post_init__(self) -> None:
        if len(self.sentences) != len(self.tags):
            raise ValueError("sentences and tags must have equal length")
        for s, t in zip(self.sentences, self.tags):
            if len(s) != len(t):
                raise ValueError("every sentence must have one tag per token")

    def __len__(self) -> int:
        return len(self.sentences)

    @property
    def num_tags(self) -> int:
        return len(self.tag_names)

    @property
    def outside_tag_id(self) -> int:
        return self.tag_names.index("O")

    def subset(self, indices: np.ndarray) -> "SequenceTaggingDataset":
        indices = np.asarray(indices, dtype=np.int64)
        return SequenceTaggingDataset(
            sentences=[self.sentences[i] for i in indices],
            tags=[self.tags[i] for i in indices],
            tag_names=self.tag_names,
            vocab=self.vocab,
            name=self.name,
        )

    def entity_token_mask(self) -> list[np.ndarray]:
        """Boolean masks of tokens whose gold tag is an entity (not "O").

        The paper measures NER instability only over tokens whose true value
        is an entity.
        """
        outside = self.outside_tag_id
        return [np.asarray(t) != outside for t in self.tags]


@dataclass
class DatasetSplits:
    """Train / validation / test splits of a dataset."""

    train: TextClassificationDataset | SequenceTaggingDataset
    val: TextClassificationDataset | SequenceTaggingDataset
    test: TextClassificationDataset | SequenceTaggingDataset
    fractions: tuple[float, float, float] = field(default=(0.8, 0.1, 0.1))


def train_val_test_split(
    dataset: TextClassificationDataset | SequenceTaggingDataset,
    *,
    val_fraction: float = 0.1,
    test_fraction: float = 0.1,
    seed: int = 0,
) -> DatasetSplits:
    """Random split into train/val/test (the paper uses 80/10/10 for MR/Subj/MPQA)."""
    if val_fraction < 0 or test_fraction < 0 or val_fraction + test_fraction >= 1.0:
        raise ValueError("val_fraction + test_fraction must be < 1 and non-negative")
    n = len(dataset)
    rng = check_random_state(seed)
    order = rng.permutation(n)
    n_val = int(round(val_fraction * n))
    n_test = int(round(test_fraction * n))
    val_idx = order[:n_val]
    test_idx = order[n_val : n_val + n_test]
    train_idx = order[n_val + n_test :]
    return DatasetSplits(
        train=dataset.subset(train_idx),
        val=dataset.subset(val_idx),
        test=dataset.subset(test_idx),
        fractions=(1.0 - val_fraction - test_fraction, val_fraction, test_fraction),
    )
