"""Tests for RNG handling utilities."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, check_random_state, spawn_seeds


class TestCheckRandomState:
    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).random(5)
        b = check_random_state(2).random(5)
        assert not np.allclose(a, b)

    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_numpy_integer_seed(self):
        gen = check_random_state(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_seed_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            check_random_state("not-a-seed")


class TestSpawnSeeds:
    def test_length_and_determinism(self):
        assert spawn_seeds(0, 5) == spawn_seeds(0, 5)
        assert len(spawn_seeds(0, 5)) == 5

    def test_zero_is_allowed(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_seeds_are_ints(self):
        assert all(isinstance(s, int) for s in spawn_seeds(3, 4))


class TestRngMixin:
    class Dummy(RngMixin):
        def __init__(self, seed):
            self.seed = seed

    def test_rng_is_cached(self):
        obj = self.Dummy(0)
        assert obj.rng is obj.rng

    def test_reseed_replaces_generator(self):
        obj = self.Dummy(0)
        first = obj.rng.random()
        obj.reseed(0)
        assert obj.rng.random() == pytest.approx(first)
