"""Tests for dataset containers, lexicons, and the synthetic sentiment/NER tasks."""

import numpy as np
import pytest

from repro.tasks.datasets import SequenceTaggingDataset, TextClassificationDataset, train_val_test_split
from repro.tasks.lexicons import build_task_lexicons
from repro.tasks.ner import NER_TAGS, NERTaskConfig, generate_ner_dataset
from repro.tasks.sentiment import SENTIMENT_TASKS, SentimentTaskConfig, generate_sentiment_dataset


class TestLexicons:
    def test_roles_are_disjoint(self, lexicons):
        pos, neg = set(lexicons.positive), set(lexicons.negative)
        assert pos and neg
        assert not pos & neg
        for etype, words in lexicons.entities.items():
            assert words, f"empty lexicon for {etype}"
            assert not set(words) & pos
            assert not set(words) & neg

    def test_all_words_in_vocab(self, lexicons, vocab):
        for word in lexicons.positive + lexicons.negative + lexicons.background:
            assert word in vocab

    def test_describe(self, lexicons):
        info = lexicons.describe()
        assert info["positive"] == len(lexicons.positive)
        assert "entity_PER" in info

    def test_custom_topic_assignment(self, generator, vocab):
        lex = build_task_lexicons(
            generator, vocab, positive_topics=(3,), negative_topics=(4,),
            entity_topics={"PER": 0, "ORG": 1, "LOC": 2, "MISC": 5},
        )
        assert lex.positive and lex.negative


class TestSentimentDataset:
    def test_predefined_tasks_exist(self):
        assert set(SENTIMENT_TASKS) == {"sst2", "mr", "subj", "mpqa"}

    def test_generation_shapes(self, sentiment_dataset, vocab):
        assert len(sentiment_dataset) == SENTIMENT_TASKS["sst2"].n_examples
        assert sentiment_dataset.labels.min() >= 0
        assert sentiment_dataset.labels.max() <= 1
        for doc in sentiment_dataset.documents[:20]:
            assert doc.max() < len(vocab)

    def test_roughly_balanced_labels(self, sentiment_dataset):
        mean = sentiment_dataset.labels.mean()
        assert 0.3 < mean < 0.7

    def test_deterministic_given_seed(self, lexicons):
        a = generate_sentiment_dataset("mr", lexicons, seed=5)
        b = generate_sentiment_dataset("mr", lexicons, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.documents[0], b.documents[0])

    def test_unknown_name_raises(self, lexicons):
        with pytest.raises(KeyError):
            generate_sentiment_dataset("imdb", lexicons)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SentimentTaskConfig("x", n_examples=0)
        with pytest.raises(ValueError):
            SentimentTaskConfig("x", label_noise=2.0)

    def test_labels_learnable_from_lexicon_counts(self, sentiment_dataset, lexicons, vocab):
        """Counting positive vs negative lexicon words should beat chance easily."""
        pos_ids = {vocab[w] for w in lexicons.positive}
        neg_ids = {vocab[w] for w in lexicons.negative}
        correct = 0
        for doc, label in zip(sentiment_dataset.documents, sentiment_dataset.labels):
            score = sum(1 for t in doc if t in pos_ids) - sum(1 for t in doc if t in neg_ids)
            pred = 1 if score > 0 else 0
            correct += int(pred == label)
        assert correct / len(sentiment_dataset) > 0.75

    def test_mean_embedding_features(self, sentiment_dataset, embedding):
        feats = sentiment_dataset.mean_embedding_features(embedding.vectors)
        assert feats.shape == (len(sentiment_dataset), embedding.dim)
        assert np.all(np.isfinite(feats))


class TestNERDataset:
    def test_tag_names_and_shapes(self, ner_dataset):
        assert ner_dataset.tag_names == NER_TAGS
        assert ner_dataset.num_tags == 5
        for sent, tags in zip(ner_dataset.sentences, ner_dataset.tags):
            assert len(sent) == len(tags)
            assert tags.max() < ner_dataset.num_tags

    def test_entity_density_close_to_config(self, ner_dataset):
        masks = ner_dataset.entity_token_mask()
        density = np.concatenate(masks).mean()
        assert 0.15 < density < 0.7

    def test_entity_tokens_mostly_from_entity_lexicons(self, ner_dataset, lexicons, vocab):
        entity_ids = {vocab[w] for words in lexicons.entities.values() for w in words}
        tokens = np.concatenate(ner_dataset.sentences)
        tags = np.concatenate(ner_dataset.tags)
        entity_tokens = tokens[tags != ner_dataset.outside_tag_id]
        fraction = np.mean([t in entity_ids for t in entity_tokens])
        assert fraction > 0.8  # tag_noise corrupts only a small fraction

    def test_deterministic(self, lexicons):
        cfg = NERTaskConfig(n_sentences=10, sentence_length=8)
        a = generate_ner_dataset(cfg, lexicons, seed=1)
        b = generate_ner_dataset(cfg, lexicons, seed=1)
        np.testing.assert_array_equal(a.sentences[0], b.sentences[0])
        np.testing.assert_array_equal(a.tags[0], b.tags[0])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            NERTaskConfig(n_sentences=0)
        with pytest.raises(ValueError):
            NERTaskConfig(entity_density=1.5)


class TestContainersAndSplits:
    def test_classification_validation(self, vocab):
        with pytest.raises(ValueError):
            TextClassificationDataset(documents=[np.array([0])], labels=np.array([0, 1]), vocab=vocab)
        with pytest.raises(ValueError):
            TextClassificationDataset(
                documents=[np.array([0])], labels=np.array([5]), vocab=vocab, num_classes=2
            )

    def test_tagging_validation(self, vocab):
        with pytest.raises(ValueError):
            SequenceTaggingDataset(
                sentences=[np.array([0, 1])], tags=[np.array([0])],
                tag_names=["PER", "O"], vocab=vocab,
            )

    def test_subset(self, sentiment_dataset):
        sub = sentiment_dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, sentiment_dataset.labels[[0, 2, 4]])

    def test_split_sizes_and_disjointness(self, sentiment_dataset):
        splits = train_val_test_split(sentiment_dataset, val_fraction=0.2, test_fraction=0.1, seed=0)
        n = len(sentiment_dataset)
        assert len(splits.val) == round(0.2 * n)
        assert len(splits.test) == round(0.1 * n)
        assert len(splits.train) + len(splits.val) + len(splits.test) == n

    def test_split_reproducible(self, sentiment_dataset):
        a = train_val_test_split(sentiment_dataset, seed=3)
        b = train_val_test_split(sentiment_dataset, seed=3)
        np.testing.assert_array_equal(a.test.labels, b.test.labels)

    def test_split_invalid_fractions(self, sentiment_dataset):
        with pytest.raises(ValueError):
            train_val_test_split(sentiment_dataset, val_fraction=0.6, test_fraction=0.5)
