"""Tests for the name->object registry."""

import pytest

from repro.utils.registry import Registry


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.register("a", 1)
        assert reg.get("a") == 1

    def test_case_insensitive(self):
        reg = Registry("thing")
        reg.register("GloVe", "x")
        assert reg.get("glove") == "x"
        assert "GLOVE" in reg

    def test_decorator_usage(self):
        reg = Registry("thing")

        @reg.register("fn")
        def fn():
            return 7

        assert reg.get("fn")() == 7

    def test_duplicate_raises(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(KeyError, match="already registered"):
            reg.register("a", 2)

    def test_unknown_name_raises_with_known_names(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(KeyError, match="unknown thing"):
            reg.get("b")

    def test_iteration_and_len(self):
        reg = Registry("thing")
        reg.register("b", 2)
        reg.register("a", 1)
        assert list(reg) == ["a", "b"]
        assert len(reg) == 2
        assert reg.names() == ["a", "b"]

    def test_builtin_algorithm_registry_contains_paper_algorithms(self):
        from repro.embeddings.base import EMBEDDING_ALGORITHMS

        for name in ("cbow", "glove", "mc", "svd", "fasttext"):
            assert name in EMBEDDING_ALGORITHMS
