"""Kim (2014)-style CNN sentence classifier (Appendix E.2).

One convolutional layer with kernel widths {3, 4, 5}, ReLU, max-over-time
pooling, dropout, and a linear classification layer, over fixed word
embeddings.  Used by the paper to show the stability-memory tradeoff also
holds for more complex downstream models.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import Embedding as WordEmbedding
from repro.models.trainer import EarlyStopper, TrainingConfig
from repro.nn import functional as F
from repro.nn.conv import Conv1d, max_over_time
from repro.nn.data import BatchIterator
from repro.nn.layers import Dropout, Embedding as EmbeddingLayer, Linear, Module
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor, no_grad
from repro.tasks.datasets import TextClassificationDataset

__all__ = ["CNNClassifier"]


class CNNClassifier(Module):
    """Convolutional sentence classifier over fixed embeddings.

    Parameters
    ----------
    embedding:
        Trained embedding (or raw matrix) indexed by the dataset's word ids.
    num_classes:
        Output classes.
    kernel_widths:
        Convolution widths (paper: 3, 4, 5).
    channels:
        Output channels per width (paper: 100; default smaller for speed).
    dropout:
        Dropout probability before the output layer (paper: 0.5).
    config:
        Training configuration.
    """

    def __init__(
        self,
        embedding: WordEmbedding | np.ndarray,
        num_classes: int = 2,
        *,
        kernel_widths: tuple[int, ...] = (3, 4, 5),
        channels: int = 16,
        dropout: float = 0.5,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config or TrainingConfig()
        matrix = embedding.vectors if isinstance(embedding, WordEmbedding) else np.asarray(embedding)
        self.embedding = EmbeddingLayer(matrix, trainable=self.config.fine_tune_embeddings)
        self.kernel_widths = tuple(int(k) for k in kernel_widths)
        self.channels = int(channels)
        seed = self.config.init_seed
        self.convs = [
            Conv1d(self.embedding.dim, channels, width, seed=seed + i)
            for i, width in enumerate(self.kernel_widths)
        ]
        for i, conv in enumerate(self.convs):
            self._modules[f"conv{i}"] = conv
        self.dropout = Dropout(dropout, seed=seed)
        self.output = Linear(channels * len(self.kernel_widths), num_classes, seed=seed + 100)
        self.num_classes = int(num_classes)

    # -- forward -----------------------------------------------------------------

    def _sentence_logits(self, document: np.ndarray) -> Tensor:
        """Logits for one sentence of word ids."""
        if len(document) == 0:
            document = np.zeros(1, dtype=np.int64)
        tokens = self.embedding(document)                     # (seq_len, dim)
        pooled = [max_over_time(conv(tokens).relu()) for conv in self.convs]
        features = Tensor.concatenate(pooled, axis=0).reshape(1, -1)
        return self.output(self.dropout(features))

    def forward(self, documents: list[np.ndarray]) -> Tensor:
        """Logits for a batch of sentences (stacked on axis 0)."""
        return Tensor.concatenate([self._sentence_logits(doc) for doc in documents], axis=0)

    # -- training -------------------------------------------------------------------

    def fit(
        self,
        train: TextClassificationDataset,
        val: TextClassificationDataset | None = None,
    ) -> dict:
        cfg = self.config
        params = list(self.parameters())
        optimizer = (
            Adam(params, lr=cfg.learning_rate)
            if cfg.optimizer == "adam"
            else SGD(params, lr=cfg.learning_rate)
        )
        stopper = EarlyStopper(cfg.patience)
        history: dict[str, list[float]] = {"train_loss": [], "val_accuracy": []}

        for epoch in range(cfg.epochs):
            self.train()
            iterator = BatchIterator(len(train), cfg.batch_size, seed=cfg.sampling_seed + epoch)
            epoch_loss, n_batches = 0.0, 0
            for batch_idx in iterator:
                docs = [train.documents[i] for i in batch_idx]
                logits = self.forward(docs)
                loss = F.cross_entropy(logits, train.labels[batch_idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            history["train_loss"].append(epoch_loss / max(n_batches, 1))

            if val is not None and len(val):
                val_acc = self.accuracy(val)
                history["val_accuracy"].append(val_acc)
                if stopper.update(val_acc, self.state_dict()):
                    break

        if stopper.best_state is not None:
            self.load_state_dict(stopper.best_state)
        return history

    # -- inference ---------------------------------------------------------------------

    def predict(self, dataset: TextClassificationDataset) -> np.ndarray:
        self.eval()
        with no_grad():
            logits = self.forward(dataset.documents)
        return np.argmax(logits.data, axis=-1)

    def accuracy(self, dataset: TextClassificationDataset) -> float:
        preds = self.predict(dataset)
        return float(np.mean(preds == dataset.labels)) if len(dataset) else 0.0
