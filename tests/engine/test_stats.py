"""Tests of the aggregate counter surface ``repro.engine.stats``."""

import json

import numpy as np

from repro.engine import ArtifactStore, stats
from repro.measures.base import DecompositionCache


class TestStats:
    def test_empty_snapshot_has_all_keys(self):
        snapshot = stats()
        telemetry = snapshot.pop("telemetry")
        assert set(telemetry) == {"latency"}   # process-wide histograms, always present
        assert snapshot == {
            "store": {}, "pipeline": {}, "decomposition_caches": {}, "warmup": None,
            "cluster": None, "monitor": None,
        }

    def test_bare_store_positional(self):
        store = ArtifactStore()
        store.put_json("downstream", "k", {"v": 1})
        store.get_json("downstream", "k")
        store.get_json("downstream", "missing")
        snapshot = stats(store)
        assert snapshot["store"]["downstream"] == {
            "hits": 1, "misses": 1, "puts": 1, "preloads": 0, "corrupt": 0,
        }
        assert snapshot["store_persistent"] is False
        assert snapshot["store_tiers"] == []      # memory-only: no byte tiers
        assert snapshot["pipeline"] == {}

    def test_store_tiers_reported_per_tier(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json("measures", "k", {"eis": 0.5})
        snapshot = stats(store)
        (disk,) = snapshot["store_tiers"]
        assert disk["name"] == "disk" and disk["persistent"] is True
        assert disk["puts"] == 1
        assert disk["root"] == str(tmp_path)

    def test_pipeline_positional_implies_store(self):
        from repro.instability.pipeline import InstabilityPipeline

        pipeline = InstabilityPipeline()
        snapshot = stats(pipeline)
        assert snapshot["pipeline"] == {
            "corpus_build_count": 1,
            "embedding_train_count": 0,
            "downstream_train_count": 0,
        }
        assert "store_persistent" in snapshot

    def test_engine_positional_implies_pipeline_and_warmup(self):
        from repro.engine import GridEngine

        engine = GridEngine()
        snapshot = stats(engine)
        assert snapshot["pipeline"]["corpus_build_count"] == 1
        assert snapshot["warmup"] is None        # no parallel run yet

    def test_decomposition_caches_by_name(self):
        cache = DecompositionCache()
        cache.svd(np.eye(3))
        snapshot = stats(caches={"serving": cache})
        assert snapshot["decomposition_caches"]["serving"]["misses"] == 1

    def test_snapshot_is_json_serialisable(self):
        from repro.engine import GridEngine

        engine = GridEngine()
        cache = DecompositionCache()
        json.dumps(stats(engine, caches={"c": cache}))


class TestClusterSection:
    def test_coordinator_snapshot_is_included_and_jsonable(self):
        from repro.cluster.coordinator import ClusterCoordinator
        from repro.engine import plan_grid
        from repro.serving.api import quick_serve_config

        coordinator = ClusterCoordinator()
        coordinator.create_run(plan_grid(quick_serve_config(), with_measures=True))
        coordinator.lease("w1")
        snapshot = stats(coordinator=coordinator)
        cluster = snapshot["cluster"]
        assert cluster["counters"]["leases_issued"] == 1
        assert cluster["runs_active"] == 1
        assert "w1" in cluster["workers"]
        json.dumps(snapshot)


class TestMonitorSection:
    def test_monitor_snapshot_is_included_and_jsonable(self):
        import warnings

        from repro.monitor import InstabilityMonitor, MonitorConfig
        from repro.serving import StabilityService
        from repro.serving.api import quick_serve_config

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service = StabilityService(quick_serve_config())
        try:
            monitor = InstabilityMonitor(service, MonitorConfig(sync=True))
            snapshot = stats(monitor=monitor)
            section = snapshot["monitor"]
            assert section["version"] == 0
            assert section["counters"]["batches_ingested"] == 0
            assert section["last_report"] is None
            json.dumps(snapshot)
            monitor.close()
        finally:
            service.close()
